// Segmentation/reassembly transport over any net::Medium.
//
// Media have maximum frame payloads (CAN: 8 B, Ethernet: 1500 B); middleware
// messages can be larger. The Transport fragments a message into numbered
// segments and reassembles on the far side, preserving the frame priority
// so urgent control messages keep their precedence per fragment.
//
// Fragment wire format (6-byte header per fragment):
//   [u16 message id][u16 fragment index][u16 fragment count] payload...
// A fragment count of 0 marks a control frame; index 0 is an ACK for
// message id (empty payload).
//
// Two robustness layers ride on top (fault campaigns, ISSUE 3):
//  * Stale-reassembly TTL: a partial message that stops receiving fragments
//    (loss, sender death) is evicted after `reassembly_ttl` instead of
//    stranding buffer memory forever. Evictions count as reassembly
//    failures.
//  * Reliable mode (opt-in, unicast only): the sender appends a CRC32 over
//    the whole message, the receiver acks CRC-valid reassembly, and the
//    sender retries on ack timeout with capped exponential backoff.
//    Duplicate deliveries created by retries are suppressed via a bounded
//    per-peer window of recently delivered ids; exhausted retries surface
//    through an error callback and a counter. Broadcast traffic (service
//    discovery) stays fire-and-forget — ack implosion is worse than a lost
//    Offer, which discovery already repairs with Find retries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/frame.hpp"
#include "net/medium.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::middleware {

/// Delivered when all fragments of a message have arrived.
using MessageHandler =
    std::function<void(net::NodeId src, std::vector<std::uint8_t> message)>;

/// Invoked when a reliable message exhausts its retries.
using DeliveryFailureHandler =
    std::function<void(net::NodeId dst, std::uint16_t message_id)>;

struct TransportConfig {
  /// Evict a partial reassembly untouched for this long (0 = never).
  sim::Duration reassembly_ttl = 500 * sim::kMillisecond;
  /// Reliable unicast: CRC32 + ack + retry.
  bool reliable = false;
  sim::Duration ack_timeout = 20 * sim::kMillisecond;
  int max_retries = 5;
  double backoff_factor = 2.0;
  sim::Duration max_backoff = 200 * sim::kMillisecond;
  /// Recently delivered message ids remembered per peer (duplicate
  /// suppression window).
  std::size_t dedup_window = 64;
};

/// IEEE 802.3 CRC32 (reflected, 0xEDB88320), the end-to-end integrity check
/// of the reliable transport. Exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

class Transport {
 public:
  /// `send_frame` submits one frame towards the medium (the Ecu's send path,
  /// so failure gating applies). Incoming frames are fed via on_frame().
  /// `simulator` powers TTL eviction and retry timers; without one (legacy
  /// unit-test construction) both features are inert.
  Transport(std::function<void(net::Frame)> send_frame,
            std::size_t max_frame_payload, sim::Simulator* simulator = nullptr,
            TransportConfig config = {});
  ~Transport();

  /// Fragments and sends a message. flow_id groups fragments of one logical
  /// flow for media-level arbitration (e.g. the CAN id).
  void send(net::NodeId dst, net::Priority priority, std::uint32_t flow_id,
            const std::vector<std::uint8_t>& message);

  /// Feeds a received frame into reassembly.
  void on_frame(const net::Frame& frame);

  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }
  void set_delivery_failure_handler(DeliveryFailureHandler handler) {
    on_delivery_failure_ = std::move(handler);
  }

  /// Registers obs counters under `prefix` (e.g. "mw.EcuA.transport.").
  void set_metrics(obs::MetricsRegistry& metrics, const std::string& prefix);

  /// Number of frames one message of `size` bytes costs on this medium.
  std::size_t fragments_for(std::size_t size) const;

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t reassembly_failures() const { return reassembly_failures_; }
  std::uint64_t reassembly_evictions() const { return reassembly_evictions_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t crc_failures() const { return crc_failures_; }
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  std::uint64_t delivery_failures() const { return delivery_failures_; }
  /// In-flight reliable messages awaiting ack.
  std::size_t pending_reliable() const { return pending_reliable_.size(); }
  /// Partial reassemblies currently buffered (0 after TTL sweeps when all
  /// traffic completed or aged out — the "no stranded memory" invariant).
  std::size_t partial_count() const { return partial_.size(); }

  const TransportConfig& config() const { return config_; }

  static constexpr std::size_t kFragmentHeader = 6;
  static constexpr std::size_t kCrcTrailer = 4;

 private:
  struct PartialMessage {
    std::vector<std::vector<std::uint8_t>> fragments;
    std::size_t received = 0;
    sim::Time last_update = 0;
    bool unicast = false;  // candidate for CRC check + ack in reliable mode
  };

  struct PendingReliable {
    net::NodeId dst = 0;
    net::Priority priority = net::kPriorityLowest;
    std::uint32_t flow_id = 0;
    std::vector<std::uint8_t> message;  // includes CRC trailer
    int retries = 0;
    sim::Duration backoff = 0;
    sim::EventId timer;
  };

  struct PeerHistory {
    std::deque<std::uint16_t> order;
    std::set<std::uint16_t> ids;
  };

  void send_fragments(std::uint16_t id, net::NodeId dst,
                      net::Priority priority, std::uint32_t flow_id,
                      const std::vector<std::uint8_t>& message);
  void send_ack(net::NodeId dst, std::uint16_t id);
  void on_ack(std::uint16_t id);
  void arm_retry(std::uint16_t id);
  void complete(net::NodeId src, std::uint16_t id, bool unicast,
                std::vector<std::uint8_t> message);
  void evict_stale();
  bool remember_delivery(net::NodeId src, std::uint16_t id);

  std::function<void(net::Frame)> send_frame_;
  std::size_t max_frame_payload_;
  sim::Simulator* sim_;
  TransportConfig config_;
  MessageHandler handler_;
  DeliveryFailureHandler on_delivery_failure_;
  std::uint16_t next_message_id_ = 1;
  // Keyed by (src node, message id). Stale partials are evicted when the
  // same sender reuses an id (16-bit wrap) or when the TTL expires.
  std::map<std::pair<net::NodeId, std::uint16_t>, PartialMessage> partial_;
  std::map<std::uint16_t, PendingReliable> pending_reliable_;
  std::map<net::NodeId, PeerHistory> delivered_history_;
  // Periodic TTL sweep: inbound frames also sweep, but a quiescent link
  // would otherwise strand its last partial forever.
  sim::EventId sweep_timer_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t reassembly_failures_ = 0;
  std::uint64_t reassembly_evictions_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t crc_failures_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t delivery_failures_ = 0;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* crc_failures_counter_ = nullptr;
  obs::Counter* duplicates_counter_ = nullptr;
  obs::Counter* delivery_failures_counter_ = nullptr;
};

}  // namespace dynaplat::middleware
