// Middleware message header (SOME/IP-inspired wire format).
#pragma once

#include <cstdint>
#include <vector>

#include "middleware/payload.hpp"
#include "net/frame.hpp"

namespace dynaplat::middleware {

/// Identifies a service (== one modeled interface).
using ServiceId = std::uint16_t;
/// Identifies an event, method or stream within a service.
using ElementId = std::uint16_t;

enum class MsgType : std::uint8_t {
  kOffer = 0,        ///< service discovery: "I provide service S"
  kFind = 1,         ///< service discovery: "who provides service S?"
  kSubscribe = 2,    ///< event/stream subscription request
  kUnsubscribe = 3,
  kNotify = 4,       ///< event publication to one subscriber
  kRequest = 5,      ///< RPC request
  kResponse = 6,     ///< RPC response
  kStreamData = 7,   ///< stream frame (element = stream id, session = seq)
  kError = 8,
};

struct MessageHeader {
  MsgType type = MsgType::kError;
  ServiceId service = 0;
  ElementId element = 0;
  /// RPC correlation id, stream sequence number, or interface version for
  /// discovery messages.
  std::uint32_t session = 0;
  net::NodeId sender = 0;
  /// Truncated HMAC authentication tag (0 when auth disabled). See
  /// security::AuthenticationService.
  std::uint64_t auth_tag = 0;

  static constexpr std::size_t kWireSize = 1 + 2 + 2 + 4 + 4 + 8;

  /// Serializes header followed by `body`.
  std::vector<std::uint8_t> encode(
      const std::vector<std::uint8_t>& body) const;

  /// Serializes just the header (kWireSize bytes) into `w` — with an
  /// arena-mode writer the header lands in a recycled block and the body is
  /// appended as a slice, no linearization.
  void encode_header(PayloadWriter& w) const;

  /// Decodes a full message; returns false on malformed input.
  static bool decode(const std::vector<std::uint8_t>& wire,
                     MessageHeader& header, std::vector<std::uint8_t>& body);

  /// Chain decode: `body` becomes a sub-view of `wire` (refcount bumps
  /// only, no byte copy). `wire` may be a reassembled multi-fragment chain.
  static bool decode(const net::Payload& wire, MessageHeader& header,
                     net::Payload& body);
};

}  // namespace dynaplat::middleware
