// Byte-level serialization for middleware messages.
//
// The paper moves from "signals defined by bit offsets" to "complex objects,
// defined by complex data types" (Sec. 2.2). PayloadWriter/PayloadReader are
// the explicit little-endian wire codec those objects serialize through; all
// message headers and user data use it, so a payload is identical regardless
// of host endianness.
//
// Both ends speak the zero-copy data path (net/buffer.hpp):
//  * PayloadWriter can write into refcounted arena blocks instead of a
//    std::vector; take_chain() hands the accumulated bytes to the transport
//    as a slice chain with no further copies.
//  * PayloadReader can read a scatter-gather net::Payload directly — a
//    reassembled multi-fragment message is decoded in place, fragment by
//    fragment, without concatenating first.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/buffer.hpp"

namespace dynaplat::middleware {

class PayloadWriter {
 public:
  /// Headroom reserved at the front of the first arena block. The transport
  /// prepends in place (skb_push-style): a 29-byte obs::TraceContext for
  /// sampled chains plus its 6-byte fragment header below it, so a sampled
  /// single-fragment message still travels as a one-slice frame with no
  /// separate header block. 40 = 29 + 6 rounded up to an 8-byte boundary.
  static constexpr std::size_t kHeadroom = 40;

  /// Vector mode: bytes accumulate in an owned std::vector (bytes()/take()).
  PayloadWriter() = default;
  /// Arena mode: bytes accumulate in refcounted blocks from `arena`;
  /// retrieve them with take_chain(). bytes()/take() are invalid in this
  /// mode. The arena must outlive the writer. `size_hint` (total bytes the
  /// caller expects to write) sizes the first block so a whole message lands
  /// in one slice; it is a hint only — writers may exceed it.
  explicit PayloadWriter(net::BufferArena& arena, std::size_t size_hint = 0)
      : arena_(&arena), hint_(size_hint) {}

  /// Updates the size hint for the next message (persistent writers that
  /// serialize a stream of messages, calling take_chain() after each).
  void hint(std::size_t size_hint) { hint_ = size_hint; }

  void u8(std::uint8_t v) { *reserve(1) = v; }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed (u32) string.
  void str(const std::string& s);
  /// Length-prefixed (u32) byte blob.
  void blob(const std::vector<std::uint8_t>& b);
  /// Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t len);

  /// Vector mode only.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() {
    total_ = 0;
    return std::move(bytes_);
  }
  /// The accumulated bytes as a slice chain. Works in both modes (vector
  /// mode wraps the vector in a standalone block, no byte copy). Resets the
  /// writer.
  net::Payload take_chain();
  std::size_t size() const { return total_; }

 private:
  /// Contiguous scratch for an `n`-byte scalar (n <= 8); advances the
  /// write position. Arena mode bumps a raw pointer; anything else (vector
  /// mode, block exhausted) takes the out-of-line slow path.
  std::uint8_t* reserve(std::size_t n) {
    if (static_cast<std::size_t>(end_ - wp_) >= n) {
      std::uint8_t* p = wp_;
      wp_ += n;
      total_ += n;
      return p;
    }
    return grow(n);
  }
  std::uint8_t* grow(std::size_t n);
  void open_block(std::size_t need);
  void flush_block();

  std::vector<std::uint8_t> bytes_;   // vector mode storage
  net::BufferArena* arena_ = nullptr;
  net::Payload chain_;                // arena mode: completed blocks
  net::BufferRef cur_;                // arena mode: block being filled
  std::uint8_t* wp_ = nullptr;        // arena mode: next write position
  std::uint8_t* end_ = nullptr;       // arena mode: end of cur_'s capacity
  std::size_t cur_base_ = 0;          // first payload byte in cur_ (headroom)
  std::size_t hint_ = 0;
  std::size_t total_ = 0;
};

/// Throws std::out_of_range on truncated input — a malformed message must
/// never read past its buffer (robustness against corrupted frames).
///
/// Does not own its input: the vector or Payload passed to the constructor
/// must outlive the reader.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  /// Reads a slice chain in place (no concatenation). Single-slice chains
  /// take the same contiguous fast path as vectors.
  explicit PayloadReader(const net::Payload& payload);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  std::vector<std::uint8_t> blob();

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  void need(std::size_t n) const {
    // n is compared against the remaining count, never added to pos_:
    // a hostile length prefix close to SIZE_MAX cannot wrap the check.
    if (n > size_ - pos_) {
      throw std::out_of_range("payload truncated");
    }
  }
  /// Copies `n` bytes (already need()-checked) into dst, advancing the
  /// cursor across slices as required.
  void read(std::uint8_t* dst, std::size_t n);
  /// Fixed-width little-endian scalar (n <= 8).
  std::uint64_t scalar(std::size_t n);

  const std::uint8_t* data_ = nullptr;  // contiguous mode (null when chained)
  const net::Payload* chain_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::size_t slice_idx_ = 0;  // chain cursor
  std::size_t slice_off_ = 0;
};

}  // namespace dynaplat::middleware
