// Byte-level serialization for middleware messages.
//
// The paper moves from "signals defined by bit offsets" to "complex objects,
// defined by complex data types" (Sec. 2.2). PayloadWriter/PayloadReader are
// the explicit little-endian wire codec those objects serialize through; all
// message headers and user data use it, so a payload is identical regardless
// of host endianness.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dynaplat::middleware {

class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed (u32) string.
  void str(const std::string& s);
  /// Length-prefixed (u32) byte blob.
  void blob(const std::vector<std::uint8_t>& b);
  /// Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t len);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Throws std::out_of_range on truncated input — a malformed message must
/// never read past its buffer (robustness against corrupted frames).
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  std::vector<std::uint8_t> blob();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ >= bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::out_of_range("payload truncated");
    }
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace dynaplat::middleware
