#include "middleware/runtime.hpp"

#include <memory>

#include <cassert>

namespace dynaplat::middleware {

namespace {

// Each node's transport needs its own retransmit-jitter stream — with a
// shared stream every peer draws the same jitter sequence and a healed
// partition still retries in lockstep. An explicit jitter_stream wins;
// the node id is only the default.
TransportConfig with_node_jitter_stream(TransportConfig config,
                                        net::NodeId node) {
  if (config.jitter_stream == 0) config.jitter_stream = node;
  return config;
}

}  // namespace

ServiceRuntime::ServiceRuntime(os::Ecu& ecu, RuntimeConfig config)
    : ecu_(ecu),
      config_(config),
      transport_([&ecu](net::Frame frame) { ecu.send(std::move(frame)); },
                 ecu.medium() != nullptr ? ecu.medium()->max_payload()
                                         : 1500,
                 &ecu.simulator(),
                 with_node_jitter_stream(config.transport, ecu.node_id())) {
  ecu_.set_receive_handler(
      [this](const net::Frame& frame) { transport_.on_frame(frame); });
  transport_.set_batch_sender([&ecu](std::vector<net::Frame>& frames) {
    ecu.send_batch(frames);
  });
  transport_.set_traced_handler([this](net::NodeId src, net::Payload message,
                                       const obs::TraceContext& ctx) {
    on_message(src, std::move(message), ctx);
  });
  if (ecu_.trace() != nullptr) {
    auto& metrics = ecu_.trace()->metrics();
    const std::string prefix = "mw." + ecu_.name() + ".";
    offers_counter_ = &metrics.counter(prefix + "offers");
    subscribes_counter_ = &metrics.counter(prefix + "subscribes");
    calls_counter_ = &metrics.counter(prefix + "calls");
    failed_calls_counter_ = &metrics.counter(prefix + "failed_calls");
    call_latency_ns_ = &metrics.histogram(prefix + "call_latency_ns");
    bind_latency_ns_ = &metrics.histogram(prefix + "bind_latency_ns");
    transport_.set_metrics(metrics, prefix + "transport.");
    transport_.set_coverage(&ecu_.trace()->coverage());
    if (config_.trace_sample_every != 0) {
      tracer_ = std::make_unique<obs::ChainTracer>(
          ecu_.trace()->buffer(), metrics, ecu_.name() + "/chain",
          static_cast<std::uint32_t>(ecu_.node_id()),
          obs::ChainTracerConfig{config_.trace_sample_every});
      transport_.set_tracer(tracer_.get());
    }
  }
}

std::uint32_t ServiceRuntime::flow_for(ServiceId service,
                                       ElementId element) const {
  return (std::uint32_t(service) << 8) ^ element;
}

void ServiceRuntime::charge(std::size_t bytes, std::function<void()> fn) {
  if (!config_.charge_cpu || ecu_.failed() ||
      ecu_.processor().halted()) {
    if (!ecu_.failed()) fn();
    return;
  }
  const std::uint64_t instructions =
      config_.instructions_per_message +
      config_.instructions_per_kib * (bytes / 1024);
  ecu_.processor().submit("mw", instructions, config_.service_priority,
                          os::TaskClass::kNonDeterministic, std::move(fn));
}

void ServiceRuntime::send_message(net::NodeId dst, MessageHeader header,
                                  const std::vector<std::uint8_t>& body,
                                  net::Priority priority,
                                  obs::TraceContext ctx) {
  send_message_block(dst, header, net::BufferRef::adopt_vector(body),
                     priority, ctx);
}

void ServiceRuntime::send_message_block(net::NodeId dst, MessageHeader header,
                                        const net::BufferRef& body,
                                        net::Priority priority,
                                        obs::TraceContext ctx) {
  header.sender = ecu_.node_id();
  // The tagger API speaks vectors; adopted blocks expose theirs by
  // reference, so stamping stays copy-free.
  if (tagger_) header.auth_tag = tagger_(dst, header, *body->vec());
  // Wire chain = 21-byte header in a recycled arena block + a view of the
  // shared body block. Nothing is linearized between here and the frames.
  PayloadWriter w(transport_.arena());
  header.encode_header(w);
  net::Payload wire = w.take_chain();
  wire.append(body, 0, body->size());
  const ServiceId service = header.service;
  const ElementId element = header.element;
  charge(wire.size(), [this, dst, priority, service, element, ctx,
                       wire = std::move(wire)]() mutable {
    // The transport stamps ctx.sent_ns here, after the CPU charge, so the
    // serialize segment covers middleware processing time.
    transport_.send(dst, priority, flow_for(service, element),
                    std::move(wire), ctx);
  });
}

// --- Discovery ----------------------------------------------------------------

void ServiceRuntime::offer(ServiceId service, std::uint32_t version) {
  if (offers_counter_ != nullptr) offers_counter_->add();
  offered_[service] = version;
  providers_[service] = ecu_.node_id();
  provider_versions_[service] = version;
  MessageHeader header;
  header.type = MsgType::kOffer;
  header.service = service;
  header.session = version;
  send_message(net::kBroadcast, header, {}, net::kPriorityHighest);
  flush_parked(service);
}

void ServiceRuntime::stop_offer(ServiceId service) {
  offered_.erase(service);
  if (providers_.count(service) &&
      providers_[service] == ecu_.node_id()) {
    providers_.erase(service);
    provider_versions_.erase(service);
  }
}

std::optional<net::NodeId> ServiceRuntime::provider_of(
    ServiceId service) const {
  auto it = providers_.find(service);
  if (it == providers_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> ServiceRuntime::provider_version(
    ServiceId service) const {
  auto it = provider_versions_.find(service);
  if (it == provider_versions_.end()) return std::nullopt;
  return it->second;
}

void ServiceRuntime::require_version(ServiceId service,
                                     std::uint32_t min_version) {
  required_versions_[service] = min_version;
  // Forget an already-bound provider that is too old.
  auto version = provider_versions_.find(service);
  if (version != provider_versions_.end() &&
      version->second < min_version) {
    providers_.erase(service);
    provider_versions_.erase(version);
  }
}

void ServiceRuntime::rebind(ServiceId service) {
  if (offered_.count(service) > 0) return;  // still the provider of record
  providers_.erase(service);
  provider_versions_.erase(service);
  when_provider_known(service, [this, service] {
    const auto provider = provider_of(service);
    if (!provider || *provider == ecu_.node_id()) return;
    for (auto& [key, sub] : subscriptions_) {
      if (key.first != service) continue;
      MessageHeader header;
      header.type = MsgType::kSubscribe;
      header.service = key.first;
      header.element = key.second;
      send_message(*provider, header, {}, net::kPriorityHighest);
      sub.subscribed_remotely = true;
    }
  });
}

void ServiceRuntime::when_provider_known(ServiceId service,
                                         std::function<void()> work) {
  if (providers_.count(service)) {
    work();
    return;
  }
  // Parked work measures binding latency: park time -> execution (Offer
  // arrival or Find timeout).
  const sim::Time parked_at = ecu_.simulator().now();
  parked_[service].push_back(
      [this, parked_at, work = std::move(work)]() mutable {
        if (bind_latency_ns_ != nullptr) {
          bind_latency_ns_->observe(
              static_cast<double>(ecu_.simulator().now() - parked_at));
        }
        work();
      });
  if (find_timeouts_.count(service)) return;  // Find already outstanding
  MessageHeader header;
  header.type = MsgType::kFind;
  header.service = service;
  send_message(net::kBroadcast, header, {}, net::kPriorityHighest);
  find_timeouts_[service] = ecu_.simulator().schedule_in(
      config_.find_timeout, [this, service] {
        find_timeouts_.erase(service);
        // Provider never appeared: *run* the parked work against the
        // still-unknown provider so callers observe the failure (an RPC's
        // response handler fires with ok == false; a subscribe re-parks
        // nothing and simply waits for a future Offer).
        auto it = parked_.find(service);
        if (it == parked_.end()) return;
        auto work = std::move(it->second);
        parked_.erase(it);
        for (auto& fn : work) fn();
      });
}

void ServiceRuntime::flush_parked(ServiceId service) {
  auto timeout = find_timeouts_.find(service);
  if (timeout != find_timeouts_.end()) {
    ecu_.simulator().cancel(timeout->second);
    find_timeouts_.erase(timeout);
  }
  auto it = parked_.find(service);
  if (it == parked_.end()) return;
  auto work = std::move(it->second);
  parked_.erase(it);
  for (auto& fn : work) fn();
}

// --- Events ----------------------------------------------------------------------

void ServiceRuntime::subscribe(ServiceId service, ElementId event,
                               EventHandler handler) {
  if (subscribes_counter_ != nullptr) subscribes_counter_->add();
  auto& sub = subscriptions_[{service, event}];
  sub.event_handler = std::move(handler);
  when_provider_known(service, [this, service, event] {
    const auto provider = provider_of(service);
    if (!provider) return;
    auto& sub = subscriptions_[{service, event}];
    if (*provider == ecu_.node_id()) {
      sub.subscribed_remotely = true;  // local: nothing to send
      return;
    }
    MessageHeader header;
    header.type = MsgType::kSubscribe;
    header.service = service;
    header.element = event;
    send_message(*provider, header, {}, net::kPriorityHighest);
    sub.subscribed_remotely = true;
  });
}

void ServiceRuntime::unsubscribe(ServiceId service, ElementId event) {
  const Key key{service, event};
  auto it = subscriptions_.find(key);
  if (it == subscriptions_.end()) return;
  const bool was_remote = it->second.subscribed_remotely;
  subscriptions_.erase(it);
  const auto provider = provider_of(service);
  if (was_remote && provider && *provider != ecu_.node_id()) {
    MessageHeader header;
    header.type = MsgType::kUnsubscribe;
    header.service = service;
    header.element = event;
    send_message(*provider, header, {}, net::kPriorityHighest);
  }
}

void ServiceRuntime::publish(ServiceId service, ElementId event,
                             std::vector<std::uint8_t> data,
                             net::Priority priority) {
  assert(offered_.count(service) && "publishing on a service not offered");
  MessageHeader header;
  header.type = MsgType::kNotify;
  header.service = service;
  header.element = event;

  // Wrap the payload once; local dispatch and every remote notification
  // share the same refcounted block (the handler copy at the app boundary
  // is the only byte copy left on this path).
  net::BufferRef body = net::BufferRef::adopt_vector(std::move(data));

  // Local subscribers: dispatch through the CPU (RTE-local path).
  auto local = subscriptions_.find({service, event});
  if (local != subscriptions_.end() && local->second.event_handler) {
    charge(body->size(), [this, service, event, body] {
      auto it = subscriptions_.find({service, event});
      if (it != subscriptions_.end() && it->second.event_handler) {
        it->second.event_handler(*body->vec(), ecu_.node_id());
      }
    });
  }
  // Remote subscribers: one notification each, sharing one chain context
  // (same trace id, one end-to-end close per receiver).
  auto remotes = remote_subscribers_.find({service, event});
  if (remotes != remote_subscribers_.end() && !remotes->second.empty()) {
    const obs::TraceContext ctx =
        tracer_ != nullptr
            ? tracer_->start(
                  static_cast<std::uint64_t>(ecu_.simulator().now()))
            : obs::TraceContext{};
    for (net::NodeId dst : remotes->second) {
      send_message_block(dst, header, body, priority, ctx);
    }
  }
}

// --- RPC -----------------------------------------------------------------------------

void ServiceRuntime::provide_method(ServiceId service, ElementId method,
                                    MethodHandler handler) {
  methods_[{service, method}] = std::move(handler);
}

void ServiceRuntime::call(ServiceId service, ElementId method,
                          std::vector<std::uint8_t> request,
                          ResponseHandler on_response,
                          net::Priority priority) {
  if (calls_counter_ != nullptr) calls_counter_->add();
  if (call_latency_ns_ != nullptr) {
    // Wrap before binding so the latency sample covers discovery + charge +
    // transport + provider execution, success or failure.
    const sim::Time issued_at = ecu_.simulator().now();
    on_response = [this, issued_at, inner = std::move(on_response)](
                      bool ok, std::vector<std::uint8_t> response) {
      call_latency_ns_->observe(
          static_cast<double>(ecu_.simulator().now() - issued_at));
      if (inner) inner(ok, std::move(response));
    };
  }
  when_provider_known(
      service,
      [this, service, method, request = std::move(request),
       on_response = std::move(on_response), priority]() mutable {
        const auto provider = provider_of(service);
        if (!provider) {
          note_failed_call();
          if (on_response) on_response(false, {});
          return;
        }
        const std::uint32_t session = next_session_++;
        // Local provider: invoke the handler through the CPU.
        if (*provider == ecu_.node_id()) {
          auto it = methods_.find({service, method});
          if (it == methods_.end()) {
            note_failed_call();
            if (on_response) on_response(false, {});
            return;
          }
          charge(request.size(),
                 [this, service, method, request = std::move(request),
                  on_response = std::move(on_response)]() mutable {
                   auto handler = methods_.find({service, method});
                   if (handler == methods_.end()) {
                     note_failed_call();
                     if (on_response) on_response(false, {});
                     return;
                   }
                   auto response = handler->second(request);
                   charge(response.size(),
                          [on_response = std::move(on_response),
                           response = std::move(response)]() mutable {
                            if (on_response) {
                              on_response(true, std::move(response));
                            }
                          });
                 });
          return;
        }
        // Remote provider: correlate by session with a timeout.
        PendingCall pending;
        pending.handler = std::move(on_response);
        pending.timeout = ecu_.simulator().schedule_in(
            config_.call_timeout, [this, session] {
              auto it = pending_calls_.find(session);
              if (it == pending_calls_.end()) return;
              auto handler = std::move(it->second.handler);
              pending_calls_.erase(it);
              note_failed_call();
              if (handler) handler(false, {});
            });
        pending_calls_.emplace(session, std::move(pending));
        MessageHeader header;
        header.type = MsgType::kRequest;
        header.service = service;
        header.element = method;
        header.session = session;
        const obs::TraceContext ctx =
            tracer_ != nullptr
                ? tracer_->start(
                      static_cast<std::uint64_t>(ecu_.simulator().now()))
                : obs::TraceContext{};
        send_message(*provider, header, request, priority, ctx);
      });
}

// --- Fields ------------------------------------------------------------------------------

void ServiceRuntime::provide_field(ServiceId service, ElementId field,
                                   std::vector<std::uint8_t> initial_value) {
  const Key key{service, field};
  fields_[key] = std::move(initial_value);
  provide_method(service, field_getter(field),
                 [this, key](const std::vector<std::uint8_t>&) {
                   return fields_[key];
                 });
  provide_method(
      service, field_setter(field),
      [this, service, field, key](const std::vector<std::uint8_t>& value) {
        fields_[key] = value;
        publish(service, field_notifier(field), value,
                net::kPriorityLowest);
        return value;  // accepted value echoes back
      });
}

std::optional<std::vector<std::uint8_t>> ServiceRuntime::field_value(
    ServiceId service, ElementId field) const {
  auto it = fields_.find({service, field});
  if (it == fields_.end()) return std::nullopt;
  return it->second;
}

void ServiceRuntime::field_get(ServiceId service, ElementId field,
                               ResponseHandler on_value) {
  call(service, field_getter(field), {}, std::move(on_value));
}

void ServiceRuntime::field_set(ServiceId service, ElementId field,
                               std::vector<std::uint8_t> value,
                               ResponseHandler on_result) {
  call(service, field_setter(field), std::move(value),
       std::move(on_result));
}

void ServiceRuntime::subscribe_field(ServiceId service, ElementId field,
                                     EventHandler on_change) {
  // Seed with the current value, then follow changes.
  auto handler = std::make_shared<EventHandler>(std::move(on_change));
  subscribe(service, field_notifier(field),
            [handler](std::vector<std::uint8_t> value, net::NodeId source) {
              (*handler)(std::move(value), source);
            });
  field_get(service, field,
            [this, handler, service](bool ok,
                                     std::vector<std::uint8_t> value) {
              if (!ok) return;
              const auto provider = provider_of(service);
              (*handler)(std::move(value),
                         provider.value_or(ecu_.node_id()));
            });
}

// --- Streams ----------------------------------------------------------------------------

void ServiceRuntime::subscribe_stream(ServiceId service, ElementId stream,
                                      StreamHandler handler) {
  if (subscribes_counter_ != nullptr) subscribes_counter_->add();
  auto& sub = subscriptions_[{service, stream}];
  sub.stream_handler = std::move(handler);
  sub.next_sequence = 0;
  when_provider_known(service, [this, service, stream] {
    const auto provider = provider_of(service);
    if (!provider || *provider == ecu_.node_id()) return;
    MessageHeader header;
    header.type = MsgType::kSubscribe;
    header.service = service;
    header.element = stream;
    send_message(*provider, header, {}, net::kPriorityHighest);
  });
}

void ServiceRuntime::stream_send(ServiceId service, ElementId stream,
                                 std::vector<std::uint8_t> data,
                                 net::Priority priority) {
  assert(offered_.count(service) && "streaming on a service not offered");
  const std::uint32_t sequence = stream_sequences_[{service, stream}]++;
  MessageHeader header;
  header.type = MsgType::kStreamData;
  header.service = service;
  header.element = stream;
  header.session = sequence;

  net::BufferRef body = net::BufferRef::adopt_vector(std::move(data));
  auto local = subscriptions_.find({service, stream});
  if (local != subscriptions_.end() && local->second.stream_handler) {
    charge(body->size(), [this, service, stream, sequence, body] {
      auto it = subscriptions_.find({service, stream});
      if (it != subscriptions_.end() && it->second.stream_handler) {
        it->second.stream_handler(sequence, *body->vec());
      }
    });
  }
  auto remotes = remote_subscribers_.find({service, stream});
  if (remotes != remote_subscribers_.end() && !remotes->second.empty()) {
    const obs::TraceContext ctx =
        tracer_ != nullptr
            ? tracer_->start(
                  static_cast<std::uint64_t>(ecu_.simulator().now()))
            : obs::TraceContext{};
    for (net::NodeId dst : remotes->second) {
      send_message_block(dst, header, body, priority, ctx);
    }
  }
}

std::uint64_t ServiceRuntime::stream_losses(ServiceId service,
                                            ElementId stream) const {
  auto it = subscriptions_.find({service, stream});
  return it == subscriptions_.end() ? 0 : it->second.losses;
}

// --- Inbound path ------------------------------------------------------------------------

void ServiceRuntime::on_message(net::NodeId /*src*/, net::Payload wire,
                                obs::TraceContext ctx) {
  MessageHeader header;
  net::Payload body_chain;
  if (!MessageHeader::decode(wire, header, body_chain)) {
    ++rejected_;
    return;
  }
  // The one byte copy on the inbound path: application handlers and the
  // inbound filter speak std::vector, so the body chain linearizes here —
  // after the header was parsed in place and before any dispatch copy.
  std::vector<std::uint8_t> body = body_chain.to_vector();
  if (filter_ && !filter_(header, body)) {
    ++rejected_;
    sim::Trace* trace = ecu_.trace();
    if (trace != nullptr && trace->enabled(sim::TraceCategory::kSecurity)) {
      trace->record(ecu_.simulator().now(), sim::TraceCategory::kSecurity,
                    ecu_.name(), "message_rejected", header.service);
    }
    return;
  }
  const sim::Time delivered_at = ecu_.simulator().now();
  charge(body.size(),
         [this, header, ctx, delivered_at, body = std::move(body)]() mutable {
           if (tracer_ != nullptr && ctx.sampled()) {
             // A request continues into the provider's reply; everything
             // else terminates the chain at this dispatch.
             const bool terminal = header.type != MsgType::kRequest;
             tracer_->on_dispatch(
                 ctx, static_cast<std::uint64_t>(delivered_at),
                 static_cast<std::uint64_t>(ecu_.simulator().now()), terminal);
           }
           dispatch(header, std::move(body), ctx);
         });
}

void ServiceRuntime::dispatch(MessageHeader header,
                              std::vector<std::uint8_t> body,
                              const obs::TraceContext& ctx) {
  const Key key{header.service, header.element};
  switch (header.type) {
    case MsgType::kOffer: {
      auto required = required_versions_.find(header.service);
      if (required != required_versions_.end() &&
          header.session < required->second) {
        ++stale_offers_;
        break;  // too old: do not bind
      }
      auto previous = providers_.find(header.service);
      const bool provider_changed = previous == providers_.end() ||
                                    previous->second != header.sender;
      providers_[header.service] = header.sender;
      provider_versions_[header.service] = header.session;
      // Dynamic re-binding: when a service moves (update redirect across
      // nodes, redundancy failover), existing local subscriptions follow
      // the new provider by re-subscribing.
      if (provider_changed && header.sender != ecu_.node_id()) {
        for (auto& [key, sub] : subscriptions_) {
          if (key.first != header.service) continue;
          MessageHeader resubscribe;
          resubscribe.type = MsgType::kSubscribe;
          resubscribe.service = key.first;
          resubscribe.element = key.second;
          send_message(header.sender, resubscribe, {},
                       net::kPriorityHighest);
          sub.subscribed_remotely = true;
        }
      }
      flush_parked(header.service);
      break;
    }
    case MsgType::kFind: {
      auto it = offered_.find(header.service);
      if (it != offered_.end()) {
        MessageHeader reply;
        reply.type = MsgType::kOffer;
        reply.service = header.service;
        reply.session = it->second;
        send_message(net::kBroadcast, reply, {}, net::kPriorityHighest);
      }
      break;
    }
    case MsgType::kSubscribe: {
      remote_subscribers_[key].insert(header.sender);
      break;
    }
    case MsgType::kUnsubscribe: {
      auto it = remote_subscribers_.find(key);
      if (it != remote_subscribers_.end()) it->second.erase(header.sender);
      break;
    }
    case MsgType::kNotify: {
      auto it = subscriptions_.find(key);
      if (it != subscriptions_.end() && it->second.event_handler) {
        it->second.event_handler(std::move(body), header.sender);
      }
      break;
    }
    case MsgType::kRequest: {
      auto it = methods_.find(key);
      MessageHeader reply;
      reply.service = header.service;
      reply.element = header.element;
      reply.session = header.session;
      // The reply hop continues the caller's chain: same trace id, fresh
      // span, so the response closes end-to-end back at the caller.
      const obs::TraceContext reply_ctx =
          ctx.active() && tracer_ != nullptr ? tracer_->extend(ctx)
                                             : obs::TraceContext{};
      if (it == methods_.end()) {
        reply.type = MsgType::kError;
        send_message(header.sender, reply, {}, net::kPriorityHighest,
                     reply_ctx);
      } else {
        reply.type = MsgType::kResponse;
        auto response = it->second(body);
        send_message(header.sender, reply, response, net::kPriorityLowest,
                     reply_ctx);
      }
      break;
    }
    case MsgType::kResponse:
    case MsgType::kError: {
      auto it = pending_calls_.find(header.session);
      if (it == pending_calls_.end()) break;  // late response after timeout
      ecu_.simulator().cancel(it->second.timeout);
      auto handler = std::move(it->second.handler);
      pending_calls_.erase(it);
      if (handler) {
        handler(header.type == MsgType::kResponse, std::move(body));
      }
      break;
    }
    case MsgType::kStreamData: {
      auto it = subscriptions_.find(key);
      if (it == subscriptions_.end() || !it->second.stream_handler) break;
      auto& sub = it->second;
      if (header.session > sub.next_sequence) {
        sub.losses += header.session - sub.next_sequence;
      }
      sub.next_sequence = header.session + 1;
      sub.stream_handler(header.session, std::move(body));
      break;
    }
  }
}

}  // namespace dynaplat::middleware
