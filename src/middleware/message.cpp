#include "middleware/message.hpp"

namespace dynaplat::middleware {

void MessageHeader::encode_header(PayloadWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(service);
  w.u16(element);
  w.u32(session);
  w.u32(sender);
  w.u64(auth_tag);
}

std::vector<std::uint8_t> MessageHeader::encode(
    const std::vector<std::uint8_t>& body) const {
  PayloadWriter w;
  encode_header(w);
  w.raw(body.data(), body.size());
  return w.take();
}

namespace {

bool decode_fields(PayloadReader& r, MessageHeader& header) {
  const std::uint8_t type_raw = r.u8();
  if (type_raw > static_cast<std::uint8_t>(MsgType::kError)) return false;
  header.type = static_cast<MsgType>(type_raw);
  header.service = r.u16();
  header.element = r.u16();
  header.session = r.u32();
  header.sender = r.u32();
  header.auth_tag = r.u64();
  return true;
}

}  // namespace

bool MessageHeader::decode(const std::vector<std::uint8_t>& wire,
                           MessageHeader& header,
                           std::vector<std::uint8_t>& body) {
  if (wire.size() < kWireSize) return false;
  PayloadReader r(wire);
  if (!decode_fields(r, header)) return false;
  body.assign(wire.begin() + static_cast<long>(kWireSize), wire.end());
  return true;
}

bool MessageHeader::decode(const net::Payload& wire, MessageHeader& header,
                           net::Payload& body) {
  if (wire.size() < kWireSize) return false;
  PayloadReader r(wire);
  if (!decode_fields(r, header)) return false;
  body = wire.subspan(kWireSize);
  return true;
}

}  // namespace dynaplat::middleware
