// Runtime monitoring (paper Sec. 3.4).
//
// Watches the key parameters of deterministic applications — period,
// deadline, jitter, memory usage — against their modeled contracts, records
// the conditions leading to a detected fault (flight recorder) and forwards
// fault reports to the manufacturer backend when a connection is available.
// The same samples accumulate into a certification dataset ("runtime
// monitoring can generate data sets, efficiently supporting the safety
// certification processes").
//
// Monitoring itself costs CPU (one sampling work item per period), so its
// overhead is measurable and ablatable (E10).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "os/ecu.hpp"
#include "sim/trace.hpp"

namespace dynaplat::monitor {

struct MonitorConfig {
  sim::Duration sampling_period = 10 * sim::kMillisecond;
  /// CPU cost per sampling pass (scales with watched-task count).
  std::uint64_t instructions_per_task = 500;
  /// Priority of the sampling work item. Top priority: the monitor is a
  /// tiny platform service that must observe even a fully overloaded ECU
  /// (an overload is exactly when its faults matter).
  int priority = 0;
  /// Trace records kept as pre-fault context in each fault record.
  std::size_t flight_recorder_depth = 32;
};

/// The monitored contract of one deterministic task, drawn from the model.
struct Contract {
  os::TaskId task = os::kInvalidTask;
  /// Core hosting the task (index into the ECU's processors). Resolved at
  /// sample time: an ECU crash/restart rebuilds its processors, so a
  /// cached Processor pointer would dangle.
  std::size_t core = 0;
  std::string name;
  sim::Duration period = 0;
  sim::Duration deadline = 0;
  /// Maximum tolerated response-time spread (max - min) once warmed up.
  sim::Duration max_response_jitter = 0;
  /// Deadline-miss ratio above which a fault is raised.
  double max_miss_ratio = 0.0;
  /// Memory ceiling (checked against the app's process when set).
  std::size_t max_memory_bytes = 0;
  os::ProcessId process = os::kInvalidProcess;
};

struct FaultRecord {
  sim::Time at = 0;
  std::string subject;
  std::string kind;  ///< "deadline_miss" | "jitter" | "memory" | "starvation"
  double value = 0.0;
  double limit = 0.0;
  /// Flight-recorder excerpt: the most recent trace records before the
  /// fault, for off-board analysis.
  std::vector<sim::TraceRecord> context;
};

class RuntimeMonitor {
 public:
  RuntimeMonitor(os::Ecu& ecu, MonitorConfig config = {});
  ~RuntimeMonitor();

  void watch(Contract contract);
  void unwatch(os::TaskId task);

  void start();
  void stop();
  bool running() const { return running_; }

  /// All faults detected so far.
  const std::vector<FaultRecord>& faults() const { return faults_; }

  /// "If an internet connection is available, transfer to the manufacturer":
  /// a sink invoked on each fault (e.g. the backend uplink). Replaces all
  /// previously registered sinks.
  void set_report_sink(std::function<void(const FaultRecord&)> sink) {
    sinks_.clear();
    sinks_.push_back(std::move(sink));
  }

  /// Registers an additional sink without displacing existing ones (several
  /// platform services — diagnostics uplink, degradation manager — may each
  /// need to observe faults).
  void add_report_sink(std::function<void(const FaultRecord&)> sink) {
    sinks_.push_back(std::move(sink));
  }

  /// Sampling passes executed (cost accounting for E10).
  std::uint64_t samples_taken() const { return samples_taken_; }

  /// Certification dataset: per-task observed timing envelope vs. contract.
  std::string certification_report() const;

 private:
  struct Watch {
    Contract contract;
    std::uint64_t last_misses = 0;
    std::uint64_t last_completions = 0;
    bool primed = false;  ///< baselines recorded by at least one sample
  };

  void sample();
  void raise(const std::string& subject, const std::string& kind,
             double value, double limit);

  os::Ecu& ecu_;
  MonitorConfig config_;
  std::map<os::TaskId, Watch> watches_;
  std::vector<FaultRecord> faults_;
  std::vector<std::function<void(const FaultRecord&)>> sinks_;
  sim::EventId sampler_;
  bool running_ = false;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace dynaplat::monitor
