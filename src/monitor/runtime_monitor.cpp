#include "monitor/runtime_monitor.hpp"

#include <sstream>

namespace dynaplat::monitor {

RuntimeMonitor::RuntimeMonitor(os::Ecu& ecu, MonitorConfig config)
    : ecu_(ecu), config_(config) {}

RuntimeMonitor::~RuntimeMonitor() { stop(); }

void RuntimeMonitor::watch(Contract contract) {
  watches_[contract.task] = Watch{std::move(contract), 0, 0};
}

void RuntimeMonitor::unwatch(os::TaskId task) { watches_.erase(task); }

void RuntimeMonitor::start() {
  if (running_) return;
  running_ = true;
  sampler_ = ecu_.simulator().schedule_every(
      ecu_.simulator().now() + config_.sampling_period,
      config_.sampling_period, [this] {
        // The sampling pass itself is CPU work on the monitored ECU.
        const std::uint64_t cost =
            config_.instructions_per_task *
            std::max<std::uint64_t>(watches_.size(), 1);
        ecu_.processor().submit("monitor", cost, config_.priority,
                                os::TaskClass::kNonDeterministic,
                                [this] { sample(); });
      });
}

void RuntimeMonitor::stop() {
  if (!running_) return;
  running_ = false;
  ecu_.simulator().cancel(sampler_);
  sampler_ = {};
}

void RuntimeMonitor::raise(const std::string& subject, const std::string& kind,
                           double value, double limit) {
  FaultRecord record;
  record.at = ecu_.simulator().now();
  record.subject = subject;
  record.kind = kind;
  record.value = value;
  record.limit = limit;
  sim::Trace* trace = ecu_.trace();
  if (trace != nullptr) {
    // Flight recorder: materialize only the newest N events — with a
    // ring-bounded trace this stays O(depth) regardless of run length.
    record.context = trace->tail(config_.flight_recorder_depth);
    if (trace->enabled(sim::TraceCategory::kFault)) {
      trace->record(record.at, sim::TraceCategory::kFault,
                    ecu_.name() + "/" + subject, "monitor_" + kind,
                    static_cast<std::int64_t>(value));
    }
    trace->metrics()
        .counter("monitor." + ecu_.name() + ".faults." + kind)
        .add();
  }
  for (const auto& sink : sinks_) {
    if (sink) sink(record);
  }
  faults_.push_back(std::move(record));
}

void RuntimeMonitor::sample() {
  if (!running_) return;  // a pass already queued when stop() ran
  ++samples_taken_;
  for (auto& [task_id, watch] : watches_) {
    const Contract& contract = watch.contract;
    os::Processor& cpu = ecu_.processor(contract.core);
    if (!cpu.has_task(task_id)) {
      continue;  // task removed (update in progress); contract dormant
    }
    const os::TaskStats& stats = cpu.stats(task_id);

    // New deadline misses since the previous sample.
    if (stats.deadline_misses > watch.last_misses) {
      raise(contract.name, "deadline_miss",
            static_cast<double>(stats.deadline_misses - watch.last_misses),
            0.0);
    }
    watch.last_misses = stats.deadline_misses;

    // Aggregate miss ratio.
    if (contract.max_miss_ratio > 0.0 && stats.completions > 10 &&
        stats.miss_ratio() > contract.max_miss_ratio) {
      raise(contract.name, "miss_ratio", stats.miss_ratio(),
            contract.max_miss_ratio);
    }

    // Response-time spread (jitter) once enough samples exist.
    if (contract.max_response_jitter > 0 &&
        stats.response_time.count() > 10) {
      const double spread =
          stats.response_time.max() - stats.response_time.min();
      if (spread > static_cast<double>(contract.max_response_jitter)) {
        raise(contract.name, "jitter", spread,
              static_cast<double>(contract.max_response_jitter));
      }
    }

    // Starvation: no completions at all across a sampling period while the
    // task should have run several times. The first sample only primes the
    // baseline (a freshly watched task has completed nothing yet).
    if (watch.primed && contract.period > 0 &&
        stats.completions == watch.last_completions &&
        config_.sampling_period > 3 * contract.period) {
      raise(contract.name, "starvation", 0.0,
            static_cast<double>(contract.period));
    }
    watch.last_completions = stats.completions;
    watch.primed = true;

    // Memory ceiling.
    if (contract.max_memory_bytes > 0 &&
        contract.process != os::kInvalidProcess &&
        ecu_.memory().exists(contract.process)) {
      const auto used = ecu_.memory().info(contract.process).used;
      if (used > contract.max_memory_bytes) {
        raise(contract.name, "memory", static_cast<double>(used),
              static_cast<double>(contract.max_memory_bytes));
      }
    }
  }
}

std::string RuntimeMonitor::certification_report() const {
  std::ostringstream os;
  os << "# certification dataset: " << ecu_.name() << "\n";
  os << "# task period_ns deadline_ns resp_mean_ns resp_p99_ns resp_max_ns "
        "misses completions faults\n";
  for (const auto& [task_id, watch] : watches_) {
    const os::Processor& cpu = ecu_.processor(watch.contract.core);
    if (!cpu.has_task(task_id)) continue;
    const auto& stats = cpu.stats(task_id);
    std::size_t fault_count = 0;
    for (const auto& fault : faults_) {
      if (fault.subject == watch.contract.name) ++fault_count;
    }
    os << watch.contract.name << " " << watch.contract.period << " "
       << watch.contract.deadline << " " << stats.response_time.mean() << " "
       << stats.response_time.percentile(99) << " "
       << stats.response_time.max() << " " << stats.deadline_misses << " "
       << stats.completions << " " << fault_count << "\n";
  }
  return os.str();
}

}  // namespace dynaplat::monitor
