# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("crypto")
subdirs("net")
subdirs("os")
subdirs("model")
subdirs("middleware")
subdirs("monitor")
subdirs("security")
subdirs("dse")
subdirs("platform")
subdirs("xil")
