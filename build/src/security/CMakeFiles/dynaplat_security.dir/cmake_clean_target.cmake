file(REMOVE_RECURSE
  "libdynaplat_security.a"
)
