# Empty compiler generated dependencies file for dynaplat_security.
# This may be replaced when dependencies are built.
