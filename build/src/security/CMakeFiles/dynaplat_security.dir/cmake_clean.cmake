file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_security.dir/analyzer.cpp.o"
  "CMakeFiles/dynaplat_security.dir/analyzer.cpp.o.d"
  "CMakeFiles/dynaplat_security.dir/auth.cpp.o"
  "CMakeFiles/dynaplat_security.dir/auth.cpp.o.d"
  "CMakeFiles/dynaplat_security.dir/package.cpp.o"
  "CMakeFiles/dynaplat_security.dir/package.cpp.o.d"
  "CMakeFiles/dynaplat_security.dir/update_master.cpp.o"
  "CMakeFiles/dynaplat_security.dir/update_master.cpp.o.d"
  "libdynaplat_security.a"
  "libdynaplat_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
