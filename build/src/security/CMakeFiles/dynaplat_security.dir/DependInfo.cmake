
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/analyzer.cpp" "src/security/CMakeFiles/dynaplat_security.dir/analyzer.cpp.o" "gcc" "src/security/CMakeFiles/dynaplat_security.dir/analyzer.cpp.o.d"
  "/root/repo/src/security/auth.cpp" "src/security/CMakeFiles/dynaplat_security.dir/auth.cpp.o" "gcc" "src/security/CMakeFiles/dynaplat_security.dir/auth.cpp.o.d"
  "/root/repo/src/security/package.cpp" "src/security/CMakeFiles/dynaplat_security.dir/package.cpp.o" "gcc" "src/security/CMakeFiles/dynaplat_security.dir/package.cpp.o.d"
  "/root/repo/src/security/update_master.cpp" "src/security/CMakeFiles/dynaplat_security.dir/update_master.cpp.o" "gcc" "src/security/CMakeFiles/dynaplat_security.dir/update_master.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dynaplat_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/dynaplat_middleware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
