# Empty compiler generated dependencies file for dynaplat_xil.
# This may be replaced when dependencies are built.
