file(REMOVE_RECURSE
  "libdynaplat_xil.a"
)
