file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_xil.dir/testbench.cpp.o"
  "CMakeFiles/dynaplat_xil.dir/testbench.cpp.o.d"
  "libdynaplat_xil.a"
  "libdynaplat_xil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_xil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
