file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_model.dir/codegen.cpp.o"
  "CMakeFiles/dynaplat_model.dir/codegen.cpp.o.d"
  "CMakeFiles/dynaplat_model.dir/parser.cpp.o"
  "CMakeFiles/dynaplat_model.dir/parser.cpp.o.d"
  "CMakeFiles/dynaplat_model.dir/system_model.cpp.o"
  "CMakeFiles/dynaplat_model.dir/system_model.cpp.o.d"
  "CMakeFiles/dynaplat_model.dir/verifier.cpp.o"
  "CMakeFiles/dynaplat_model.dir/verifier.cpp.o.d"
  "libdynaplat_model.a"
  "libdynaplat_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
