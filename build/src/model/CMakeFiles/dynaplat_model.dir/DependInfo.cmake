
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/codegen.cpp" "src/model/CMakeFiles/dynaplat_model.dir/codegen.cpp.o" "gcc" "src/model/CMakeFiles/dynaplat_model.dir/codegen.cpp.o.d"
  "/root/repo/src/model/parser.cpp" "src/model/CMakeFiles/dynaplat_model.dir/parser.cpp.o" "gcc" "src/model/CMakeFiles/dynaplat_model.dir/parser.cpp.o.d"
  "/root/repo/src/model/system_model.cpp" "src/model/CMakeFiles/dynaplat_model.dir/system_model.cpp.o" "gcc" "src/model/CMakeFiles/dynaplat_model.dir/system_model.cpp.o.d"
  "/root/repo/src/model/verifier.cpp" "src/model/CMakeFiles/dynaplat_model.dir/verifier.cpp.o" "gcc" "src/model/CMakeFiles/dynaplat_model.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
