file(REMOVE_RECURSE
  "libdynaplat_model.a"
)
