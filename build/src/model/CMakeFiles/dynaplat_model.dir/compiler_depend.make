# Empty compiler generated dependencies file for dynaplat_model.
# This may be replaced when dependencies are built.
