file(REMOVE_RECURSE
  "libdynaplat_os.a"
)
