
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/ecu.cpp" "src/os/CMakeFiles/dynaplat_os.dir/ecu.cpp.o" "gcc" "src/os/CMakeFiles/dynaplat_os.dir/ecu.cpp.o.d"
  "/root/repo/src/os/memory.cpp" "src/os/CMakeFiles/dynaplat_os.dir/memory.cpp.o" "gcc" "src/os/CMakeFiles/dynaplat_os.dir/memory.cpp.o.d"
  "/root/repo/src/os/processor.cpp" "src/os/CMakeFiles/dynaplat_os.dir/processor.cpp.o" "gcc" "src/os/CMakeFiles/dynaplat_os.dir/processor.cpp.o.d"
  "/root/repo/src/os/resource.cpp" "src/os/CMakeFiles/dynaplat_os.dir/resource.cpp.o" "gcc" "src/os/CMakeFiles/dynaplat_os.dir/resource.cpp.o.d"
  "/root/repo/src/os/scheduler.cpp" "src/os/CMakeFiles/dynaplat_os.dir/scheduler.cpp.o" "gcc" "src/os/CMakeFiles/dynaplat_os.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
