# Empty dependencies file for dynaplat_os.
# This may be replaced when dependencies are built.
