file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_os.dir/ecu.cpp.o"
  "CMakeFiles/dynaplat_os.dir/ecu.cpp.o.d"
  "CMakeFiles/dynaplat_os.dir/memory.cpp.o"
  "CMakeFiles/dynaplat_os.dir/memory.cpp.o.d"
  "CMakeFiles/dynaplat_os.dir/processor.cpp.o"
  "CMakeFiles/dynaplat_os.dir/processor.cpp.o.d"
  "CMakeFiles/dynaplat_os.dir/resource.cpp.o"
  "CMakeFiles/dynaplat_os.dir/resource.cpp.o.d"
  "CMakeFiles/dynaplat_os.dir/scheduler.cpp.o"
  "CMakeFiles/dynaplat_os.dir/scheduler.cpp.o.d"
  "libdynaplat_os.a"
  "libdynaplat_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
