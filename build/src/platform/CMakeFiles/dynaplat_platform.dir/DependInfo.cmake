
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/clock_sync.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/clock_sync.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/clock_sync.cpp.o.d"
  "/root/repo/src/platform/diagnostics.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/diagnostics.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/diagnostics.cpp.o.d"
  "/root/repo/src/platform/node.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/node.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/node.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/platform.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/platform.cpp.o.d"
  "/root/repo/src/platform/reconfiguration.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/reconfiguration.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/reconfiguration.cpp.o.d"
  "/root/repo/src/platform/redundancy.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/redundancy.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/redundancy.cpp.o.d"
  "/root/repo/src/platform/update.cpp" "src/platform/CMakeFiles/dynaplat_platform.dir/update.cpp.o" "gcc" "src/platform/CMakeFiles/dynaplat_platform.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dynaplat_model.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/dynaplat_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dynaplat_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/dynaplat_security.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dynaplat_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dynaplat_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
