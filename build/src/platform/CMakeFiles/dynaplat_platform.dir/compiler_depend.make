# Empty compiler generated dependencies file for dynaplat_platform.
# This may be replaced when dependencies are built.
