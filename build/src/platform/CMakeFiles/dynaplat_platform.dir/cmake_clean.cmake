file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_platform.dir/clock_sync.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/clock_sync.cpp.o.d"
  "CMakeFiles/dynaplat_platform.dir/diagnostics.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/diagnostics.cpp.o.d"
  "CMakeFiles/dynaplat_platform.dir/node.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/node.cpp.o.d"
  "CMakeFiles/dynaplat_platform.dir/platform.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/platform.cpp.o.d"
  "CMakeFiles/dynaplat_platform.dir/reconfiguration.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/reconfiguration.cpp.o.d"
  "CMakeFiles/dynaplat_platform.dir/redundancy.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/redundancy.cpp.o.d"
  "CMakeFiles/dynaplat_platform.dir/update.cpp.o"
  "CMakeFiles/dynaplat_platform.dir/update.cpp.o.d"
  "libdynaplat_platform.a"
  "libdynaplat_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
