file(REMOVE_RECURSE
  "libdynaplat_platform.a"
)
