
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/can_bus.cpp" "src/net/CMakeFiles/dynaplat_net.dir/can_bus.cpp.o" "gcc" "src/net/CMakeFiles/dynaplat_net.dir/can_bus.cpp.o.d"
  "/root/repo/src/net/ethernet.cpp" "src/net/CMakeFiles/dynaplat_net.dir/ethernet.cpp.o" "gcc" "src/net/CMakeFiles/dynaplat_net.dir/ethernet.cpp.o.d"
  "/root/repo/src/net/flexray.cpp" "src/net/CMakeFiles/dynaplat_net.dir/flexray.cpp.o" "gcc" "src/net/CMakeFiles/dynaplat_net.dir/flexray.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/dynaplat_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/dynaplat_net.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
