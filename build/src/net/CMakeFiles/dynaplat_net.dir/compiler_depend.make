# Empty compiler generated dependencies file for dynaplat_net.
# This may be replaced when dependencies are built.
