file(REMOVE_RECURSE
  "libdynaplat_net.a"
)
