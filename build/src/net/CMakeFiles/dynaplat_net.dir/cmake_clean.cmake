file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_net.dir/can_bus.cpp.o"
  "CMakeFiles/dynaplat_net.dir/can_bus.cpp.o.d"
  "CMakeFiles/dynaplat_net.dir/ethernet.cpp.o"
  "CMakeFiles/dynaplat_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/dynaplat_net.dir/flexray.cpp.o"
  "CMakeFiles/dynaplat_net.dir/flexray.cpp.o.d"
  "CMakeFiles/dynaplat_net.dir/router.cpp.o"
  "CMakeFiles/dynaplat_net.dir/router.cpp.o.d"
  "libdynaplat_net.a"
  "libdynaplat_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
