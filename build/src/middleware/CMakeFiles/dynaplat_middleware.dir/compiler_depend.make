# Empty compiler generated dependencies file for dynaplat_middleware.
# This may be replaced when dependencies are built.
