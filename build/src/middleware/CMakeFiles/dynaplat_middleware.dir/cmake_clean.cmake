file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_middleware.dir/message.cpp.o"
  "CMakeFiles/dynaplat_middleware.dir/message.cpp.o.d"
  "CMakeFiles/dynaplat_middleware.dir/payload.cpp.o"
  "CMakeFiles/dynaplat_middleware.dir/payload.cpp.o.d"
  "CMakeFiles/dynaplat_middleware.dir/runtime.cpp.o"
  "CMakeFiles/dynaplat_middleware.dir/runtime.cpp.o.d"
  "CMakeFiles/dynaplat_middleware.dir/transport.cpp.o"
  "CMakeFiles/dynaplat_middleware.dir/transport.cpp.o.d"
  "libdynaplat_middleware.a"
  "libdynaplat_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
