
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/message.cpp" "src/middleware/CMakeFiles/dynaplat_middleware.dir/message.cpp.o" "gcc" "src/middleware/CMakeFiles/dynaplat_middleware.dir/message.cpp.o.d"
  "/root/repo/src/middleware/payload.cpp" "src/middleware/CMakeFiles/dynaplat_middleware.dir/payload.cpp.o" "gcc" "src/middleware/CMakeFiles/dynaplat_middleware.dir/payload.cpp.o.d"
  "/root/repo/src/middleware/runtime.cpp" "src/middleware/CMakeFiles/dynaplat_middleware.dir/runtime.cpp.o" "gcc" "src/middleware/CMakeFiles/dynaplat_middleware.dir/runtime.cpp.o.d"
  "/root/repo/src/middleware/transport.cpp" "src/middleware/CMakeFiles/dynaplat_middleware.dir/transport.cpp.o" "gcc" "src/middleware/CMakeFiles/dynaplat_middleware.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
