file(REMOVE_RECURSE
  "libdynaplat_middleware.a"
)
