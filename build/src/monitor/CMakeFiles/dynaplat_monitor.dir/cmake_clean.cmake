file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_monitor.dir/runtime_monitor.cpp.o"
  "CMakeFiles/dynaplat_monitor.dir/runtime_monitor.cpp.o.d"
  "libdynaplat_monitor.a"
  "libdynaplat_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
