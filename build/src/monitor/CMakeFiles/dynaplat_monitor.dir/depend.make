# Empty dependencies file for dynaplat_monitor.
# This may be replaced when dependencies are built.
