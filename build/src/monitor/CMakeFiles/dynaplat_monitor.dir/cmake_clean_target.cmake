file(REMOVE_RECURSE
  "libdynaplat_monitor.a"
)
