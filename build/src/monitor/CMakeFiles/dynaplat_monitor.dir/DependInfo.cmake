
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/runtime_monitor.cpp" "src/monitor/CMakeFiles/dynaplat_monitor.dir/runtime_monitor.cpp.o" "gcc" "src/monitor/CMakeFiles/dynaplat_monitor.dir/runtime_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
