file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_sim.dir/random.cpp.o"
  "CMakeFiles/dynaplat_sim.dir/random.cpp.o.d"
  "CMakeFiles/dynaplat_sim.dir/simulator.cpp.o"
  "CMakeFiles/dynaplat_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/dynaplat_sim.dir/stats.cpp.o"
  "CMakeFiles/dynaplat_sim.dir/stats.cpp.o.d"
  "CMakeFiles/dynaplat_sim.dir/trace.cpp.o"
  "CMakeFiles/dynaplat_sim.dir/trace.cpp.o.d"
  "libdynaplat_sim.a"
  "libdynaplat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
