file(REMOVE_RECURSE
  "libdynaplat_sim.a"
)
