# Empty compiler generated dependencies file for dynaplat_sim.
# This may be replaced when dependencies are built.
