file(REMOVE_RECURSE
  "libdynaplat_dse.a"
)
