file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_dse.dir/admission.cpp.o"
  "CMakeFiles/dynaplat_dse.dir/admission.cpp.o.d"
  "CMakeFiles/dynaplat_dse.dir/exploration.cpp.o"
  "CMakeFiles/dynaplat_dse.dir/exploration.cpp.o.d"
  "CMakeFiles/dynaplat_dse.dir/schedulability.cpp.o"
  "CMakeFiles/dynaplat_dse.dir/schedulability.cpp.o.d"
  "libdynaplat_dse.a"
  "libdynaplat_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
