# Empty dependencies file for dynaplat_dse.
# This may be replaced when dependencies are built.
