
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/admission.cpp" "src/dse/CMakeFiles/dynaplat_dse.dir/admission.cpp.o" "gcc" "src/dse/CMakeFiles/dynaplat_dse.dir/admission.cpp.o.d"
  "/root/repo/src/dse/exploration.cpp" "src/dse/CMakeFiles/dynaplat_dse.dir/exploration.cpp.o" "gcc" "src/dse/CMakeFiles/dynaplat_dse.dir/exploration.cpp.o.d"
  "/root/repo/src/dse/schedulability.cpp" "src/dse/CMakeFiles/dynaplat_dse.dir/schedulability.cpp.o" "gcc" "src/dse/CMakeFiles/dynaplat_dse.dir/schedulability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dynaplat_model.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
