# Empty compiler generated dependencies file for dynaplat_crypto.
# This may be replaced when dependencies are built.
