file(REMOVE_RECURSE
  "CMakeFiles/dynaplat_crypto.dir/bignum.cpp.o"
  "CMakeFiles/dynaplat_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/dynaplat_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/dynaplat_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/dynaplat_crypto.dir/rsa.cpp.o"
  "CMakeFiles/dynaplat_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/dynaplat_crypto.dir/sha256.cpp.o"
  "CMakeFiles/dynaplat_crypto.dir/sha256.cpp.o.d"
  "libdynaplat_crypto.a"
  "libdynaplat_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaplat_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
