file(REMOVE_RECURSE
  "libdynaplat_crypto.a"
)
