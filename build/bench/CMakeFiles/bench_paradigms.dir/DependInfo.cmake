
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_paradigms.cpp" "bench/CMakeFiles/bench_paradigms.dir/bench_paradigms.cpp.o" "gcc" "bench/CMakeFiles/bench_paradigms.dir/bench_paradigms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/dynaplat_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/xil/CMakeFiles/dynaplat_xil.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dynaplat_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/dynaplat_security.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/dynaplat_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dynaplat_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dynaplat_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dynaplat_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
