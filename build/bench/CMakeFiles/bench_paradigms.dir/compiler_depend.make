# Empty compiler generated dependencies file for bench_paradigms.
# This may be replaced when dependencies are built.
