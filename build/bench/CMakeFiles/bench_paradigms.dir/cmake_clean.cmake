file(REMOVE_RECURSE
  "CMakeFiles/bench_paradigms.dir/bench_paradigms.cpp.o"
  "CMakeFiles/bench_paradigms.dir/bench_paradigms.cpp.o.d"
  "bench_paradigms"
  "bench_paradigms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
