# Empty dependencies file for bench_secanalysis.
# This may be replaced when dependencies are built.
