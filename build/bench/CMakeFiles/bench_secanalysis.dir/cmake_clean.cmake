file(REMOVE_RECURSE
  "CMakeFiles/bench_secanalysis.dir/bench_secanalysis.cpp.o"
  "CMakeFiles/bench_secanalysis.dir/bench_secanalysis.cpp.o.d"
  "bench_secanalysis"
  "bench_secanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
