file(REMOVE_RECURSE
  "CMakeFiles/bench_xil.dir/bench_xil.cpp.o"
  "CMakeFiles/bench_xil.dir/bench_xil.cpp.o.d"
  "bench_xil"
  "bench_xil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
