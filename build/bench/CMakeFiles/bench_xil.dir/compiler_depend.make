# Empty compiler generated dependencies file for bench_xil.
# This may be replaced when dependencies are built.
