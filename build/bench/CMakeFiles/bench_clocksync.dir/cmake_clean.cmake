file(REMOVE_RECURSE
  "CMakeFiles/bench_clocksync.dir/bench_clocksync.cpp.o"
  "CMakeFiles/bench_clocksync.dir/bench_clocksync.cpp.o.d"
  "bench_clocksync"
  "bench_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
