# Empty compiler generated dependencies file for dynaplat_tests.
# This may be replaced when dependencies are built.
