
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coverage_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/coverage_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/dse_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/dse_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/dse_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/middleware_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/middleware_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/middleware_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/monitor_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/monitor_test.cpp.o.d"
  "/root/repo/tests/multicore_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/multicore_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/multicore_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/os_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/os_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/os_test.cpp.o.d"
  "/root/repo/tests/platform_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/platform_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/platform_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/security_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/security_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/security_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/xil_test.cpp" "tests/CMakeFiles/dynaplat_tests.dir/xil_test.cpp.o" "gcc" "tests/CMakeFiles/dynaplat_tests.dir/xil_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dynaplat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dynaplat_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaplat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynaplat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dynaplat_model.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/dynaplat_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dynaplat_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/dynaplat_security.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dynaplat_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/dynaplat_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/xil/CMakeFiles/dynaplat_xil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
