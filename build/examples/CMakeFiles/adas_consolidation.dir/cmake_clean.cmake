file(REMOVE_RECURSE
  "CMakeFiles/adas_consolidation.dir/adas_consolidation.cpp.o"
  "CMakeFiles/adas_consolidation.dir/adas_consolidation.cpp.o.d"
  "adas_consolidation"
  "adas_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adas_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
