# Empty compiler generated dependencies file for adas_consolidation.
# This may be replaced when dependencies are built.
