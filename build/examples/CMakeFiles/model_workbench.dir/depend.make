# Empty dependencies file for model_workbench.
# This may be replaced when dependencies are built.
