file(REMOVE_RECURSE
  "CMakeFiles/model_workbench.dir/model_workbench.cpp.o"
  "CMakeFiles/model_workbench.dir/model_workbench.cpp.o.d"
  "model_workbench"
  "model_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
