file(REMOVE_RECURSE
  "CMakeFiles/ota_update.dir/ota_update.cpp.o"
  "CMakeFiles/ota_update.dir/ota_update.cpp.o.d"
  "ota_update"
  "ota_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
