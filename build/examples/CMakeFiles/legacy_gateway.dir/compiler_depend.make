# Empty compiler generated dependencies file for legacy_gateway.
# This may be replaced when dependencies are built.
