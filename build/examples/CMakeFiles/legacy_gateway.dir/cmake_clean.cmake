file(REMOVE_RECURSE
  "CMakeFiles/legacy_gateway.dir/legacy_gateway.cpp.o"
  "CMakeFiles/legacy_gateway.dir/legacy_gateway.cpp.o.d"
  "legacy_gateway"
  "legacy_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
