// E8 -- Sec. 3.3: fail-operational redundancy.
//
// A replicated deterministic publisher is supervised by the redundancy
// manager. ECU faults are injected repeatedly; swept over heartbeat period
// and replica count. Reported: failover outage (heartbeat-loss -> promoted),
// service availability (fraction of expected publications that arrived),
// and heartbeat bandwidth cost.
//
// Expected shape: outage ~= missed_for_failover * heartbeat period (+ rank
// stagger); availability -> 1 as heartbeats get faster, at linearly growing
// heartbeat traffic. With a single replica (no redundancy) the fault is
// fatal.
#include <memory>

#include "bench/common.hpp"
#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"

using namespace dynaplat;

namespace {

class BeaconApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    // State progresses only on the active instance; a standby's knowledge
    // comes exclusively from shipped state (that staleness is what E8b
    // measures).
    if (!active()) return;
    ++n_;
    middleware::PayloadWriter writer;
    writer.u64(n_);
    context_.comm->publish(context_.service_id("Beacon"), 1, writer.take(),
                           1);
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(n_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    middleware::PayloadReader reader(state);
    n_ = reader.u64();
  }

 private:
  std::uint64_t n_ = 0;
};

struct Outcome {
  double availability = 0.0;
  double outage_ms = -1.0;
  std::uint64_t heartbeats = 0;
  bool recovered = false;
  /// Counter regression observed by the consumer at failover: how far the
  /// promoted standby's state lagged the dead primary's (staleness).
  std::int64_t state_regression = 0;
};

Outcome run(int replicas, sim::Duration heartbeat_period,
            int state_every_n = 1) {
  std::string dsl =
      "network Net kind=ethernet bitrate=100M\n"
      "ecu A mips=1000 memory=64M asil=D network=Net\n"
      "ecu B mips=1000 memory=64M asil=D network=Net\n"
      "ecu C mips=1000 memory=64M asil=D network=Net\n"
      "ecu Obs mips=1000 memory=64M asil=D network=Net\n"
      "interface Beacon paradigm=event payload=8 period=10ms\n"
      "app Pilot class=deterministic asil=D memory=4M replicas=" +
      std::to_string(replicas) +
      "\n"
      "  task tick period=10ms wcet=100K priority=1\n"
      "  provides Beacon\n"
      "deploy Pilot -> A | B | C\n";
  model::ParsedSystem parsed = model::parse_system(dsl);
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId node_id = 1;
  for (const char* name : {"A", "B", "C", "Obs"}) {
    os::EcuConfig config;
    config.name = name;
    config.cpu.mips = 1000;
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             node_id++));
  }
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  for (auto& ecu : ecus) dp.add_node(*ecu);
  dp.register_app("Pilot", [] { return std::make_unique<BeaconApp>(); });
  if (!dp.install_all()) return {};

  platform::RedundancyConfig config;
  config.heartbeat_period = heartbeat_period;
  config.missed_for_failover = 3;
  config.state_every_n_heartbeats = state_every_n;
  platform::RedundancyManager redundancy(dp, "Pilot", config);
  redundancy.engage();

  std::uint64_t received = 0;
  std::uint64_t last_counter = 0;
  std::int64_t worst_regression = 0;
  dp.node("Obs")->comm().subscribe(
      dp.service_id("Beacon"), 1,
      [&](std::vector<std::uint8_t> data, net::NodeId) {
        ++received;
        try {
          middleware::PayloadReader reader(data);
          const std::uint64_t counter = reader.u64();
          if (counter < last_counter) {
            worst_regression =
                std::max(worst_regression,
                         static_cast<std::int64_t>(last_counter - counter));
          }
          last_counter = counter;
        } catch (const std::out_of_range&) {
        }
      });

  // Fault at t = 2 s; observe until t = 10 s.
  simulator.schedule_at(sim::seconds(2), [&] { ecus[0]->fail(); });
  simulator.run_until(sim::seconds(10));

  Outcome outcome;
  // Expected ~1000 publications over 10 s minus discovery slack.
  outcome.availability = static_cast<double>(received) / 990.0;
  if (outcome.availability > 1.0) outcome.availability = 1.0;
  outcome.heartbeats = redundancy.heartbeats_sent();
  if (!redundancy.failovers().empty()) {
    outcome.outage_ms = sim::to_ms(redundancy.failovers().front().outage);
    outcome.recovered = true;
  }
  outcome.state_regression = worst_regression;
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E8", "fail-operational redundancy (Sec. 3.3)");
  bench::Table table({"replicas", "heartbeat_ms", "recovered", "outage_ms",
                      "availability", "heartbeats"});
  for (int replicas : {1, 2, 3}) {
    for (sim::Duration hb : {2 * sim::kMillisecond, 10 * sim::kMillisecond,
                             50 * sim::kMillisecond}) {
      const Outcome outcome = run(replicas, hb);
      table.row({bench::fmt(replicas), bench::fmt(sim::to_ms(hb), 0),
                 outcome.recovered ? "yes" : "NO",
                 outcome.outage_ms < 0 ? "-" : bench::fmt(outcome.outage_ms, 1),
                 bench::fmt(outcome.availability, 3),
                 bench::fmt(outcome.heartbeats)});
    }
  }

  // Ablation: hot standby (state on every heartbeat) vs warm standby
  // (every n-th). Staleness shows up as the counter regression consumers
  // observe across the failover.
  std::printf("\n");
  bench::banner("E8b", "hot vs warm standby (state shipping cadence)");
  bench::Table ablation({"state_every_n_heartbeats", "state_regression",
                         "outage_ms"});
  for (int every_n : {1, 5, 20}) {
    const Outcome outcome = run(2, 10 * sim::kMillisecond, every_n);
    ablation.row({bench::fmt(every_n),
                  bench::fmt(outcome.state_regression),
                  bench::fmt(outcome.outage_ms, 1)});
  }
  return 0;
}
