// Observability record cost (ISSUE 2 acceptance bench).
//
// Measures the per-event cost of the trace v2 hot path over a 10^6-event
// run in three configurations: tracing disabled (the always-on price every
// production path pays), enabled with an unbounded buffer, and enabled with
// a 65536-event ring (bounded memory, oldest evicted). Also measures the
// metrics side: counter add and histogram observe. Results go to stdout and
// BENCH_obs.json.
//
// Expected shape: the disabled path is a single load+branch — low
// single-digit ns/event; the ring keeps memory flat (retained == capacity)
// while still counting every record.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace dynaplat;

namespace {

constexpr std::uint64_t kEvents = 1'000'000;
constexpr std::size_t kRingCapacity = 65'536;

struct Sample {
  const char* config = "";
  double ns_per_event = 0.0;
  std::uint64_t recorded = 0;
  std::size_t retained = 0;
  std::uint64_t dropped = 0;
  std::size_t approx_bytes = 0;
};

Sample run_trace(const char* config, obs::TraceBufferConfig buffer_config,
                 bool enabled) {
  obs::TraceBuffer buffer(buffer_config);
  buffer.set_enabled(enabled);
  const auto source = buffer.intern("ecu0/brake_ctl");
  const auto name = buffer.intern("run");
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    buffer.record(static_cast<sim::Time>(i), obs::Category::kTask, source,
                  name, static_cast<std::int64_t>(i));
  }
  Sample sample;
  sample.config = config;
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kEvents);
  sample.recorded = buffer.recorded();
  sample.retained = buffer.size();
  sample.dropped = buffer.dropped();
  sample.approx_bytes = buffer.size() * sizeof(obs::Event);
  return sample;
}

Sample run_counter() {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench.events");
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kEvents; ++i) counter.add();
  Sample sample;
  sample.config = "counter_add";
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kEvents);
  sample.recorded = counter.value();
  return sample;
}

Sample run_histogram() {
  obs::MetricsRegistry registry;
  auto& histogram = registry.histogram("bench.latency_ns");
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    histogram.observe(static_cast<double>(i % 10'000'000));
  }
  Sample sample;
  sample.config = "histogram_observe";
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kEvents);
  sample.recorded = histogram.total_count();
  return sample;
}

}  // namespace

int main() {
  bench::banner("OBS", "trace/metrics record cost over 1M events");
  std::vector<Sample> samples;
  samples.push_back(
      run_trace("trace_disabled", obs::TraceBufferConfig{}, false));
  samples.push_back(
      run_trace("trace_unbounded", obs::TraceBufferConfig{}, true));
  samples.push_back(run_trace(
      "trace_ring_65536", obs::TraceBufferConfig{.capacity = kRingCapacity},
      true));
  samples.push_back(run_counter());
  samples.push_back(run_histogram());

  bench::Table table(
      {"config", "ns_per_event", "recorded", "retained", "dropped",
       "approx_bytes"});
  for (const Sample& s : samples) {
    table.row({s.config, bench::fmt(s.ns_per_event, 2),
               bench::fmt(s.recorded), bench::fmt(s.retained),
               bench::fmt(s.dropped), bench::fmt(s.approx_bytes)});
  }

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"obs_record_cost\",\n");
  std::fprintf(f, "  \"events\": %llu,\n",
               static_cast<unsigned long long>(kEvents));
  std::fprintf(f, "  \"ring_capacity\": %zu,\n", kRingCapacity);
  std::fprintf(f, "  \"samples\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"config\": \"%s\",\n", s.config);
    std::fprintf(f, "      \"ns_per_event\": %.3f,\n", s.ns_per_event);
    std::fprintf(f, "      \"recorded\": %llu,\n",
                 static_cast<unsigned long long>(s.recorded));
    std::fprintf(f, "      \"retained\": %zu,\n", s.retained);
    std::fprintf(f, "      \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(s.dropped));
    std::fprintf(f, "      \"approx_bytes\": %zu\n", s.approx_bytes);
    std::fprintf(f, "    }%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_obs.json\n");
  return 0;
}
