// Observability record cost (ISSUE 2 acceptance bench) + causal chain
// tracing overhead and end-to-end demo (PR 7 acceptance bench).
//
// Part 1 measures the per-event cost of the trace v2 hot path over a
// 10^6-event run in three configurations: tracing disabled (the always-on
// price every production path pays), enabled with an unbounded buffer, and
// enabled with a 65536-event ring (bounded memory, oldest evicted). Also
// measures the metrics side: counter add and histogram observe.
//
// Part 2 measures the chain-tracing additions: the disabled path (tracer
// configured off — must stay within a 2 ns/event budget, enforced by exit
// code), the unsampled path (1-in-1024 sampling: the common case is one
// counter increment + modulo + branch), and the fully sampled hop pipeline
// (start + send + receive + dispatch: 4 histogram observes + the flow/span
// records).
//
// Part 3 runs a reliable, lossy, fragmented two-ECU loopback with chain
// tracing on, exports the Chrome trace (BENCH_obs_trace.json) and a
// post-mortem bundle (BENCH_obs_postmortem.json), and validates both by
// parsing them with obs::json — the causally-linked flow (s/t/f sharing an
// id across two processes) must actually be present in the artifact, not
// just claimed. Any validation failure exits nonzero.
//
// Results go to stdout and BENCH_obs.json.
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "middleware/transport.hpp"
#include "obs/context.hpp"
#include "obs/coverage.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

using namespace dynaplat;

namespace {

constexpr std::uint64_t kEvents = 1'000'000;
constexpr std::size_t kRingCapacity = 65'536;
constexpr std::uint64_t kChains = 200'000;
constexpr double kDisabledBudgetNs = 2.0;

struct Sample {
  const char* config = "";
  double ns_per_event = 0.0;
  std::uint64_t recorded = 0;
  std::size_t retained = 0;
  std::uint64_t dropped = 0;
  std::size_t approx_bytes = 0;
};

Sample run_trace(const char* config, obs::TraceBufferConfig buffer_config,
                 bool enabled) {
  obs::TraceBuffer buffer(buffer_config);
  buffer.set_enabled(enabled);
  const auto source = buffer.intern("ecu0/brake_ctl");
  const auto name = buffer.intern("run");
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    buffer.record(static_cast<sim::Time>(i), obs::Category::kTask, source,
                  name, static_cast<std::int64_t>(i));
  }
  Sample sample;
  sample.config = config;
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kEvents);
  sample.recorded = buffer.recorded();
  sample.retained = buffer.size();
  sample.dropped = buffer.dropped();
  sample.approx_bytes = buffer.size() * sizeof(obs::Event);
  return sample;
}

Sample run_counter() {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench.events");
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kEvents; ++i) counter.add();
  Sample sample;
  sample.config = "counter_add";
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kEvents);
  sample.recorded = counter.value();
  return sample;
}

Sample run_histogram() {
  obs::MetricsRegistry registry;
  auto& histogram = registry.histogram("bench.latency_ns");
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    histogram.observe(static_cast<double>(i % 10'000'000));
  }
  Sample sample;
  sample.config = "histogram_observe";
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kEvents);
  sample.recorded = histogram.total_count();
  return sample;
}

// --- Chain-tracing overhead ---------------------------------------------------

/// Disabled / unsampled start() cost: the per-chain price every producer pays
/// whether or not its chain is sampled. Best-of-N to shed scheduler noise.
Sample run_chain_start(const char* config, std::uint32_t sample_every) {
  obs::TraceBuffer buffer(obs::TraceBufferConfig{.capacity = kRingCapacity});
  obs::MetricsRegistry metrics;
  obs::ChainTracer tracer(buffer, metrics, "EcuA/chain", 1,
                          obs::ChainTracerConfig{sample_every});
  volatile std::uint64_t sink = 0;
  const double ms = bench::min_elapsed_ms(5, [&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      const obs::TraceContext ctx = tracer.start(i);
      if (ctx.active()) sink = sink + 1;
    }
  });
  Sample sample;
  sample.config = config;
  sample.ns_per_event = ms * 1e6 / static_cast<double>(kEvents);
  sample.recorded = tracer.chains_sampled();
  sample.retained = buffer.size();
  sample.dropped = buffer.dropped();
  return sample;
}

/// Full sampled pipeline: one chain = start + on_send + on_receive +
/// on_dispatch (4 histogram observes + span/flow ring records).
Sample run_chain_sampled() {
  obs::TraceBuffer buffer(obs::TraceBufferConfig{.capacity = kRingCapacity});
  obs::MetricsRegistry metrics;
  obs::ChainTracer tracer(buffer, metrics, "EcuA/chain", 1);
  const bench::Stopwatch watch;
  for (std::uint64_t i = 0; i < kChains; ++i) {
    const std::uint64_t t = i * 10'000;
    obs::TraceContext ctx = tracer.start(t);
    ctx.sent_ns = t + 500;
    tracer.on_send(ctx);
    tracer.on_receive(ctx, t + 1'500, t + 2'000);
    tracer.on_dispatch(ctx, t + 2'000, t + 2'600, true);
  }
  Sample sample;
  sample.config = "chain_sampled_hops";
  sample.ns_per_event = watch.elapsed_ms() * 1e6 / static_cast<double>(kChains);
  sample.recorded = tracer.chains_sampled();
  sample.retained = buffer.size();
  sample.dropped = buffer.dropped();
  sample.approx_bytes = buffer.size() * sizeof(obs::Event);
  return sample;
}

// --- End-to-end demo + artifact validation -----------------------------------

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

struct DemoResult {
  bool ok = true;
  std::string why;
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t flow_starts = 0;
  std::uint64_t flow_steps = 0;
  std::uint64_t flow_ends = 0;

  void fail(std::string reason) {
    ok = false;
    if (!why.empty()) why += "; ";
    why += std::move(reason);
  }
};

DemoResult run_demo() {
  DemoResult result;

  sim::Simulator sim;
  obs::TraceBuffer buffer;
  obs::MetricsRegistry metrics;
  obs::CoverageMap coverage;
  obs::ChainTracer tracer_a(buffer, metrics, "EcuA/chain", 1);
  obs::ChainTracer tracer_b(buffer, metrics, "EcuB/chain", 2);

  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 5 * sim::kMillisecond;

  // Lossy wire a->b: the first 3 data frames vanish, forcing retransmission
  // of traced messages; the return path (acks) is clean.
  int drop_budget = 3;
  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
  a = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 1;
        if (drop_budget > 0) {
          --drop_budget;
          return;
        }
        sim.schedule_in(10 * sim::kMicrosecond,
                        [&b, frame] { b->on_frame(frame); });
      },
      64, &sim, config);
  b = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 2;
        sim.schedule_in(10 * sim::kMicrosecond,
                        [&a, frame] { a->on_frame(frame); });
      },
      64, &sim, config);
  a->set_tracer(&tracer_a);
  b->set_tracer(&tracer_b);
  a->set_coverage(&coverage);
  b->set_coverage(&coverage);

  std::uint64_t delivered = 0;
  b->set_traced_handler([&](net::NodeId, net::Payload message,
                            const obs::TraceContext& ctx) {
    ++delivered;
    (void)message;
    if (ctx.sampled()) {
      // Model a 20 us handler before closing the chain, like the runtime's
      // CPU-charge path does.
      const sim::Time delivered_at = sim.now();
      sim.schedule_in(20 * sim::kMicrosecond, [&tracer_b, ctx, delivered_at,
                                               &sim] {
        tracer_b.on_dispatch(ctx, delivered_at, sim.now(), true);
      });
    }
  });

  constexpr int kMessages = 16;
  for (int i = 0; i < kMessages; ++i) {
    sim.schedule_in((1 + i * 2) * sim::kMillisecond, [&, i] {
      std::vector<std::uint8_t> body(180, static_cast<std::uint8_t>(i));
      const obs::TraceContext ctx = tracer_a.start(sim.now());
      a->send(2, 3, 7, std::move(body), ctx);
    });
  }
  sim.run_until(500 * sim::kMillisecond);

  result.delivered = delivered;
  result.retries = a->retries();
  if (delivered != kMessages) {
    result.fail("delivered " + std::to_string(delivered) + "/" +
                std::to_string(kMessages));
  }
  if (a->retries() == 0) result.fail("lossy wire produced no retries");
  if (coverage.count("transport.retransmit") == 0) {
    result.fail("coverage missing transport.retransmit");
  }
  if (coverage.count("transport.fragment_coalesce") == 0) {
    result.fail("coverage missing transport.fragment_coalesce");
  }

  // Chrome trace artifact: written, parseable, and actually carrying the
  // causally-linked flow across two processes.
  if (!obs::write_chrome_trace_file(buffer, "BENCH_obs_trace.json")) {
    result.fail("cannot write BENCH_obs_trace.json");
    return result;
  }
  obs::json::Value doc;
  std::string error;
  if (!obs::json::parse(read_file("BENCH_obs_trace.json"), &doc, &error)) {
    result.fail("trace json parse: " + error);
    return result;
  }
  const obs::json::Value& events = doc.at("traceEvents");
  std::set<double> start_ids;
  std::set<double> end_ids;
  std::set<double> start_pids;
  std::set<double> end_pids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& event = events[i];
    const std::string& ph = event.at("ph").string;
    if (ph == "s") {
      ++result.flow_starts;
      start_ids.insert(event.at("id").number);
      start_pids.insert(event.at("pid").number);
    } else if (ph == "t") {
      ++result.flow_steps;
    } else if (ph == "f") {
      ++result.flow_ends;
      end_ids.insert(event.at("id").number);
      end_pids.insert(event.at("pid").number);
    }
  }
  if (result.flow_starts == 0) result.fail("no flow-start events in trace");
  if (result.flow_steps == 0) result.fail("no flow-step events in trace");
  if (result.flow_ends == 0) result.fail("no flow-end events in trace");
  for (double id : end_ids) {
    if (start_ids.count(id) == 0) {
      result.fail("flow end id without matching start");
      break;
    }
  }
  if (!start_pids.empty() && start_pids == end_pids) {
    result.fail("flow does not cross processes (same pid set at both ends)");
  }

  // Post-mortem bundle: written from the same run, parseable, and carrying
  // the trace tail + metrics + coverage sections.
  obs::PostMortemInput input;
  input.trace = &buffer;
  input.metrics = &metrics;
  input.coverage = &coverage;
  input.seed = 42;
  input.verdict = "bench_demo";
  input.detail = "synthetic bundle from the bench loopback run";
  if (!obs::write_postmortem_file(input, "BENCH_obs_postmortem.json")) {
    result.fail("cannot write BENCH_obs_postmortem.json");
    return result;
  }
  obs::json::Value bundle;
  if (!obs::json::parse(read_file("BENCH_obs_postmortem.json"), &bundle,
                        &error)) {
    result.fail("postmortem json parse: " + error);
    return result;
  }
  const obs::json::Value& pm = bundle.at("postmortem");
  if (pm.at("seed").number != 42.0) result.fail("postmortem seed mismatch");
  if (pm.at("trace_tail").size() == 0) result.fail("postmortem tail empty");
  if (pm.at("coverage").size() == 0) result.fail("postmortem coverage empty");
  if (pm.at("metrics").size() == 0) result.fail("postmortem metrics empty");
  return result;
}

}  // namespace

int main() {
  bench::banner("OBS", "trace/metrics/chain record cost over 1M events");
  std::vector<Sample> samples;
  samples.push_back(
      run_trace("trace_disabled", obs::TraceBufferConfig{}, false));
  samples.push_back(
      run_trace("trace_unbounded", obs::TraceBufferConfig{}, true));
  samples.push_back(run_trace(
      "trace_ring_65536", obs::TraceBufferConfig{.capacity = kRingCapacity},
      true));
  samples.push_back(run_counter());
  samples.push_back(run_histogram());
  samples.push_back(run_chain_start("chain_disabled", 0));
  samples.push_back(run_chain_start("chain_unsampled_1in1024", 1024));
  samples.push_back(run_chain_sampled());

  bench::Table table(
      {"config", "ns_per_event", "recorded", "retained", "dropped",
       "approx_bytes"});
  for (const Sample& s : samples) {
    table.row({s.config, bench::fmt(s.ns_per_event, 2),
               bench::fmt(s.recorded), bench::fmt(s.retained),
               bench::fmt(s.dropped), bench::fmt(s.approx_bytes)});
  }

  const DemoResult demo = run_demo();
  std::printf("\nchain demo: delivered=%llu retries=%llu flows s/t/f=%llu/%llu/%llu -> %s\n",
              static_cast<unsigned long long>(demo.delivered),
              static_cast<unsigned long long>(demo.retries),
              static_cast<unsigned long long>(demo.flow_starts),
              static_cast<unsigned long long>(demo.flow_steps),
              static_cast<unsigned long long>(demo.flow_ends),
              demo.ok ? "ok" : demo.why.c_str());

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"obs_record_cost\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"events\": %llu,\n",
               static_cast<unsigned long long>(kEvents));
  std::fprintf(f, "  \"ring_capacity\": %zu,\n", kRingCapacity);
  std::fprintf(f, "  \"samples\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"config\": \"%s\",\n", s.config);
    std::fprintf(f, "      \"ns_per_event\": %.3f,\n", s.ns_per_event);
    std::fprintf(f, "      \"recorded\": %llu,\n",
                 static_cast<unsigned long long>(s.recorded));
    std::fprintf(f, "      \"retained\": %zu,\n", s.retained);
    std::fprintf(f, "      \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(s.dropped));
    std::fprintf(f, "      \"approx_bytes\": %zu\n", s.approx_bytes);
    std::fprintf(f, "    }%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"chain_demo\": {\n");
  std::fprintf(f, "    \"delivered\": %llu,\n",
               static_cast<unsigned long long>(demo.delivered));
  std::fprintf(f, "    \"retries\": %llu,\n",
               static_cast<unsigned long long>(demo.retries));
  std::fprintf(f, "    \"flow_starts\": %llu,\n",
               static_cast<unsigned long long>(demo.flow_starts));
  std::fprintf(f, "    \"flow_steps\": %llu,\n",
               static_cast<unsigned long long>(demo.flow_steps));
  std::fprintf(f, "    \"flow_ends\": %llu,\n",
               static_cast<unsigned long long>(demo.flow_ends));
  std::fprintf(f, "    \"ok\": %s\n", demo.ok ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_obs.json, BENCH_obs_trace.json, "
              "BENCH_obs_postmortem.json\n");

  bool failed = false;
  for (const Sample& s : samples) {
    if (std::string(s.config) == "chain_disabled" &&
        s.ns_per_event > kDisabledBudgetNs) {
      std::fprintf(stderr,
                   "FAIL: chain_disabled %.3f ns/event exceeds %.1f ns budget\n",
                   s.ns_per_event, kDisabledBudgetNs);
      failed = true;
    }
  }
  if (!demo.ok) {
    std::fprintf(stderr, "FAIL: chain demo validation: %s\n",
                 demo.why.c_str());
    failed = true;
  }
  return failed ? 1 : 0;
}
