// E4 -- Sec. 3.1 "CPU" + [21]: where should schedules be synthesized?
//
// For growing deterministic task sets at several utilization levels,
// compare the compute bill of
//   on-ECU admission  -- the cheap local utilization + RTA test
//   on-ECU synthesis  -- full TT table synthesis if the ECU had to do it
//   backend synthesis -- the same synthesis charged to the backend (free
//                        for the ECU), validated by simulation
// Costs are converted to milliseconds of a 200 MIPS ECU being busy (the
// time the ECU cannot do anything else). Acceptance rates included.
//
// Expected shape: local admission stays < 1 ms while synthesis grows
// superlinearly with job count -- exactly the paper's argument for doing it
// "in the backend, using the computation power of the backend".
#include <cmath>

#include "bench/common.hpp"
#include "dse/admission.hpp"
#include "os/cpu.hpp"
#include "sim/random.hpp"

using namespace dynaplat;

namespace {

std::vector<dse::AnalysisTask> random_task_set(std::size_t count,
                                               double utilization,
                                               sim::Random& rng) {
  static const sim::Duration periods[] = {
      5 * sim::kMillisecond,  10 * sim::kMillisecond, 20 * sim::kMillisecond,
      40 * sim::kMillisecond, 50 * sim::kMillisecond, 100 * sim::kMillisecond};
  // UUniFast-style utilization split.
  std::vector<double> shares(count);
  double remaining = utilization;
  for (std::size_t i = 0; i + 1 < count; ++i) {
    const double next =
        remaining * std::pow(rng.uniform01(),
                             1.0 / static_cast<double>(count - i - 1));
    shares[i] = remaining - next;
    remaining = next;
  }
  shares[count - 1] = remaining;

  std::vector<dse::AnalysisTask> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    dse::AnalysisTask task;
    task.name = "t" + std::to_string(i);
    task.period = periods[rng.next_below(std::size(periods))];
    task.deadline = task.period;
    task.wcet = std::max<sim::Duration>(
        1000, static_cast<sim::Duration>(shares[i] *
                                         static_cast<double>(task.period)));
    task.priority = static_cast<int>(i % 16);
    task.deterministic = true;
    tasks.push_back(task);
  }
  return tasks;
}

}  // namespace

int main() {
  bench::banner("E4", "backend vs on-ECU schedule synthesis (Sec. 3.1, [21])");
  bench::Table table({"tasks", "util", "admit_rate", "synth_rate",
                      "ecu_admit_ms", "ecu_synth_ms", "backend_wall_ms",
                      "validated_rate"});
  const std::uint64_t ecu_mips = 200;
  dse::AdmissionController admission;
  dse::ScheduleServer backend;

  for (std::size_t count : {5u, 10u, 20u, 50u, 100u}) {
    for (double utilization : {0.3, 0.6, 0.9}) {
      sim::Random rng(1000 * count + static_cast<std::uint64_t>(
                                         utilization * 100));
      const int trials = 20;
      int admitted = 0, synthesized = 0, validated = 0;
      std::uint64_t admit_instr = 0, synth_instr = 0;
      double backend_wall_ms = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto tasks = random_task_set(count, utilization, rng);
        // Local admission: all tasks are "incoming" against an empty ECU.
        const auto decision = admission.admit({}, tasks);
        admit_instr += decision.analysis_instructions;
        if (decision.admitted) ++admitted;
        // Full synthesis (host wall clock measures the backend's real cost).
        bench::Stopwatch stopwatch;
        const auto artifact = backend.synthesize(tasks, ecu_mips);
        backend_wall_ms += stopwatch.elapsed_ms();
        synth_instr += artifact.synthesis_instructions;
        if (artifact.feasible) ++synthesized;
        if (artifact.validated) ++validated;
      }
      const os::CpuModel ecu{.mips = ecu_mips};
      table.row(
          {bench::fmt(count), bench::fmt(utilization, 1),
           bench::fmt(static_cast<double>(admitted) / trials, 2),
           bench::fmt(static_cast<double>(synthesized) / trials, 2),
           bench::fmt(sim::to_ms(ecu.duration_for(admit_instr / trials)), 3),
           bench::fmt(sim::to_ms(ecu.duration_for(synth_instr / trials)), 3),
           bench::fmt(backend_wall_ms / trials, 3),
           bench::fmt(static_cast<double>(validated) / trials, 2)});
    }
  }
  return 0;
}
