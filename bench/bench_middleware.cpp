// E18: zero-copy middleware data path (msgs/sec A/B vs the copying baseline).
//
// The transport now moves message bytes as refcounted slice chains: a
// fragment is a 6-byte header block from the transport's arena plus a *view*
// into the message buffer, reassembly delivers the ordered view chain, and
// reliable retransmission pins the chain by refcount instead of duplicating
// it (net/buffer.hpp, middleware/transport.hpp). This bench proves the win
// against LegacyTransport — the historical copying implementation reproduced
// below: a fresh vector materialized per message, every fragment rebuilding
// header+chunk into its own vector, reassembly copying bodies out of frames
// and concatenating, reliable mode keeping a full duplicate. The wire bytes
// are identical by construction; a fingerprint cross-check (FNV-1a over every
// frame's payload/addressing plus every delivered message) enforces that
// before any timing is trusted. One deviation today's Frame type forces on
// the baseline: each legacy fragment vector is adopted into a refcounted
// block (one extra small allocation per frame the historical code did not
// pay) — it inflates the baseline by one alloc out of its four per message,
// a small flattery next to the copies being measured.
//
// Sections:
//   * parity     — legacy vs zero-copy fingerprints per workload (hard gate)
//   * throughput — best-of-reps msgs/sec per workload, speedup
//   * allocation — global operator-new counter + arena chunk counter across
//                  10k steady-state single-fragment publishes; both must be
//                  exactly zero (the "no heap traffic" acceptance criterion)
//   * sweep      — the workload under sim::ScenarioSweep at 0 vs 4 worker
//                  threads; per-scenario fingerprints must merge
//                  bit-identically (each scenario owns its arenas — the
//                  non-atomic refcount design the TSan CI job leans on)
//
// Writes BENCH_middleware.json; exits nonzero on parity / allocation /
// determinism failure (and on a grossly regressed speedup) so CI gates on it.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <new>
#include <set>
#include <vector>

#include "bench/common.hpp"
#include "concurrency/thread_pool.hpp"
#include "middleware/payload.hpp"
#include "middleware/transport.hpp"
#include "net/buffer.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

// --- Global allocation counter ----------------------------------------------
// Counts every operator-new in the process; the allocation section reads the
// delta around a steady-state publish loop. Atomic because the sweep section
// runs scenarios on pool threads.
static std::atomic<std::uint64_t> g_heap_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

static void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace dynaplat;

namespace {

constexpr net::NodeId kPeer = 7;
constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xFFu)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

/// Shared body bytes; every message is a prefix of this with its sequence
/// number stamped over the first four bytes, so content varies per message
/// and both paths produce identical bytes.
const std::vector<std::uint8_t>& pattern() {
  static const std::vector<std::uint8_t> bytes = [] {
    std::vector<std::uint8_t> v(8192);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<std::uint8_t>(i * 131 + 17);
    }
    return v;
  }();
  return bytes;
}

void stamp_seq(std::uint8_t* p, std::uint32_t seq) {
  p[0] = static_cast<std::uint8_t>(seq);
  p[1] = static_cast<std::uint8_t>(seq >> 8);
  p[2] = static_cast<std::uint8_t>(seq >> 16);
  p[3] = static_cast<std::uint8_t>(seq >> 24);
}

/// Everything both paths must agree on: the frame-by-frame wire fingerprint
/// (payload bytes + addressing, acks included) and the delivered-message
/// fingerprint.
struct Stats {
  std::uint64_t wire_fp = kFnvBasis;
  std::uint64_t delivered_fp = kFnvBasis;
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t delivered = 0;

  void account(const net::Frame& f) {
    ++wire_frames;
    wire_bytes += f.payload.size();
    wire_fp = fnv_u64(wire_fp, f.dst);
    wire_fp = fnv_u64(wire_fp, f.priority);
    wire_fp = fnv_u64(wire_fp, f.flow_id);
    wire_fp = net::payload_fnv1a(f.payload, wire_fp);
  }
};

// --- The copying baseline ----------------------------------------------------

/// The pre-zero-copy transport data path, byte-for-byte the same wire format
/// (fragment header, CRC trailer, ACK control frames, dedup window): every
/// stage copies, exactly as the historical implementation did.
class LegacyTransport {
 public:
  using Handler = std::function<void(net::NodeId, std::vector<std::uint8_t>)>;

  LegacyTransport(std::function<void(net::Frame)> send_frame,
                  std::size_t max_frame_payload, bool reliable)
      : send_frame_(std::move(send_frame)),
        max_frame_payload_(max_frame_payload),
        reliable_(reliable) {}

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  void send(net::NodeId dst, net::Priority priority, std::uint32_t flow_id,
            std::vector<std::uint8_t> message) {
    const std::uint16_t id = next_message_id_++;
    if (next_message_id_ == 0) next_message_id_ = 1;
    if (reliable_ && dst != net::kBroadcast) {
      const std::uint32_t crc =
          middleware::crc32(message.data(), message.size());
      message.push_back(static_cast<std::uint8_t>(crc));
      message.push_back(static_cast<std::uint8_t>(crc >> 8));
      message.push_back(static_cast<std::uint8_t>(crc >> 16));
      message.push_back(static_cast<std::uint8_t>(crc >> 24));
      pending_[id] = message;  // full duplicate pinned for retransmission
    }
    send_fragments(id, dst, priority, flow_id, message);
  }

  void on_frame(const net::Frame& frame) {
    if (frame.payload.size() < 6) return;
    std::size_t prefix_len = 0;
    // Legacy frames carry single-slice payloads, so the contiguous prefix
    // spans the whole frame (receive-side parsing was free of copies; only
    // the body extraction below copied).
    const std::uint8_t* p = frame.payload.contiguous_prefix(&prefix_len);
    const std::uint16_t id = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    const std::uint16_t index = static_cast<std::uint16_t>(p[2] | (p[3] << 8));
    const std::uint16_t count = static_cast<std::uint16_t>(p[4] | (p[5] << 8));
    if (count == 0) {
      if (index == 0) pending_.erase(id);  // ACK
      return;
    }
    if (index >= count) return;
    const bool unicast = frame.dst != net::kBroadcast;
    std::vector<std::uint8_t> body(p + 6, p + frame.payload.size());
    if (count == 1) {
      complete(frame.src, id, unicast, std::move(body));
      return;
    }
    Partial& partial = partial_[{frame.src, id}];
    if (partial.fragments.size() != count) {
      partial.fragments.assign(count, {});
      partial.received = 0;
    }
    if (partial.fragments[index].empty()) ++partial.received;
    partial.fragments[index] = std::move(body);
    if (partial.received == partial.fragments.size()) {
      std::vector<std::uint8_t> message;  // reassembly concatenation copy
      for (const std::vector<std::uint8_t>& f : partial.fragments) {
        message.insert(message.end(), f.begin(), f.end());
      }
      partial_.erase({frame.src, id});
      complete(frame.src, id, unicast, std::move(message));
    }
  }

 private:
  struct Partial {
    std::vector<std::vector<std::uint8_t>> fragments;
    std::size_t received = 0;
  };
  struct Window {
    std::set<std::uint16_t> ids;
    std::deque<std::uint16_t> order;
  };

  void send_fragments(std::uint16_t id, net::NodeId dst,
                      net::Priority priority, std::uint32_t flow_id,
                      const std::vector<std::uint8_t>& message) {
    const std::size_t chunk = max_frame_payload_ - 6;
    const std::size_t count =
        message.empty() ? 1 : (message.size() + chunk - 1) / chunk;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t begin = i * chunk;
      const std::size_t end = std::min(begin + chunk, message.size());
      std::vector<std::uint8_t> payload;  // per-fragment rebuild copy
      payload.reserve(6 + (end - begin));
      payload.push_back(static_cast<std::uint8_t>(id));
      payload.push_back(static_cast<std::uint8_t>(id >> 8));
      payload.push_back(static_cast<std::uint8_t>(i));
      payload.push_back(static_cast<std::uint8_t>(i >> 8));
      payload.push_back(static_cast<std::uint8_t>(count));
      payload.push_back(static_cast<std::uint8_t>(count >> 8));
      payload.insert(payload.end(), message.begin() + static_cast<long>(begin),
                     message.begin() + static_cast<long>(end));
      net::Frame frame;
      frame.dst = dst;
      frame.priority = priority;
      frame.flow_id = flow_id;
      frame.payload = std::move(payload);
      send_frame_(std::move(frame));
    }
  }

  void send_ack(net::NodeId dst, std::uint16_t id) {
    net::Frame frame;
    frame.dst = dst;
    frame.priority = net::kPriorityHighest;
    frame.flow_id = 0;
    frame.payload = std::vector<std::uint8_t>{
        static_cast<std::uint8_t>(id), static_cast<std::uint8_t>(id >> 8),
        0, 0, 0, 0};
    send_frame_(std::move(frame));
  }

  void complete(net::NodeId src, std::uint16_t id, bool unicast,
                std::vector<std::uint8_t> message) {
    if (reliable_ && unicast) {
      if (message.size() < 4) return;
      const std::size_t body = message.size() - 4;
      const std::uint32_t expected =
          static_cast<std::uint32_t>(message[body]) |
          static_cast<std::uint32_t>(message[body + 1]) << 8 |
          static_cast<std::uint32_t>(message[body + 2]) << 16 |
          static_cast<std::uint32_t>(message[body + 3]) << 24;
      if (middleware::crc32(message.data(), body) != expected) return;
      message.resize(body);
      send_ack(src, id);
      if (!remember_delivery(src, id)) return;
    }
    if (handler_) handler_(src, std::move(message));
  }

  bool remember_delivery(net::NodeId src, std::uint16_t id) {
    // The historical dedup window, verbatim: a std::set plus an eviction
    // deque per peer (a tree-node allocation per delivered reliable
    // message).
    Window& w = history_[src];
    if (w.ids.count(id) > 0) return false;
    w.ids.insert(id);
    w.order.push_back(id);
    while (w.order.size() > 64) {
      w.ids.erase(w.order.front());
      w.order.pop_front();
    }
    return true;
  }

  std::function<void(net::Frame)> send_frame_;
  std::size_t max_frame_payload_;
  bool reliable_;
  Handler handler_;
  std::uint16_t next_message_id_ = 1;
  std::map<std::uint16_t, std::vector<std::uint8_t>> pending_;
  std::map<std::pair<net::NodeId, std::uint16_t>, Partial> partial_;
  std::map<net::NodeId, Window> history_;
};

// --- Loopback harnesses ------------------------------------------------------
// tx's frames feed rx.on_frame directly; rx's frames (acks) feed tx. The
// loop is synchronous and lossless, so reliable mode acks before the retry
// timer is ever armed. Both harnesses expose the same send(seq, size, dst)
// surface so the workload driver is path-agnostic.

middleware::TransportConfig transport_config(bool reliable) {
  middleware::TransportConfig config;
  config.reliable = reliable;
  return config;
}

// Events up to this size are producer-serialized through PayloadWriter into
// arena blocks (one block thanks to the size hint, with prepend headroom);
// larger bodies are application-owned buffers sent as views.
constexpr std::size_t kWriterBodyMax = 2048;

struct ZeroCopyHarness {
  Stats stats;
  bool fingerprint = false;
  sim::Simulator sim;
  middleware::Transport tx;
  middleware::Transport rx;
  middleware::PayloadWriter writer;
  net::BufferRef body;

  ZeroCopyHarness(std::size_t max_payload, bool reliable)
      : tx([this](net::Frame f) { feed(rx, std::move(f)); }, max_payload, &sim,
           transport_config(reliable)),
        rx([this](net::Frame f) { feed(tx, std::move(f)); }, max_payload, &sim,
           transport_config(reliable)),
        writer(tx.arena()) {
    tx.set_batch_sender([this](std::vector<net::Frame>& frames) {
      for (net::Frame& f : frames) feed(rx, std::move(f));
      frames.clear();
    });
    rx.set_chain_handler([this](net::NodeId src, net::Payload message) {
      ++stats.delivered;
      if (fingerprint) {
        stats.delivered_fp = fnv_u64(stats.delivered_fp, src);
        stats.delivered_fp = net::payload_fnv1a(message, stats.delivered_fp);
      }
    });
    body = net::BufferRef::adopt_vector(pattern());
  }

  void feed(middleware::Transport& peer, net::Frame f) {
    if (fingerprint) stats.account(f);
    peer.on_frame(f);
  }

  void send(std::uint32_t seq, std::size_t size, net::NodeId dst) {
    if (size <= kWriterBodyMax) {
      // Producer-serialized small event: fields written once, into arena
      // blocks; the chain then travels untouched to delivery. The writer is
      // persistent (a per-connection serializer), reset by take_chain().
      writer.hint(size);
      writer.u32(seq);
      writer.raw(pattern().data() + 4, size - 4);
      tx.send(dst, 3, 42, writer.take_chain());
    } else {
      // Bulk body: the application owns one buffer and sends views of it.
      stamp_seq(body->data(), seq);
      net::Payload message;
      message.append(body, 0, size);
      tx.send(dst, 3, 42, std::move(message));
    }
  }

  std::uint64_t arena_chunks() {
    return tx.arena().chunks_allocated() + rx.arena().chunks_allocated();
  }
};

struct LegacyHarness {
  Stats stats;
  bool fingerprint = false;
  LegacyTransport tx;
  LegacyTransport rx;

  LegacyHarness(std::size_t max_payload, bool reliable)
      : tx([this](net::Frame f) { feed_rx(std::move(f)); }, max_payload,
           reliable),
        rx([this](net::Frame f) { feed_tx(std::move(f)); }, max_payload,
           reliable) {
    rx.set_handler([this](net::NodeId src, std::vector<std::uint8_t> message) {
      ++stats.delivered;
      if (fingerprint) {
        stats.delivered_fp = fnv_u64(stats.delivered_fp, src);
        stats.delivered_fp =
            fnv_bytes(stats.delivered_fp, message.data(), message.size());
      }
    });
  }

  void feed_rx(net::Frame f) {
    if (fingerprint) stats.account(f);
    rx.on_frame(f);
  }
  void feed_tx(net::Frame f) {
    if (fingerprint) stats.account(f);
    tx.on_frame(f);
  }

  void send(std::uint32_t seq, std::size_t size, net::NodeId dst) {
    // The historical writer materialized every message as a fresh vector.
    std::vector<std::uint8_t> message(
        pattern().begin(), pattern().begin() + static_cast<long>(size));
    stamp_seq(message.data(), seq);
    tx.send(dst, 3, 42, std::move(message));
  }
};

// --- Workloads ---------------------------------------------------------------

struct Workload {
  const char* name;
  std::size_t max_payload;
  bool reliable;
  std::size_t body;  // 0 = mixed rotation
  bool broadcast;
  int msgs;  // per timing rep
};

constexpr Workload kWorkloads[] = {
    {"small_event_unicast", 256, false, 32, false, 20000},
    {"small_event_broadcast", 256, false, 32, true, 20000},
    {"small_event_reliable", 256, true, 32, false, 10000},
    {"event_1k_unicast", 1500, false, 1024, false, 10000},
    {"frag_8k_unicast", 1500, false, 8192, false, 2000},
    {"frag_8k_reliable", 1500, true, 8192, false, 2000},
    {"mixed", 256, true, 0, false, 8000},
};

void shape(const Workload& w, int i, std::size_t& size, net::NodeId& dst) {
  if (w.body != 0) {
    size = w.body;
    dst = w.broadcast ? net::kBroadcast : kPeer;
    return;
  }
  switch (i & 3) {
    case 0: size = 32; dst = kPeer; break;             // reliable event
    case 1: size = 32; dst = net::kBroadcast; break;   // discovery offer
    case 2: size = 2048; dst = kPeer; break;           // reliable bulk
    default: size = 512; dst = net::kBroadcast; break; // broadcast blob
  }
}

template <typename Harness>
Stats parity_run(const Workload& w, int msgs) {
  Harness h(w.max_payload, w.reliable);
  h.fingerprint = true;
  std::uint32_t seq = 1;
  for (int i = 0; i < msgs; ++i) {
    std::size_t size = 0;
    net::NodeId dst = 0;
    shape(w, i, size, dst);
    h.send(seq++, size, dst);
  }
  return h.stats;
}

/// Best-of-reps wall time for `w.msgs` messages on a warmed harness; also
/// verifies every message actually arrived (clears `ok` otherwise).
template <typename Harness>
double timed_run(const Workload& w, int reps, bool& ok) {
  Harness h(w.max_payload, w.reliable);
  h.fingerprint = false;
  std::uint32_t seq = 1;
  const int warm = std::max(256, w.msgs / 8);
  std::uint64_t sent = 0;
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      std::size_t size = 0;
      net::NodeId dst = 0;
      shape(w, i, size, dst);
      h.send(seq++, size, dst);
    }
    sent += static_cast<std::uint64_t>(n);
  };
  burst(warm);
  const double best_ms =
      bench::min_elapsed_ms(reps, [&] { burst(w.msgs); });
  if (h.stats.delivered != sent) {
    std::fprintf(stderr, "%s: delivered %llu of %llu messages\n", w.name,
                 static_cast<unsigned long long>(h.stats.delivered),
                 static_cast<unsigned long long>(sent));
    ok = false;
  }
  return best_ms;
}

// --- Allocation check --------------------------------------------------------

struct AllocCheck {
  std::uint64_t msgs = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t arena_chunks = 0;
  bool ok = false;
};

AllocCheck run_alloc_check() {
  ZeroCopyHarness h(256, false);
  std::uint32_t seq = 1;
  for (int i = 0; i < 4096; ++i) h.send(seq++, 32, kPeer);  // warm free lists
  AllocCheck check;
  check.msgs = 10000;
  const std::uint64_t chunks_before = h.arena_chunks();
  const std::uint64_t heap_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < check.msgs; ++i) h.send(seq++, 32, kPeer);
  check.heap_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - heap_before;
  check.arena_chunks = h.arena_chunks() - chunks_before;
  check.ok = check.heap_allocs == 0 && check.arena_chunks == 0;
  return check;
}

// --- Sweep determinism -------------------------------------------------------

constexpr std::size_t kSweepScenarios = 16;

struct SweepResult {
  std::uint64_t merged = 0;
  double wall_ms = 0.0;
};

SweepResult run_sweep(std::size_t threads) {
  sim::ScenarioSweep sweep({.seed = 0xE18, .threads = threads, .grain = 1});
  std::vector<std::uint64_t> fingerprints(kSweepScenarios, 0);
  bench::Stopwatch watch;
  sweep.for_each(kSweepScenarios, [&](sim::ScenarioRun& r) {
    ZeroCopyHarness h(256, true);
    h.fingerprint = true;
    std::uint32_t seq = 1;
    for (int i = 0; i < 400; ++i) {
      const std::size_t size =
          static_cast<std::size_t>(r.rng.uniform_int(8, 2000));
      const net::NodeId dst = r.rng.chance(0.3) ? net::kBroadcast : kPeer;
      h.send(seq++, size, dst);
    }
    fingerprints[r.index] = h.stats.wire_fp ^ h.stats.delivered_fp;
  });
  SweepResult result;
  result.wall_ms = watch.elapsed_ms();
  result.merged = sim::ScenarioSweep::merge_fingerprints(fingerprints);
  return result;
}

}  // namespace

int main() {
  bench::banner("E18", "zero-copy middleware data path (Sec. 2.2/3.2)");
  bool ok = true;

  // -- parity: the zero-copy path must emit and deliver the same bytes -------
  std::printf("\n-- wire/delivery parity (legacy vs zero-copy) --\n");
  bench::Table parity_table({"workload", "msgs", "frames_per_msg",
                             "wire_bytes_per_msg", "wire_fp", "parity"});
  struct Row {
    const Workload* w = nullptr;
    Stats stats;  // zero-copy parity stats (legacy matched them)
    int parity_msgs = 0;
    bool parity = false;
    double legacy_ms = 0.0;
    double zero_ms = 0.0;
  };
  std::vector<Row> rows;
  for (const Workload& w : kWorkloads) {
    Row row;
    row.w = &w;
    row.parity_msgs = std::min(w.msgs, 2000);
    const Stats legacy = parity_run<LegacyHarness>(w, row.parity_msgs);
    const Stats zero = parity_run<ZeroCopyHarness>(w, row.parity_msgs);
    row.stats = zero;
    row.parity = legacy.wire_fp == zero.wire_fp &&
                 legacy.delivered_fp == zero.delivered_fp &&
                 legacy.wire_frames == zero.wire_frames &&
                 legacy.wire_bytes == zero.wire_bytes &&
                 legacy.delivered == zero.delivered;
    ok = ok && row.parity;
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(zero.wire_fp));
    parity_table.row(
        {w.name, bench::fmt(row.parity_msgs),
         bench::fmt(static_cast<double>(zero.wire_frames) / row.parity_msgs, 2),
         bench::fmt(static_cast<double>(zero.wire_bytes) / row.parity_msgs, 1),
         fp, row.parity ? "ok" : "MISMATCH"});
    rows.push_back(row);
  }

  // -- throughput ------------------------------------------------------------
  std::printf("\n-- throughput (best of 7 reps) --\n");
  bench::Table tput_table({"workload", "legacy_msgs_per_s",
                           "zero_copy_msgs_per_s", "speedup"});
  const int kReps = 7;
  double small_event_speedup = 0.0;
  for (Row& row : rows) {
    row.legacy_ms = timed_run<LegacyHarness>(*row.w, kReps, ok);
    row.zero_ms = timed_run<ZeroCopyHarness>(*row.w, kReps, ok);
    const double legacy_rate = row.w->msgs / (row.legacy_ms / 1000.0);
    const double zero_rate = row.w->msgs / (row.zero_ms / 1000.0);
    const double speedup = legacy_rate > 0.0 ? zero_rate / legacy_rate : 0.0;
    if (row.w == &kWorkloads[0]) small_event_speedup = speedup;
    tput_table.row({row.w->name, bench::fmt(legacy_rate, 0),
                    bench::fmt(zero_rate, 0), bench::fmt(speedup, 2)});
  }

  // -- allocation ------------------------------------------------------------
  std::printf("\n-- steady-state allocations (single-fragment publish) --\n");
  const AllocCheck alloc = run_alloc_check();
  std::printf("msgs=%llu heap_allocs=%llu arena_chunk_growth=%llu -> %s\n",
              static_cast<unsigned long long>(alloc.msgs),
              static_cast<unsigned long long>(alloc.heap_allocs),
              static_cast<unsigned long long>(alloc.arena_chunks),
              alloc.ok ? "zero-alloc ok" : "ALLOCATION REGRESSION");
  ok = ok && alloc.ok;

  // -- sweep determinism -----------------------------------------------------
  std::printf("\n-- ScenarioSweep determinism (0 vs 4 worker threads) --\n");
  const SweepResult serial = run_sweep(0);
  const SweepResult parallel = run_sweep(4);
  const bool sweep_identical = serial.merged == parallel.merged;
  std::printf(
      "scenarios=%zu merged=%016llx (serial %.2f ms, 4 threads %.2f ms) -> "
      "%s\n",
      kSweepScenarios, static_cast<unsigned long long>(serial.merged),
      serial.wall_ms, parallel.wall_ms,
      sweep_identical ? "bit-identical" : "FINGERPRINT MISMATCH");
  ok = ok && sweep_identical;

  // The zero-copy path must beat the copying baseline outright; a speedup
  // at or below the floor is a regression and fails the bench. The floor is
  // deliberately conservative: on a single-core host with a warm glibc
  // tcache the baseline's four small allocations cost ~35 ns/msg, so the
  // measured 32-byte-event edge is bounded by shared per-frame machinery
  // (~1.2-1.4x here) and grows with message size (>2x at 8 KiB) and with
  // allocator pressure. The 5x target is recorded in the JSON for hosts
  // where the copying path's heap traffic is not tcache-resident.
  constexpr double kSpeedupTarget = 5.0;
  constexpr double kSpeedupFloor = 1.1;
  if (small_event_speedup < kSpeedupFloor) {
    std::fprintf(stderr, "small-event speedup %.2f below floor %.2f\n",
                 small_event_speedup, kSpeedupFloor);
    ok = false;
  }

  // -- JSON ------------------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_middleware.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_middleware.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E18_zero_copy_middleware\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n",
               concurrency::ThreadPool::hardware_threads());
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double legacy_rate = row.w->msgs / (row.legacy_ms / 1000.0);
    const double zero_rate = row.w->msgs / (row.zero_ms / 1000.0);
    std::fprintf(f, "    {\"name\": \"%s\", \"body_bytes\": %zu, ",
                 row.w->name, row.w->body);
    std::fprintf(f, "\"reliable\": %s, \"msgs_per_rep\": %d, ",
                 row.w->reliable ? "true" : "false", row.w->msgs);
    std::fprintf(f, "\"frames_per_msg\": %.2f, ",
                 static_cast<double>(row.stats.wire_frames) / row.parity_msgs);
    std::fprintf(f, "\"parity\": %s, ", row.parity ? "true" : "false");
    std::fprintf(f, "\"legacy_msgs_per_sec\": %.0f, ", legacy_rate);
    std::fprintf(f, "\"zero_copy_msgs_per_sec\": %.0f, ", zero_rate);
    std::fprintf(f, "\"speedup\": %.2f}%s\n", zero_rate / legacy_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"small_event_speedup\": %.2f,\n", small_event_speedup);
  std::fprintf(f, "  \"speedup_target\": %.1f,\n", kSpeedupTarget);
  std::fprintf(f, "  \"speedup_floor\": %.1f,\n", kSpeedupFloor);
  std::fprintf(f, "  \"speedup_ok\": %s,\n",
               small_event_speedup >= kSpeedupTarget ? "true" : "false");
  std::fprintf(f,
               "  \"speedup_note\": \"single-core host, warm-tcache baseline "
               "allocations; edge grows with body size (see event_1k/frag_8k "
               "rows) and allocator pressure\",\n");
  std::fprintf(f, "  \"steady_state_msgs\": %llu,\n",
               static_cast<unsigned long long>(alloc.msgs));
  std::fprintf(f, "  \"steady_state_heap_allocs\": %llu,\n",
               static_cast<unsigned long long>(alloc.heap_allocs));
  std::fprintf(f, "  \"steady_state_arena_chunk_growth\": %llu,\n",
               static_cast<unsigned long long>(alloc.arena_chunks));
  std::fprintf(f, "  \"zero_alloc_ok\": %s,\n", alloc.ok ? "true" : "false");
  std::fprintf(f, "  \"sweep\": {\"scenarios\": %zu, \"threads\": [0, 4], ",
               kSweepScenarios);
  std::fprintf(f, "\"bit_identical\": %s, \"merged_fingerprint\": \"%016llx\"}\n",
               sweep_identical ? "true" : "false",
               static_cast<unsigned long long>(serial.merged));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_middleware.json\n");
  return ok ? 0 : 1;
}
