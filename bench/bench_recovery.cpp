// E15 -- Sec. 2.3 + 3.3: transactional recovery vs greedy re-placement.
//
// A fleet of apps on three victim ECUs plus two loaded survivors; k of the
// victims are killed at t = 2 s (staggered 30 ms apart). Two recovery
// mechanisms are compared on identical topologies:
//
//   legacy        ReconfigurationManager -- greedy first-fit-decreasing,
//                 per-app, no transaction, no soak.
//   orchestrator  RecoveryOrchestrator -- whole-vehicle DSE remap, staged
//                 apply in criticality order, soak window, whole-plan
//                 rollback on failure.
//
// Reported per (killed, mode): recovered/stranded apps and recovery latency
// (first fault -> last app re-hosted, including the orchestrator's soak).
// Expected shape: identical recovery coverage while capacity lasts -- the
// orchestrator pays its ~soak window of extra latency for atomicity -- and
// when a victim dies *while a plan is being applied*, the orchestrator
// rolls the half-applied plan back and re-plans against the new topology
// instead of layering a second greedy repair on top of the first.
//
// Machine-readable results go to BENCH_recovery.json following the
// BENCH_fault.json pattern so successive PRs accumulate a trajectory.
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "bench/common.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/reconfiguration.hpp"
#include "platform/recovery.hpp"

using namespace dynaplat;

namespace {

struct Outcome {
  int killed = 0;
  const char* mode = "";
  int displaced = 0;
  int recovered = 0;
  int stranded = 0;
  double latency_ms = -1.0;
  int plans_committed = 0;
  int plans_rolled_back = 0;
};

struct World {
  model::ParsedSystem parsed;
  sim::Simulator simulator;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::unique_ptr<platform::DynamicPlatform> platform;
};

// 3 victim ECUs x 2 apps each (one deterministic, one best-effort), 2
// survivors carrying base load. Candidate lists are permissive: they are
// the recovery search space, admission control gates the actual placement.
std::unique_ptr<World> build() {
  std::string dsl =
      "network Net kind=ethernet bitrate=100M\n"
      "ecu V1 mips=1000 memory=256M asil=D network=Net\n"
      "ecu V2 mips=1000 memory=256M asil=D network=Net\n"
      "ecu V3 mips=1000 memory=256M asil=D network=Net\n"
      "ecu S1 mips=1000 memory=256M asil=D network=Net\n"
      "ecu S2 mips=1000 memory=256M asil=D network=Net\n";
  for (int v = 1; v <= 3; ++v) {
    const std::string id = std::to_string(v);
    dsl += "app Ctl" + id +
           " class=deterministic asil=D memory=4M\n"
           "  task t period=10ms wcet=2000K priority=1\n";  // 0.20 util
    dsl += "app Aux" + id +
           " class=nondeterministic asil=QM memory=4M\n"
           "  task t period=10ms wcet=1500K priority=3\n";  // 0.15 util
    dsl += "deploy Ctl" + id + " -> V" + id + " | S1 | S2\n";
    dsl += "deploy Aux" + id + " -> V" + id + " | S1 | S2\n";
  }
  for (const char* survivor : {"S1", "S2"}) {
    dsl += std::string("app Base") + survivor +
           " class=deterministic asil=B memory=4M\n"
           "  task t period=10ms wcet=3000K priority=2\n";  // 0.30 util
    dsl += std::string("deploy Base") + survivor + " -> " + survivor + "\n";
  }

  auto world = std::make_unique<World>();
  world->parsed = model::parse_system(dsl);
  world->backbone =
      std::make_unique<net::EthernetSwitch>(world->simulator, "eth",
                                            net::EthernetConfig{});
  net::NodeId node_id = 1;
  for (const auto& ecu_def : world->parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.cores = ecu_def.cores;
    config.memory_bytes = ecu_def.memory_bytes;
    world->ecus.push_back(std::make_unique<os::Ecu>(
        world->simulator, config, world->backbone.get(), node_id++));
  }
  platform::PlatformConfig platform_config;
  platform_config.enforce_verification = false;
  world->platform = std::make_unique<platform::DynamicPlatform>(
      world->simulator, world->parsed.model, world->parsed.deployment,
      platform_config);
  for (auto& ecu : world->ecus) world->platform->add_node(*ecu);
  for (const auto& app : world->parsed.model.apps()) {
    world->platform->register_app(app.name, [] {
      return std::make_unique<platform::Application>();
    });
  }
  if (!world->platform->install_all()) return nullptr;
  return world;
}

constexpr sim::Time kFirstFault = sim::seconds(2) + 7 * sim::kMillisecond;

void schedule_kills(World& world, int killed) {
  for (int v = 0; v < killed; ++v) {
    world.simulator.schedule_at(kFirstFault + v * 30 * sim::kMillisecond,
                                [&world, v] { world.ecus[v]->fail(); });
  }
}

Outcome run_legacy(int killed) {
  auto world = build();
  if (!world) return {};
  platform::ReconfigConfig config;
  config.check_period = 50 * sim::kMillisecond;
  platform::ReconfigurationManager reconfig(*world->platform, config);
  reconfig.engage();
  schedule_kills(*world, killed);
  world->simulator.run_until(sim::seconds(10));

  Outcome outcome;
  outcome.killed = killed;
  outcome.mode = "legacy";
  outcome.displaced = 2 * killed;
  sim::Time last = 0;
  std::set<std::string> recovered;
  for (const auto& migration : reconfig.migrations()) {
    if (migration.success) {
      recovered.insert(migration.app);
      last = std::max(last, migration.at);
    }
  }
  outcome.recovered = static_cast<int>(recovered.size());
  outcome.stranded = static_cast<int>(reconfig.stranded().size());
  if (!recovered.empty()) outcome.latency_ms = sim::to_ms(last - kFirstFault);
  return outcome;
}

Outcome run_orchestrator(int killed) {
  auto world = build();
  if (!world) return {};
  platform::RecoveryConfig config;
  config.check_period = 50 * sim::kMillisecond;
  config.dse_iterations = 1'000;
  platform::RecoveryOrchestrator recovery(*world->platform, config);
  recovery.engage();
  schedule_kills(*world, killed);
  world->simulator.run_until(sim::seconds(10));

  Outcome outcome;
  outcome.killed = killed;
  outcome.mode = "orchestrator";
  outcome.displaced = 2 * killed;
  sim::Time last = 0;
  std::set<std::string> recovered;
  for (const auto& plan : recovery.plans()) {
    if (plan.status == platform::PlanStatus::kCommitted) {
      ++outcome.plans_committed;
      for (const auto& step : plan.steps) recovered.insert(step.app);
      last = std::max(last, plan.finished_at);
    } else if (plan.status == platform::PlanStatus::kRolledBack) {
      ++outcome.plans_rolled_back;
    }
  }
  outcome.recovered = static_cast<int>(recovered.size());
  outcome.stranded = static_cast<int>(recovery.stranded().size() +
                                      recovery.abandoned().size());
  if (!recovered.empty()) outcome.latency_ms = sim::to_ms(last - kFirstFault);
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E15", "transactional recovery vs greedy (Sec. 2.3 + 3.3)");
  std::vector<Outcome> samples;
  for (int killed : {1, 2, 3}) {
    samples.push_back(run_legacy(killed));
    samples.push_back(run_orchestrator(killed));
  }

  bench::Table table({"killed", "mode", "displaced", "recovered", "stranded",
                      "latency_ms", "committed", "rolled_back"});
  for (const Outcome& s : samples) {
    table.row({bench::fmt(s.killed), s.mode, bench::fmt(s.displaced),
               bench::fmt(s.recovered), bench::fmt(s.stranded),
               s.latency_ms < 0 ? "-" : bench::fmt(s.latency_ms, 0),
               bench::fmt(s.plans_committed),
               bench::fmt(s.plans_rolled_back)});
  }

  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E15_transactional_recovery\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"kill_sweep\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Outcome& s = samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"killed\": %d,\n", s.killed);
    std::fprintf(f, "      \"mode\": \"%s\",\n", s.mode);
    std::fprintf(f, "      \"displaced\": %d,\n", s.displaced);
    std::fprintf(f, "      \"recovered\": %d,\n", s.recovered);
    std::fprintf(f, "      \"stranded\": %d,\n", s.stranded);
    std::fprintf(f, "      \"latency_ms\": %.1f,\n", s.latency_ms);
    std::fprintf(f, "      \"plans_committed\": %d,\n", s.plans_committed);
    std::fprintf(f, "      \"plans_rolled_back\": %d\n", s.plans_rolled_back);
    std::fprintf(f, "    }%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_recovery.json\n");
  return 0;
}
