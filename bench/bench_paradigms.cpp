// E2 -- Fig. 3 / Sec. 2.1: the three communication paradigms.
//
// Two ECUs on a 100 Mbit/s switched backbone. Measured in simulated time:
//   Event   -- one-way publish -> subscriber delivery latency vs payload,
//              plus fan-out scaling (1..16 subscribers on distinct ECUs).
//   Message -- RPC request -> response round-trip latency vs payload.
//   Stream  -- sustained sequenced transfer: goodput and loss.
//
// Expected shape: event latency ~ linear in payload (serialization bound);
// RPC ~ 2x event + server CPU; stream goodput approaches the line rate
// minus protocol overhead; fan-out multiplies producer-side cost linearly.
#include <memory>

#include "bench/common.hpp"
#include "middleware/runtime.hpp"
#include "net/can_bus.hpp"
#include "net/ethernet.hpp"

using namespace dynaplat;

namespace {

struct Net {
  explicit Net(std::size_t nodes, bool over_can = false) {
    if (over_can) {
      medium = std::make_unique<net::CanBus>(simulator, "can",
                                             net::CanBusConfig{});
    } else {
      medium = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      os::EcuConfig config;
      config.name = "ecu" + std::to_string(i);
      config.cpu.mips = 1000;
      config.seed = 50 + i;
      ecus.push_back(std::make_unique<os::Ecu>(
          simulator, config, medium.get(), static_cast<net::NodeId>(i + 1)));
      ecus.back()->processor().start();
      runtimes.push_back(
          std::make_unique<middleware::ServiceRuntime>(*ecus.back()));
    }
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Medium> medium;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::vector<std::unique_ptr<middleware::ServiceRuntime>> runtimes;
};

}  // namespace

int main() {
  bench::banner("E2", "communication paradigms (Fig. 3, Sec. 2.1)");

  // --- Event latency vs payload -------------------------------------------------
  {
    bench::Table table(
        {"paradigm", "payload_B", "mean_us", "p99_us", "max_us", "n"});
    for (std::size_t payload : {8u, 64u, 256u, 1024u, 4096u, 8192u}) {
      Net net(2);
      net.runtimes[0]->offer(1);
      sim::Stats latency;
      std::vector<sim::Time> sent_at;
      net.runtimes[1]->subscribe(
          1, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
            latency.add(static_cast<double>(net.simulator.now() -
                                            sent_at[latency.count()]));
          });
      net.simulator.run_until(10 * sim::kMillisecond);
      const int messages = 200;
      for (int i = 0; i < messages; ++i) {
        net.simulator.schedule_at(
            net.simulator.now() + (i + 1) * sim::kMillisecond, [&, payload] {
              sent_at.push_back(net.simulator.now());
              net.runtimes[0]->publish(
                  1, 1, std::vector<std::uint8_t>(payload, 0x55), 3);
            });
      }
      net.simulator.run_until(sim::seconds(2));
      table.row({"event", bench::fmt(payload),
                 bench::fmt(latency.mean() / 1000.0, 1),
                 bench::fmt(latency.percentile(99) / 1000.0, 1),
                 bench::fmt(latency.max() / 1000.0, 1),
                 bench::fmt(latency.count())});
    }

    // --- RPC round-trip vs payload ---------------------------------------------
    for (std::size_t payload : {8u, 64u, 256u, 1024u, 4096u}) {
      Net net(2);
      net.runtimes[0]->offer(2);
      net.runtimes[0]->provide_method(
          2, 1, [payload](const std::vector<std::uint8_t>&) {
            return std::vector<std::uint8_t>(payload, 0xAA);
          });
      sim::Stats latency;
      net.simulator.run_until(10 * sim::kMillisecond);
      const int calls = 200;
      for (int i = 0; i < calls; ++i) {
        net.simulator.schedule_at(
            net.simulator.now() + (i + 1) * sim::kMillisecond, [&, payload] {
              const sim::Time start = net.simulator.now();
              net.runtimes[1]->call(
                  2, 1, std::vector<std::uint8_t>(payload, 0x11),
                  [&latency, start, &net](bool ok,
                                          std::vector<std::uint8_t>) {
                    if (ok) {
                      latency.add(
                          static_cast<double>(net.simulator.now() - start));
                    }
                  });
            });
      }
      net.simulator.run_until(sim::seconds(2));
      table.row({"message_rpc", bench::fmt(payload),
                 bench::fmt(latency.mean() / 1000.0, 1),
                 bench::fmt(latency.percentile(99) / 1000.0, 1),
                 bench::fmt(latency.max() / 1000.0, 1),
                 bench::fmt(latency.count())});
    }
  }

  // --- SOA over CAN vs Ethernet (why SOA pushes towards Ethernet, Sec. 1) ---
  {
    std::printf("\n");
    bench::Table table({"medium", "payload_B", "event_mean_us", "frames"});
    for (const bool over_can : {true, false}) {
      for (std::size_t payload : {8u, 64u, 256u}) {
        Net net(2, over_can);
        net.runtimes[0]->offer(1);
        sim::Stats latency;
        std::vector<sim::Time> sent_at;
        net.runtimes[1]->subscribe(
            1, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
              latency.add(static_cast<double>(net.simulator.now() -
                                              sent_at[latency.count()]));
            });
        net.simulator.run_until(200 * sim::kMillisecond);
        for (int i = 0; i < 50; ++i) {
          net.simulator.schedule_at(
              net.simulator.now() + (i + 1) * 20 * sim::kMillisecond,
              [&, payload] {
                sent_at.push_back(net.simulator.now());
                net.runtimes[0]->publish(
                    1, 1, std::vector<std::uint8_t>(payload, 0x55), 3);
              });
        }
        net.simulator.run_until(sim::seconds(5));
        // Frames per message: header (21 B) + payload through the
        // transport's fragmenter on this medium.
        middleware::Transport probe([](net::Frame) {},
                                    net.medium->max_payload());
        table.row({over_can ? "can_500k" : "eth_100M", bench::fmt(payload),
                   bench::fmt(latency.mean() / 1000.0, 1),
                   bench::fmt(probe.fragments_for(
                       payload + middleware::MessageHeader::kWireSize))});
      }
    }
  }

  // --- Stream goodput ---------------------------------------------------------------
  {
    std::printf("\n");
    bench::Table table({"stream_rate_mbps", "goodput_mbps", "loss_frames",
                        "mean_latency_us"});
    for (double rate_mbps : {10.0, 40.0, 70.0, 95.0}) {
      Net net(2);
      net.runtimes[0]->offer(3);
      std::uint64_t received_bytes = 0;
      sim::Stats latency;
      net.runtimes[1]->subscribe_stream(
          3, 1, [&](std::uint32_t, std::vector<std::uint8_t> data) {
            received_bytes += data.size();
          });
      net.simulator.run_until(10 * sim::kMillisecond);
      const std::size_t frame_bytes = 1400;
      const double frames_per_s = rate_mbps * 1e6 / 8.0 / frame_bytes;
      const auto interval =
          static_cast<sim::Duration>(1e9 / frames_per_s);
      const sim::Time start = net.simulator.now();
      const sim::Duration span = sim::seconds(1);
      for (sim::Time t = start; t < start + span; t += interval) {
        net.simulator.schedule_at(t, [&] {
          net.runtimes[0]->stream_send(
              3, 1, std::vector<std::uint8_t>(frame_bytes, 0x77));
        });
      }
      net.simulator.run_until(start + span + 100 * sim::kMillisecond);
      const double goodput =
          static_cast<double>(received_bytes) * 8.0 / 1e6 /
          sim::to_s(span);
      table.row({bench::fmt(rate_mbps, 0), bench::fmt(goodput, 1),
                 bench::fmt(net.runtimes[1]->stream_losses(3, 1)),
                 bench::fmt(net.medium->latency_stats().mean() / 1000.0, 1)});
    }
  }

  // --- Event fan-out ---------------------------------------------------------------------
  {
    std::printf("\n");
    bench::Table table({"subscribers", "delivery_p99_us", "producer_msgs",
                        "all_delivered"});
    for (std::size_t fanout : {1u, 2u, 4u, 8u, 16u}) {
      Net net(fanout + 1);
      net.runtimes[0]->offer(4);
      std::uint64_t deliveries = 0;
      sim::Stats latency;
      sim::Time sent_at = 0;
      for (std::size_t s = 1; s <= fanout; ++s) {
        net.runtimes[s]->subscribe(
            4, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
              ++deliveries;
              latency.add(static_cast<double>(net.simulator.now() - sent_at));
            });
      }
      net.simulator.run_until(20 * sim::kMillisecond);
      const int rounds = 100;
      std::uint64_t expected = 0;
      for (int i = 0; i < rounds; ++i) {
        net.simulator.schedule_at(
            net.simulator.now() + (i + 1) * 2 * sim::kMillisecond, [&] {
              sent_at = net.simulator.now();
              net.runtimes[0]->publish(
                  4, 1, std::vector<std::uint8_t>(64, 0x99), 3);
            });
        expected += fanout;
      }
      net.simulator.run_until(sim::seconds(1));
      table.row({bench::fmt(fanout),
                 bench::fmt(latency.percentile(99) / 1000.0, 1),
                 bench::fmt(net.runtimes[0]->messages_sent()),
                 deliveries == expected ? "yes" : "NO"});
    }
  }
  return 0;
}
