// E6 -- Sec. 4.1: package verification on weak ECUs vs update-master
// delegation.
//
// A signed package must be verified before installation. Either the target
// ECU does the full RSA check locally, or it hashes the binary locally and
// delegates the signature check to the update master on the central
// computer (one authenticated RPC). Swept over target-ECU speed and package
// size; reported as end-to-end simulated time until the verdict.
//
// Expected shape: local verification on a 20-50 MIPS ECU is dominated by
// the fixed RSA cost (hundreds of ms); delegation replaces it with a
// network round trip + the master's fast check. The crossover sits where
// the ECU is fast enough that RSA-local < RPC latency (~1000+ MIPS).
#include <memory>

#include "bench/common.hpp"
#include "net/ethernet.hpp"
#include "security/package.hpp"
#include "security/update_master.hpp"

using namespace dynaplat;

namespace {

struct Setup {
  explicit Setup(std::uint64_t target_mips) {
    medium = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                   net::EthernetConfig{});
    os::EcuConfig central_config{
        .name = "Central",
        .cpu = {.mips = 10'000, .crypto_accelerator = true}};
    os::EcuConfig target_config{.name = "Target",
                                .cpu = {.mips = target_mips}};
    central = std::make_unique<os::Ecu>(simulator, central_config,
                                        medium.get(), 1);
    target = std::make_unique<os::Ecu>(simulator, target_config,
                                       medium.get(), 2);
    central->processor().start();
    target->processor().start();
    central_rt = std::make_unique<middleware::ServiceRuntime>(*central);
    target_rt = std::make_unique<middleware::ServiceRuntime>(*target);
  }

  sim::Simulator simulator;
  std::unique_ptr<net::EthernetSwitch> medium;
  std::unique_ptr<os::Ecu> central, target;
  std::unique_ptr<middleware::ServiceRuntime> central_rt, target_rt;
};

}  // namespace

int main() {
  bench::banner("E6", "package verification: local vs update master "
                      "(Sec. 4.1)");
  sim::Random rng(20'17);
  const auto oem = crypto::RsaKeyPair::generate(768, rng);
  security::PackageSigner signer(oem);

  bench::Table table({"ecu_mips", "pkg_KiB", "local_ms", "delegated_ms",
                      "winner"});
  for (std::uint64_t mips : {20ull, 100ull, 500ull, 2000ull, 10000ull}) {
    for (std::size_t kib : {4u, 64u, 1024u, 4096u}) {
      const auto package =
          signer.sign("App", 1, std::vector<std::uint8_t>(kib * 1024, 0x3C));

      // Local: the whole verification cost runs on the target CPU.
      double local_ms;
      {
        Setup setup(mips);
        sim::Time done_at = 0;
        setup.target->processor().submit(
            "verify_local",
            security::PackageVerifier::verification_cost(package.binary.size()),
            5, os::TaskClass::kNonDeterministic,
            [&] { done_at = setup.simulator.now(); });
        setup.simulator.run_until(sim::seconds(300));
        local_ms = sim::to_ms(done_at);
      }

      // Delegated: hash locally, RPC to the master.
      double delegated_ms;
      {
        Setup setup(mips);
        security::UpdateMasterService master(*setup.central_rt, oem.pub);
        security::UpdateMasterClient client(*setup.target_rt);
        sim::Time done_at = 0;
        bool verdict = false;
        client.verify(package, [&](bool ok) {
          verdict = ok;
          done_at = setup.simulator.now();
        });
        setup.simulator.run_until(sim::seconds(300));
        delegated_ms = sim::to_ms(done_at);
        if (!verdict) delegated_ms = -1.0;
      }

      table.row({bench::fmt(mips), bench::fmt(kib),
                 bench::fmt(local_ms, 1), bench::fmt(delegated_ms, 1),
                 local_ms <= delegated_ms ? "local" : "master"});
    }
  }
  return 0;
}
