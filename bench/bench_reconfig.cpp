// E14 -- Sec. 2.3: self-healing deployment ("the final mapping might only
// be applied in the vehicle on the road").
//
// A fleet of apps spread across ECUs; one ECU is killed at t = 2 s. The
// ReconfigurationManager re-places the dead host's apps onto survivors,
// admission-checked. Swept over spare capacity (how loaded the survivors
// already are) and sweep period. Reported: recovered/total apps, recovery
// latency (fault -> last app running again), and where the apps landed.
//
// Expected shape: with spare capacity, recovery completes within ~2 sweep
// periods; as survivor load approaches saturation, apps strand -- the
// quantified version of "the deployment ... can depend on the current load
// of every hardware component".
#include <memory>

#include "bench/common.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/reconfiguration.hpp"

using namespace dynaplat;

namespace {

struct Outcome {
  int recovered = 0;
  int stranded = 0;
  double recovery_ms = -1.0;
};

Outcome run(int apps_on_victim, double survivor_base_load,
            sim::Duration sweep_period) {
  // 3 ECUs: Victim hosts the apps under test; S1/S2 carry base load.
  std::string dsl =
      "network Net kind=ethernet bitrate=100M\n"
      "ecu Victim mips=1000 cores=2 memory=256M asil=D network=Net\n"
      "ecu S1 mips=1000 memory=256M asil=D network=Net\n"
      "ecu S2 mips=1000 memory=256M asil=D network=Net\n";
  for (int i = 0; i < apps_on_victim; ++i) {
    dsl += "app Fn" + std::to_string(i) +
           " class=deterministic asil=B memory=4M\n"
           "  task t period=10ms wcet=1500K priority=1\n";  // 0.15 util
    dsl += "deploy Fn" + std::to_string(i) + " -> Victim | S1 | S2\n";
  }
  // Base load on the survivors.
  const auto base_wcet =
      static_cast<std::uint64_t>(survivor_base_load * 1000.0 * 10'000.0);
  for (const char* survivor : {"S1", "S2"}) {
    dsl += std::string("app Base") + survivor +
           " class=deterministic asil=B memory=4M\n"
           "  task t period=10ms wcet=" +
           std::to_string(base_wcet) + " priority=2\n";
    dsl += std::string("deploy Base") + survivor + " -> " + survivor + "\n";
  }

  auto parsed = model::parse_system(dsl);
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId node_id = 1;
  for (const auto& ecu_def : parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.cores = ecu_def.cores;
    config.memory_bytes = ecu_def.memory_bytes;
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             node_id++));
  }
  // The candidate lists are deliberately permissive (they are the
  // reconfiguration search space, not a guarantee that every variant is
  // simultaneously safe), so strict variant verification is off; per-node
  // admission control still gates every placement at runtime.
  platform::PlatformConfig platform_config;
  platform_config.enforce_verification = false;
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment,
                               platform_config);
  for (auto& ecu : ecus) dp.add_node(*ecu);
  for (const auto& app : parsed.model.apps()) {
    dp.register_app(app.name, [] {
      return std::make_unique<platform::Application>();
    });
  }
  if (!dp.install_all()) return {};

  platform::ReconfigConfig config;
  config.check_period = sweep_period;
  platform::ReconfigurationManager reconfig(dp, config);
  reconfig.engage();

  const sim::Time fault_at = sim::seconds(2) + 7 * sim::kMillisecond;
  simulator.schedule_at(fault_at, [&] { ecus[0]->fail(); });
  simulator.run_until(sim::seconds(10));

  Outcome outcome;
  sim::Time last_recovery = 0;
  for (const auto& migration : reconfig.migrations()) {
    if (migration.success) {
      ++outcome.recovered;
      last_recovery = std::max(last_recovery, migration.at);
    }
  }
  outcome.stranded = static_cast<int>(reconfig.stranded().size());
  if (outcome.recovered > 0) {
    outcome.recovery_ms = sim::to_ms(last_recovery - fault_at);
  }
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E14", "self-healing reconfiguration (Sec. 2.3)");
  bench::Table table({"victim_apps", "survivor_load", "sweep_ms",
                      "recovered", "stranded", "recovery_ms"});
  for (int apps : {2, 4, 8}) {
    for (double load : {0.1, 0.5, 0.8}) {
      const Outcome outcome = run(apps, load, 50 * sim::kMillisecond);
      table.row({bench::fmt(apps), bench::fmt(load, 1), "50",
                 bench::fmt(outcome.recovered), bench::fmt(outcome.stranded),
                 outcome.recovery_ms < 0 ? "-"
                                         : bench::fmt(outcome.recovery_ms, 0)});
    }
  }
  // Sweep-period sensitivity at a comfortable load.
  for (sim::Duration sweep : {10 * sim::kMillisecond, 100 * sim::kMillisecond,
                              500 * sim::kMillisecond}) {
    const Outcome outcome = run(4, 0.1, sweep);
    table.row({"4", "0.1", bench::fmt(sim::to_ms(sweep), 0),
               bench::fmt(outcome.recovered), bench::fmt(outcome.stranded),
               outcome.recovery_ms < 0 ? "-"
                                       : bench::fmt(outcome.recovery_ms, 0)});
  }
  return 0;
}
