// E5 -- Sec. 2.3: design space exploration scalability and quality.
//
// Random app sets mapped onto ECU farms of growing size. Strategies:
// exhaustive (exact, exponential), greedy first-fit, simulated annealing,
// genetic. Reported: feasibility, achieved cost (lower = better), candidates
// evaluated and host wall time.
//
// Expected shape: exhaustive blows up past ~6 apps x 4 ECUs; greedy is
// near-free but leaves cost on the table; SA/GA close most of the gap at
// 100-1000x fewer evaluations than exhaustive.
#include <string>

#include <cmath>

#include "bench/common.hpp"
#include "dse/exploration.hpp"
#include "model/parser.hpp"
#include "sim/random.hpp"

using namespace dynaplat;

namespace {

model::ParsedSystem make_system(std::size_t apps, std::size_t ecus,
                                std::uint64_t seed) {
  sim::Random rng(seed);
  std::string dsl = "network Net kind=ethernet bitrate=1G\n";
  for (std::size_t e = 0; e < ecus; ++e) {
    dsl += "ecu E" + std::to_string(e) +
           " mips=1000 memory=256M asil=D network=Net\n";
  }
  // Interfaces chain apps together so communication locality matters.
  for (std::size_t a = 0; a + 1 < apps; ++a) {
    dsl += "interface I" + std::to_string(a) +
           " paradigm=event payload=64 period=10ms\n";
  }
  for (std::size_t a = 0; a < apps; ++a) {
    // All apps share one ASIL: the chain of provides/consumes below would
    // otherwise trip the asil.dependency rule by construction.
    const bool deterministic = a % 2 == 0;
    dsl += "app A" + std::to_string(a) + " class=" +
           (deterministic ? "deterministic" : "nondeterministic") +
           " asil=B memory=16M\n";
    const auto wcet_k = 500 + rng.next_below(2000);  // util 0.05 - 0.25
    dsl += "  task t period=10ms wcet=" + std::to_string(wcet_k) + "K" +
           " priority=" + std::to_string(a % 16) + "\n";
    if (a > 0) dsl += "  consumes I" + std::to_string(a - 1) + "\n";
    if (a + 1 < apps) dsl += "  provides I" + std::to_string(a) + "\n";
  }
  return model::parse_system(dsl);
}

}  // namespace

int main() {
  bench::banner("E5", "design space exploration (Sec. 2.3, [9,14])");
  bench::Table table({"apps", "ecus", "strategy", "feasible", "cost",
                      "candidates", "wall_ms"});
  struct Case {
    std::size_t apps;
    std::size_t ecus;
  };
  for (const Case& c : {Case{4, 2}, Case{6, 3}, Case{8, 4}, Case{12, 5},
                        Case{20, 8}}) {
    auto sys = make_system(c.apps, c.ecus, 42 + c.apps);
    dse::Explorer explorer(sys.model);

    const bool exhaustive_viable =
        std::pow(static_cast<double>(c.ecus),
                 static_cast<double>(c.apps)) <= 70'000;
    if (exhaustive_viable) {
      bench::Stopwatch stopwatch;
      const auto result = explorer.exhaustive();
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "exhaustive",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    } else {
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "exhaustive",
                 "-", "-", "skipped(>70k)", "-"});
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = explorer.greedy();
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "greedy",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = explorer.simulated_annealing(4'000, 7);
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "annealing",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = explorer.genetic(24, 60, 7);
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "genetic",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    }
  }
  return 0;
}
