// E5 -- Sec. 2.3: design space exploration scalability and quality.
//
// Random app sets mapped onto ECU farms of growing size. Strategies:
// exhaustive (exact, exponential), greedy first-fit, simulated annealing,
// genetic. Reported: feasibility, achieved cost (lower = better), candidates
// evaluated and host wall time.
//
// Expected shape: exhaustive blows up past ~6 apps x 4 ECUs; greedy is
// near-free but leaves cost on the table; SA/GA close most of the gap at
// 100-1000x fewer evaluations than exhaustive.
//
// E5b additionally measures the parallel/memoized evaluation path against
// the legacy serial always-reverify baseline and emits machine-readable
// results to BENCH_dse.json (candidates/sec, speedup, cache hit rate) so
// successive PRs accumulate a perf trajectory.
#include <cstdio>
#include <string>

#include <cmath>

#include "bench/common.hpp"
#include "concurrency/thread_pool.hpp"
#include "dse/exploration.hpp"
#include "model/parser.hpp"
#include "sim/random.hpp"

using namespace dynaplat;

namespace {

model::ParsedSystem make_system(std::size_t apps, std::size_t ecus,
                                std::uint64_t seed) {
  sim::Random rng(seed);
  std::string dsl = "network Net kind=ethernet bitrate=1G\n";
  for (std::size_t e = 0; e < ecus; ++e) {
    dsl += "ecu E" + std::to_string(e) +
           " mips=1000 memory=256M asil=D network=Net\n";
  }
  // Interfaces chain apps together so communication locality matters.
  for (std::size_t a = 0; a + 1 < apps; ++a) {
    dsl += "interface I" + std::to_string(a) +
           " paradigm=event payload=64 period=10ms\n";
  }
  for (std::size_t a = 0; a < apps; ++a) {
    // All apps share one ASIL: the chain of provides/consumes below would
    // otherwise trip the asil.dependency rule by construction.
    const bool deterministic = a % 2 == 0;
    dsl += "app A" + std::to_string(a) + " class=" +
           (deterministic ? "deterministic" : "nondeterministic") +
           " asil=B memory=16M\n";
    const auto wcet_k = 500 + rng.next_below(2000);  // util 0.05 - 0.25
    dsl += "  task t period=10ms wcet=" + std::to_string(wcet_k) + "K" +
           " priority=" + std::to_string(a % 16) + "\n";
    if (a > 0) dsl += "  consumes I" + std::to_string(a - 1) + "\n";
    if (a + 1 < apps) dsl += "  provides I" + std::to_string(a) + "\n";
  }
  return model::parse_system(dsl);
}

struct ThroughputSample {
  std::uint64_t candidates = 0;
  std::uint64_t cache_hits = 0;
  double wall_ms = 0.0;
  double cost = 0.0;
  double per_second() const {
    return wall_ms > 0.0 ? static_cast<double>(candidates) * 1e3 / wall_ms
                         : 0.0;
  }
  double hit_rate() const {
    return candidates > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(candidates)
               : 0.0;
  }
};

ThroughputSample sample_of(const dse::ExplorationResult& result,
                           double wall_ms) {
  ThroughputSample s;
  s.candidates = result.candidates_evaluated;
  s.cache_hits = result.cache_hits;
  s.wall_ms = wall_ms;
  s.cost = result.cost;
  return s;
}

void json_sample(std::FILE* f, const char* key, const ThroughputSample& s,
                 bool trailing_comma) {
  std::fprintf(f,
               "    \"%s\": {\"candidates\": %llu, \"wall_ms\": %.3f, "
               "\"candidates_per_sec\": %.1f, \"cache_hits\": %llu, "
               "\"cache_hit_rate\": %.4f, \"cost\": %.6f}%s\n",
               key, static_cast<unsigned long long>(s.candidates), s.wall_ms,
               s.per_second(), static_cast<unsigned long long>(s.cache_hits),
               s.hit_rate(), s.cost, trailing_comma ? "," : "");
}

/// E5b: serial always-reverify baseline (cache off, threads 0 — the legacy
/// evaluation path) vs. the parallel memoized path, on the largest E5 case.
void throughput_experiment() {
  constexpr std::size_t kApps = 20;
  constexpr std::size_t kEcus = 8;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPopulation = 24;
  constexpr std::size_t kGenerations = 150;
  constexpr std::uint64_t kAnnealIters = 12'000;
  constexpr std::size_t kChains = 8;
  constexpr std::uint64_t kSeed = 7;

  bench::banner("E5b", "parallel + memoized DSE throughput");
  bench::Table table({"strategy", "config", "candidates", "cache_hit_rate",
                      "wall_ms", "cand_per_s", "cost"});

  auto sys = make_system(kApps, kEcus, 42 + kApps);

  ThroughputSample genetic_serial, genetic_parallel;
  {
    dse::Explorer explorer(sys.model);
    explorer.set_cache_enabled(false);
    bench::Stopwatch stopwatch;
    const auto result =
        explorer.genetic(kPopulation, kGenerations, kSeed, 0);
    genetic_serial = sample_of(result, stopwatch.elapsed_ms());
  }
  {
    dse::Explorer explorer(sys.model);
    bench::Stopwatch stopwatch;
    const auto result =
        explorer.genetic(kPopulation, kGenerations, kSeed, kThreads);
    genetic_parallel = sample_of(result, stopwatch.elapsed_ms());
  }

  ThroughputSample anneal_serial, anneal_parallel;
  {
    dse::Explorer explorer(sys.model);
    explorer.set_cache_enabled(false);
    bench::Stopwatch stopwatch;
    const auto result = explorer.simulated_annealing(kAnnealIters, kSeed, 1, 0);
    anneal_serial = sample_of(result, stopwatch.elapsed_ms());
  }
  {
    dse::Explorer explorer(sys.model);
    bench::Stopwatch stopwatch;
    const auto result =
        explorer.simulated_annealing(kAnnealIters, kSeed, kChains, kThreads);
    anneal_parallel = sample_of(result, stopwatch.elapsed_ms());
  }

  const auto row = [&](const char* strategy, const char* config,
                       const ThroughputSample& s) {
    table.row({strategy, config, bench::fmt(s.candidates),
               bench::fmt(s.hit_rate(), 3), bench::fmt(s.wall_ms, 1),
               bench::fmt(s.per_second(), 0), bench::fmt(s.cost, 1)});
  };
  row("genetic", "serial,nocache", genetic_serial);
  row("genetic", "threads=8,cache", genetic_parallel);
  row("annealing", "serial,nocache,chains=1", anneal_serial);
  row("annealing", "threads=8,cache,chains=8", anneal_parallel);

  const double genetic_speedup =
      genetic_serial.per_second() > 0
          ? genetic_parallel.per_second() / genetic_serial.per_second()
          : 0.0;
  const double anneal_speedup =
      anneal_serial.per_second() > 0
          ? anneal_parallel.per_second() / anneal_serial.per_second()
          : 0.0;
  std::printf("genetic speedup: %.2fx   annealing speedup: %.2fx\n",
              genetic_speedup, anneal_speedup);

  std::FILE* f = std::fopen("BENCH_dse.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dse.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E5b_parallel_dse\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"apps\": %zu,\n  \"ecus\": %zu,\n", kApps, kEcus);
  std::fprintf(f, "  \"threads\": %zu,\n", kThreads);
  std::fprintf(f, "  \"host_threads\": %zu,\n",
               dynaplat::concurrency::ThreadPool::hardware_threads());
  std::fprintf(f, "  \"genetic\": {\n");
  json_sample(f, "serial_baseline", genetic_serial, true);
  json_sample(f, "parallel_memoized", genetic_parallel, true);
  std::fprintf(f, "    \"speedup\": %.3f,\n", genetic_speedup);
  std::fprintf(f, "    \"deterministic\": %s\n",
               genetic_serial.cost == genetic_parallel.cost ? "true"
                                                            : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"annealing\": {\n");
  json_sample(f, "serial_baseline", anneal_serial, true);
  json_sample(f, "parallel_memoized", anneal_parallel, true);
  std::fprintf(f, "    \"speedup\": %.3f\n", anneal_speedup);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_dse.json\n");
}

}  // namespace

int main() {
  bench::banner("E5", "design space exploration (Sec. 2.3, [9,14])");
  bench::Table table({"apps", "ecus", "strategy", "feasible", "cost",
                      "candidates", "wall_ms"});
  struct Case {
    std::size_t apps;
    std::size_t ecus;
  };
  for (const Case& c : {Case{4, 2}, Case{6, 3}, Case{8, 4}, Case{12, 5},
                        Case{20, 8}}) {
    auto sys = make_system(c.apps, c.ecus, 42 + c.apps);
    dse::Explorer explorer(sys.model);

    const bool exhaustive_viable =
        std::pow(static_cast<double>(c.ecus),
                 static_cast<double>(c.apps)) <= 70'000;
    if (exhaustive_viable) {
      bench::Stopwatch stopwatch;
      const auto result = explorer.exhaustive();
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "exhaustive",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    } else {
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "exhaustive",
                 "-", "-", "skipped(>70k)", "-"});
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = explorer.greedy();
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "greedy",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = explorer.simulated_annealing(4'000, 7);
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "annealing",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = explorer.genetic(24, 60, 7);
      table.row({bench::fmt(c.apps), bench::fmt(c.ecus), "genetic",
                 result.feasible ? "yes" : "no", bench::fmt(result.cost, 1),
                 bench::fmt(result.candidates_evaluated),
                 bench::fmt(stopwatch.elapsed_ms(), 1)});
    }
  }
  throughput_experiment();
  return 0;
}
