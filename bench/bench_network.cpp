// E9 -- Sec. 5.3: deterministic frame latency across media under load.
//
// One deterministic 8-byte frame flow at 100 Hz shares a medium with
// best-effort background traffic of growing intensity. Media compared:
//   can       -- 500 kbit/s CAN (priority arbitration, non-preemptive)
//   flexray   -- 10 Mbit/s FlexRay, DA flow in a static slot
//   eth_flat  -- 100 Mbit/s switched Ethernet, single priority (ablation)
//   eth_prio  -- same with 802.1Q strict priority for the DA flow
//   eth_tsn   -- same plus an 802.1Qbv gate reserving a TT window
//
// Expected shape: CAN's worst case grows by one max-frame blocking time;
// flat Ethernet queues DA frames behind bulk (p99 explodes with load);
// strict priority caps the damage at one frame serialization; TSN pins the
// worst case regardless of load (at the cost of gated bandwidth); FlexRay's
// static slot gives constant latency == slot phase.
#include <functional>
#include <memory>

#include "bench/common.hpp"
#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "net/flexray.hpp"

using namespace dynaplat;

namespace {

struct Outcome {
  double mean_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::uint64_t delivered = 0;
};

Outcome run(const std::string& medium_kind, double background_load) {
  sim::Simulator simulator;
  std::unique_ptr<net::Medium> medium;
  std::size_t bulk_payload = 1400;
  std::uint64_t medium_bps = 100'000'000;

  if (medium_kind == "can") {
    medium = std::make_unique<net::CanBus>(simulator, "can",
                                           net::CanBusConfig{});
    bulk_payload = 8;
    medium_bps = 500'000;
  } else if (medium_kind == "canfd") {
    net::CanBusConfig config;
    config.fd = true;
    config.data_bitrate_bps = 2'000'000;
    medium = std::make_unique<net::CanBus>(simulator, "canfd", config);
    bulk_payload = 64;
    medium_bps = 2'000'000;
  } else if (medium_kind == "flexray") {
    auto flexray = std::make_unique<net::FlexRayBus>(simulator, "fr",
                                                     net::FlexRayConfig{});
    flexray->assign_static_slot(0, 42);  // DA flow id 42 owns slot 0
    medium = std::move(flexray);
    bulk_payload = 254;
    medium_bps = 10'000'000;
  } else {
    auto eth = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    if (medium_kind == "eth_tsn") {
      // 10 ms cycle with a 500 us window reserved for priority 0, phased
      // with the DA flow's releases (a TSN deployment co-designs flow
      // offsets and gate windows, Sec. 2.3).
      eth->set_gate_control(
          2, net::GateControlList::tt_window(10 * sim::kMillisecond,
                                             500 * sim::kMicrosecond, 0));
    }
    medium = std::move(eth);
  }

  sim::Stats latency;
  std::uint64_t delivered = 0;
  medium->attach(2, [&](const net::Frame& frame) {
    if (frame.flow_id == 42) {
      latency.add(static_cast<double>(frame.delivered_at -
                                      frame.enqueued_at));
      ++delivered;
    }
  });
  medium->attach(1, [](const net::Frame&) {});
  medium->attach(3, [](const net::Frame&) {});
  medium->attach(4, [](const net::Frame&) {});

  // Deterministic flow: node 1 -> node 2, 8 bytes every 10 ms, priority 0
  // (flat Ethernet ablation forces everything to one priority).
  const net::Priority da_priority =
      medium_kind == "eth_flat" ? net::Priority{7} : net::Priority{0};
  // Releases at 100 us into each 10 ms period: inside the TSN window for
  // eth_tsn, an arbitrary phase for everything else.
  simulator.schedule_every(100 * sim::kMicrosecond, 10 * sim::kMillisecond,
                           [&] {
    net::Frame frame;
    frame.flow_id = 42;
    frame.src = 1;
    frame.dst = 2;
    frame.priority = da_priority;
    frame.payload.assign(8, 0xDA);
    medium->send(std::move(frame));
  });

  // Background: nodes 3 and 4 send *bursts* of bulk frames to node 2 at
  // the requested average fraction of the egress capacity. Two senders
  // matter on the switch: their ingress links aggregate to twice the
  // egress drain rate, so bursts genuinely queue at the egress port.
  if (background_load > 0.0) {
    const std::size_t burst = 8;  // per sender, 16 aggregate
    const double bits_per_frame = static_cast<double>(bulk_payload + 42) * 8;
    const double frames_per_s_per_sender =
        background_load * static_cast<double>(medium_bps) / bits_per_frame /
        2.0;
    const auto burst_interval = static_cast<sim::Duration>(
        1e9 * burst / frames_per_s_per_sender);
    std::uint32_t bulk_flow = 100;
    for (net::NodeId sender : {net::NodeId{3}, net::NodeId{4}}) {
      simulator.schedule_every(burst_interval / 2, burst_interval,
                               [&, sender, bulk_flow]() mutable {
                                 for (std::size_t i = 0; i < burst; ++i) {
                                   net::Frame frame;
                                   frame.flow_id = bulk_flow++;
                                   frame.src = sender;
                                   frame.dst = 2;
                                   frame.priority = 7;
                                   frame.payload.assign(bulk_payload, 0xBE);
                                   medium->send(std::move(frame));
                                 }
                               });
    }
  }

  simulator.run_until(sim::seconds(10));
  Outcome outcome;
  outcome.mean_us = latency.mean() / 1000.0;
  outcome.p99_us = latency.percentile(99) / 1000.0;
  outcome.max_us = latency.max() / 1000.0;
  outcome.delivered = delivered;
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E9", "DA frame latency: CAN / FlexRay / Ethernet / TSN "
                      "(Sec. 5.3)");
  bench::Table table({"medium", "bg_load", "mean_us", "p99_us", "max_us",
                      "delivered"});
  for (const char* medium :
       {"can", "canfd", "flexray", "eth_flat", "eth_prio", "eth_tsn"}) {
    for (double load : {0.0, 0.3, 0.6, 0.9}) {
      const Outcome outcome = run(medium, load);
      table.row({medium, bench::fmt(load, 1), bench::fmt(outcome.mean_us, 1),
                 bench::fmt(outcome.p99_us, 1), bench::fmt(outcome.max_us, 1),
                 bench::fmt(outcome.delivered)});
    }
  }
  return 0;
}
