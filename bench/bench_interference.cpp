// E1 -- Fig. 2 / Sec. 3.1 "CPU": freedom from interference on a
// consolidated ECU.
//
// Five deterministic control tasks share one 200 MIPS ECU with a growing
// non-deterministic background load. Three scheduling regimes:
//   fair      -- GPOS fair scheduler, no platform (the unisolated baseline)
//   fp        -- RTOS fixed priorities (DAs above NDAs)
//   tt        -- the dynamic platform's synthesized time-triggered table
// Reported per load level: DA deadline-miss ratio, worst/p99 DA response,
// DA response-time spread (jitter), and NDA throughput.
//
// Expected shape: fair collapses early (misses grow with load); fp holds
// deadlines but DA response spread grows with NDA interference through
// blocking; tt pins DA responses regardless of load (the paper's claim).
#include <memory>

#include "bench/common.hpp"
#include "dse/admission.hpp"
#include "os/processor.hpp"

using namespace dynaplat;

namespace {

struct DaTaskSpec {
  const char* name;
  sim::Duration period;
  std::uint64_t instructions;  // at 200 MIPS: duration = instr * 5 ns
  int priority;
};

// ~31% deterministic utilization across automotive-typical rates.
constexpr DaTaskSpec kDaTasks[] = {
    {"brake_ctl", 1 * sim::kMillisecond, 20'000, 0},   // 0.1
    {"steer_ctl", 2 * sim::kMillisecond, 30'000, 1},   // 0.075
    {"susp_ctl", 5 * sim::kMillisecond, 60'000, 2},    // 0.06
    {"adas_fuse", 10 * sim::kMillisecond, 100'000, 3}, // 0.05
    {"diag_loop", 20 * sim::kMillisecond, 120'000, 4}, // 0.03
};

struct Result {
  double miss_ratio = 0.0;
  double p99_response_us = 0.0;
  double max_response_us = 0.0;
  double spread_us = 0.0;  // max - min response across DA tasks
  std::uint64_t nda_completions = 0;
};

Result run(const std::string& regime, double nda_load) {
  sim::Simulator simulator;
  const os::CpuModel cpu_model{.mips = 200};

  std::unique_ptr<os::Scheduler> scheduler;
  os::TimeTriggeredScheduler* tt = nullptr;
  if (regime == "fair") {
    scheduler = os::make_fair(sim::kMillisecond);
  } else if (regime == "fp") {
    scheduler = os::make_fixed_priority();
  } else {
    auto tt_scheduler = std::make_unique<os::TimeTriggeredScheduler>(
        sim::kMillisecond, std::vector<os::TtWindow>{});
    tt = tt_scheduler.get();
    scheduler = std::move(tt_scheduler);
  }
  os::Processor cpu(simulator, "ecu", cpu_model, std::move(scheduler),
                    nullptr, 7);

  std::vector<os::TaskId> da_ids;
  std::vector<dse::AnalysisTask> analysis;
  for (const auto& spec : kDaTasks) {
    os::TaskConfig config;
    config.name = spec.name;
    config.task_class = os::TaskClass::kDeterministic;
    config.period = spec.period;
    config.instructions = spec.instructions;
    config.priority = spec.priority;
    config.execution_jitter = 0.05;
    da_ids.push_back(cpu.add_task(config));

    dse::AnalysisTask at;
    at.name = spec.name;
    at.period = spec.period;
    at.deadline = spec.period;
    at.wcet = cpu_model.duration_for(
        static_cast<std::uint64_t>(spec.instructions * 1.05));
    at.priority = spec.priority;
    at.deterministic = true;
    analysis.push_back(at);
  }

  // NDA background: 4 workers whose combined utilization equals nda_load.
  std::vector<os::TaskId> nda_ids;
  const int workers = 4;
  for (int w = 0; w < workers; ++w) {
    os::TaskConfig config;
    config.name = "nda" + std::to_string(w);
    config.task_class = os::TaskClass::kNonDeterministic;
    config.period = 20 * sim::kMillisecond;
    config.instructions = static_cast<std::uint64_t>(
        nda_load / workers * 200e6 * 0.020);  // load share of 20 ms
    config.priority = 10 + w;
    config.execution_jitter = 0.2;
    if (config.instructions > 0) nda_ids.push_back(cpu.add_task(config));
  }

  if (tt != nullptr) {
    // Platform behaviour: backend-synthesized table with dispatch padding.
    dse::ScheduleServer backend;
    const auto artifact = backend.synthesize(analysis, cpu_model.mips);
    if (artifact.feasible) {
      std::vector<os::TtWindow> windows;
      for (const auto& window : artifact.table.windows) {
        windows.push_back(os::TtWindow{window.offset, window.length,
                                       da_ids[window.task]});
      }
      tt->install_table(artifact.table.cycle, std::move(windows));
    }
  }

  cpu.start();
  simulator.run_until(sim::seconds(5));

  Result result;
  std::uint64_t completions = 0, misses = 0;
  sim::Stats responses;
  for (os::TaskId id : da_ids) {
    const auto& stats = cpu.stats(id);
    completions += stats.completions;
    misses += stats.deadline_misses;
    result.p99_response_us =
        std::max(result.p99_response_us,
                 stats.response_time.percentile(99) / 1000.0);
    result.max_response_us =
        std::max(result.max_response_us, stats.response_time.max() / 1000.0);
    result.spread_us =
        std::max(result.spread_us, (stats.response_time.max() -
                                    stats.response_time.min()) /
                                       1000.0);
  }
  result.miss_ratio =
      completions ? static_cast<double>(misses) /
                        static_cast<double>(completions)
                  : 1.0;
  for (os::TaskId id : nda_ids) {
    result.nda_completions += cpu.stats(id).completions;
  }
  return result;
}

}  // namespace

int main() {
  bench::banner("E1", "mixed-criticality CPU interference (Fig. 2, Sec. 3.1)");
  bench::Table table({"regime", "nda_load", "da_miss_ratio", "da_p99_us",
                      "da_max_us", "da_spread_us", "nda_completions"});
  for (const char* regime : {"fair", "fp", "tt"}) {
    for (double load : {0.0, 0.2, 0.4, 0.6, 0.68}) {
      const Result result = run(regime, load);
      table.row({regime, bench::fmt(load, 2),
                 bench::fmt(result.miss_ratio, 4),
                 bench::fmt(result.p99_response_us, 1),
                 bench::fmt(result.max_response_us, 1),
                 bench::fmt(result.spread_us, 1),
                 bench::fmt(result.nda_completions)});
    }
  }
  return 0;
}
