// E21 + E22 -- Sec. 2.3 + 4.1: fleet-scale backend robustness and scaling.
//
// E21 (robustness):
//
//   stampede      1k..10k vehicle sessions on a staggered OTA cadence; at
//                 t = 5 s a fault wave hits half the fleet inside 500 ms
//                 and every victim requests recovery synthesis at once.
//                 Reports what the admission/shedding/backpressure stack
//                 and the cross-vehicle memo cache turn that stampede
//                 into: real synthesis runs, cache hit rate, shed/
//                 backpressure counts, recovery latency percentiles, and
//                 the longest any vehicle stayed unsafe.
//
//   outage A/B    1k sessions, a full backend crash spanning the fault
//                 wave. Arm "resilient" has the vehicle-side ladder
//                 (stale artifact cache, ECU-local admission); arm
//                 "stranded" ablates it. The headline invariant -- no
//                 vehicle stuck unsafe, bounded recovery after heal -- is
//                 machine-checked per arm and the bench exits non-zero if
//                 the resilient arm ever violates it (or the ablation
//                 fails to demonstrate the stranding it exists to show).
//
//   determinism   the same fleet scenarios swept serially and on 3
//                 threads must merge to bit-identical fingerprints.
//
// E22 (scaling) -- the million-session fleet:
//
//   scaling tiers 10k / 100k / 1M sessions through a stampede + full
//                 backend outage, with request batching, the calendar-
//                 wheel driver and compressed SoA sessions. Reports host
//                 wall time, sessions/sec, peak RSS, synthesis runs,
//                 worker dequeues and the cohort-size histogram; the
//                 no-stranded-vehicle invariant is enforced at every
//                 tier (exit non-zero).
//
//   wheel gate    10k sessions driven by the timing wheel vs the kernel
//                 heap must produce bit-identical FNV fingerprints: the
//                 wheel is an optimization, not a semantics change.
//
//   batching gate batched vs serial service at 100k sessions with equal
//                 served counts: the cohort path must cut worker
//                 dequeues by at least 5x.
//
//   two regions   100k sessions split across two backend regions;
//                 region 0 crashes over the wave. Breaker-driven
//                 failover must keep every vehicle safe (fresh sibling
//                 artifacts, cold-cache synthesis in region 1, zero
//                 stranded).
//
// Machine-readable results go to BENCH_fleet.json. --ci caps the tier
// ladder at 100k sessions and enforces a sessions/sec floor against the
// 10k baseline so CI catches per-session cost regressions.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backend/fleet.hpp"
#include "bench/common.hpp"
#include "fault/invariants.hpp"
#include "sim/sweep.hpp"

using namespace dynaplat;

namespace {

constexpr sim::Duration kUnsafeBound = 2 * sim::kSecond;
constexpr sim::Duration kRecoveryBound = 4 * sim::kSecond;

struct StampedeRow {
  std::size_t sessions = 0;
  std::uint64_t synthesis_runs = 0;
  double cache_hit_rate = 0.0;
  std::uint64_t shed_ota = 0;
  std::uint64_t shed_resync = 0;
  std::uint64_t shed_recovery = 0;
  std::uint64_t preempted = 0;
  std::uint64_t backpressured = 0;
  std::size_t peak_unsafe = 0;
  double max_unsafe_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t recoveries = 0;
  double host_ms = 0.0;
  bool invariants_ok = false;
};

struct OutageRow {
  const char* arm = "";
  std::size_t peak_unsafe = 0;
  double max_unsafe_ms = 0.0;
  std::uint64_t fallback_cache = 0;
  std::uint64_t fallback_local = 0;
  std::uint64_t fallback_none = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t recoveries = 0;
  bool invariants_ok = false;
  std::string verdict;
};

struct ScaleRow {
  std::size_t sessions = 0;
  double host_ms = 0.0;
  double sessions_per_sec = 0.0;
  std::size_t peak_rss_kb = 0;
  std::uint64_t requests = 0;
  std::uint64_t synthesis_runs = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t coalesced = 0;
  double mean_batch = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_unsafe_ms = 0.0;
  std::uint64_t recoveries = 0;
  bool invariants_ok = false;
  std::array<std::uint64_t, 16> batch_hist{};
};

backend::FleetConfig fleet_config(std::size_t sessions, std::uint64_t seed) {
  backend::FleetConfig config;
  config.sessions = sessions;
  config.topology_classes = 32;
  config.seed = seed;
  config.horizon = 20 * sim::kSecond;
  config.ota_period = 2 * sim::kSecond;
  config.wave_at = 5 * sim::kSecond;
  config.wave_fraction = 0.5;
  config.wave_stagger = 500 * sim::kMillisecond;
  config.recovery_retry = 250 * sim::kMillisecond;
  return config;
}

void latency_percentiles(const backend::FleetDriver& driver, double* p50,
                         double* p95) {
  if (driver.latencies().empty()) {
    // Exact vector disabled (large tiers): log-histogram quantiles.
    *p50 = driver.latency_quantile_ms(0.50);
    *p95 = driver.latency_quantile_ms(0.95);
    return;
  }
  std::vector<double> ms;
  ms.reserve(driver.latencies().size());
  for (const sim::Duration d : driver.latencies()) {
    ms.push_back(static_cast<double>(d) / 1e6);
  }
  const bench::Percentiles p = bench::percentiles(std::move(ms));
  *p50 = p.p50;
  *p95 = p.p95;
}

StampedeRow run_stampede(std::size_t sessions) {
  StampedeRow row;
  row.sessions = sessions;
  bench::Stopwatch watch;
  sim::Simulator simulator;
  // Backend provisioned at ~2x the fleet's routine load (each worker
  // serves 2k cached req/s): the wave burst (~3x nominal, amplified by
  // client retries) transiently saturates it, so the stampede has to be
  // *managed* (criticality shedding, backpressure, recovery reserve), not
  // merely absorbed by a deep queue.
  backend::ServiceConfig service_config;
  service_config.queue_capacity = 64;
  service_config.backpressure_watermark = 48;
  service_config.recovery_reserve = 16;
  service_config.workers = std::max<std::size_t>(sessions / 2'000, 1);
  service_config.min_service_time = 500 * sim::kMicrosecond;
  backend::FleetScheduleService service(simulator, service_config);
  backend::FleetDriver driver(simulator, service, fleet_config(sessions, 1));
  driver.run();
  row.host_ms = watch.elapsed_ms();

  row.synthesis_runs = service.synthesis_runs();
  const std::uint64_t lookups = service.cache_hits() + service.cache_misses();
  row.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(service.cache_hits()) /
                         static_cast<double>(lookups);
  row.shed_ota = service.shed(backend::Criticality::kOta);
  row.shed_resync = service.shed(backend::Criticality::kResync);
  row.shed_recovery = service.shed(backend::Criticality::kRecovery);
  row.preempted = service.preempted();
  row.backpressured = service.backpressured();
  row.peak_unsafe = driver.peak_unsafe();
  row.max_unsafe_ms =
      static_cast<double>(driver.max_unsafe_duration()) / 1e6;
  row.recoveries = driver.recoveries_completed();
  latency_percentiles(driver, &row.p50_ms, &row.p95_ms);

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, kUnsafeBound);
  checker.require_fleet_recovery_bounded(driver, kRecoveryBound);
  const fault::InvariantReport report = checker.run();
  row.invariants_ok = report.passed;
  if (!report.passed) {
    std::fprintf(stderr, "stampede %zu sessions:\n%s\n", sessions,
                 report.summary().c_str());
  }
  return row;
}

OutageRow run_outage(bool resilient) {
  OutageRow row;
  row.arm = resilient ? "resilient" : "stranded";
  sim::Simulator simulator;
  backend::FleetScheduleService service(simulator);
  backend::FleetConfig config = fleet_config(1'000, 2);
  // The backend dies just before the wave and stays dead well past it:
  // every recovery request of the stampede meets a dead backend first.
  config.outage_at = 4'500 * sim::kMillisecond;
  config.outage_duration = 3 * sim::kSecond;
  if (!resilient) {
    config.client.local_fallback = false;
    config.client.artifact_cache_capacity = 0;
  }
  backend::FleetDriver driver(simulator, service, config);
  driver.run();

  row.peak_unsafe = driver.peak_unsafe();
  row.max_unsafe_ms =
      static_cast<double>(driver.max_unsafe_duration()) / 1e6;
  row.fallback_cache = driver.fallback_cache();
  row.fallback_local = driver.fallback_local();
  row.fallback_none = driver.fallback_none();
  row.breaker_opens = driver.client_breaker_opens();
  row.client_timeouts = driver.client_timeouts();
  row.recoveries = driver.recoveries_completed();

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, kUnsafeBound);
  checker.require_fleet_recovery_bounded(driver, kRecoveryBound);
  const fault::InvariantReport report = checker.run();
  row.invariants_ok = report.passed;
  row.verdict = report.summary();
  return row;
}

bool determinism_gate() {
  const auto scenario = [](sim::ScenarioRun& run) {
    backend::FleetConfig config = fleet_config(64, 300 + run.index);
    config.horizon = 6 * sim::kSecond;
    config.wave_at = 2 * sim::kSecond;
    config.outage_at = 1'800 * sim::kMillisecond;
    config.outage_duration = 1 * sim::kSecond;
    config.outage_is_partition = (run.index % 2) == 1;
    backend::FleetScheduleService service(run.simulator);
    backend::FleetDriver driver(run.simulator, service, config);
    driver.run();
    return driver.fingerprint();
  };
  std::vector<std::uint64_t> serial;
  std::vector<std::uint64_t> parallel;
  {
    sim::ScenarioSweep sweep({.seed = 42, .threads = 0});
    serial = sweep.run<std::uint64_t>(4, scenario);
  }
  {
    sim::ScenarioSweep sweep({.seed = 42, .threads = 3});
    parallel = sweep.run<std::uint64_t>(4, scenario);
  }
  return sim::ScenarioSweep::merge_fingerprints(serial) ==
         sim::ScenarioSweep::merge_fingerprints(parallel);
}

// --- E22: million-session scaling --------------------------------------------

/// Compressed short-horizon scenario for the big tiers: staggered OTA on a
/// 10 ms phase grid (shared wheel instants AND shared service cohorts), a
/// 50% fault wave at 2 s on top of a full backend crash at 1.5..2.5 s.
backend::FleetConfig scale_config(std::size_t sessions, std::uint64_t seed) {
  backend::FleetConfig config;
  config.sessions = sessions;
  config.topology_classes = 32;
  config.seed = seed;
  config.horizon = 6 * sim::kSecond;
  config.ota_period = 2 * sim::kSecond;
  config.ota_phase_grid = 10 * sim::kMillisecond;
  config.wave_at = 2 * sim::kSecond;
  config.wave_fraction = 0.5;
  config.wave_stagger = 500 * sim::kMillisecond;
  config.recovery_retry = 250 * sim::kMillisecond;
  config.outage_at = 1'500 * sim::kMillisecond;
  config.outage_duration = 1 * sim::kSecond;
  // Exact latency vectors and their order-sensitive fingerprint folds stay
  // on for the small tier only; big tiers use the bounded histogram.
  config.record_latencies = sessions <= 10'000;
  return config;
}

backend::ServiceConfig scale_service_config(std::size_t sessions,
                                            bool batching) {
  backend::ServiceConfig config;
  config.batching = batching;
  config.workers = std::max<std::size_t>(sessions / 2'000, 1);
  config.min_service_time = 500 * sim::kMicrosecond;
  // With batching, admission is charged per cohort, so the default-depth
  // queue carries the whole fleet's load.
  config.queue_capacity = 256;
  config.backpressure_watermark = 192;
  config.recovery_reserve = 32;
  return config;
}

ScaleRow run_scale_tier(std::size_t sessions) {
  ScaleRow row;
  row.sessions = sessions;
  bench::Stopwatch watch;
  sim::Simulator simulator;
  backend::FleetScheduleService service(simulator,
                                        scale_service_config(sessions, true));
  backend::FleetDriver driver(simulator, service, scale_config(sessions, 10));
  driver.run();
  row.host_ms = watch.elapsed_ms();
  row.sessions_per_sec =
      row.host_ms <= 0.0
          ? 0.0
          : static_cast<double>(sessions) / (row.host_ms / 1e3);
  row.peak_rss_kb = bench::peak_rss_kb();
  row.requests = service.requests_total();
  row.synthesis_runs = service.synthesis_runs();
  row.dequeues = service.dequeues();
  row.coalesced = service.coalesced();
  row.mean_batch =
      service.dequeues() == 0
          ? 0.0
          : static_cast<double>(service.completed()) /
                static_cast<double>(service.dequeues());
  row.batch_hist = service.batch_size_histogram();
  row.max_unsafe_ms =
      static_cast<double>(driver.max_unsafe_duration()) / 1e6;
  row.recoveries = driver.recoveries_completed();
  latency_percentiles(driver, &row.p50_ms, &row.p95_ms);

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, kUnsafeBound);
  checker.require_fleet_recovery_bounded(driver, kRecoveryBound);
  const fault::InvariantReport report = checker.run();
  row.invariants_ok = report.passed;
  if (!report.passed) {
    std::fprintf(stderr, "scale tier %zu sessions:\n%s\n", sessions,
                 report.summary().c_str());
  }
  return row;
}

/// The wheel must be invisible in results: same 10k fleet, wheel vs heap,
/// bit-identical fingerprints. The session count is prime (10'007) so the
/// exact OTA stagger period/sessions truncates to off-lattice nanosecond
/// phases: timers and foreign kernel events then never share an instant,
/// which is the wheel's documented equivalence precondition (DESIGN.md
/// Sec. 15). A round 10'000 would put every timer on a 200 us lattice
/// shared with transport deliveries and make same-instant cross-population
/// ordering observable.
bool wheel_vs_heap_gate() {
  const auto arm = [](bool wheel) {
    sim::Simulator simulator;
    backend::FleetScheduleService service(simulator,
                                          scale_service_config(10'007, true));
    backend::FleetConfig config = scale_config(10'007, 10);
    config.ota_phase_grid = 0;  // exact per-session stagger
    config.use_timer_wheel = wheel;
    backend::FleetDriver driver(simulator, service, config);
    driver.run();
    return driver.fingerprint();
  };
  const std::uint64_t with_wheel = arm(true);
  const std::uint64_t with_heap = arm(false);
  if (with_wheel != with_heap) {
    std::fprintf(stderr, "wheel-vs-heap MISMATCH: wheel=%016llx heap=%016llx\n",
                 static_cast<unsigned long long>(with_wheel),
                 static_cast<unsigned long long>(with_heap));
  }
  return with_wheel == with_heap;
}

struct BatchingGate {
  std::uint64_t batched_dequeues = 0;
  std::uint64_t serial_dequeues = 0;
  std::uint64_t batched_served = 0;
  std::uint64_t serial_served = 0;
  double ratio = 0.0;
  bool ok = false;
};

/// Batched vs serial at 100k sessions. Both arms are provisioned so the
/// backend never saturates (no shed, no backpressure, no client timeout):
/// the request streams are then identical, served counts must match, and
/// the only difference between the arms is how many worker dequeues it
/// took to serve them. (Running the serial arm *overloaded* instead would
/// both skew the comparison with retry inflation and trip the O(queue)
/// preemption victim scan on every recovery request.)
BatchingGate batching_gate(std::size_t sessions) {
  BatchingGate gate;
  const auto arm = [sessions](bool batching, std::uint64_t* dequeues,
                              std::uint64_t* served) {
    sim::Simulator simulator;
    backend::ServiceConfig service_config =
        scale_service_config(sessions, batching);
    service_config.workers = std::max<std::size_t>(sessions / 500, 1);
    service_config.queue_capacity = sessions;
    service_config.backpressure_watermark = sessions;
    backend::FleetScheduleService service(simulator, service_config);
    backend::FleetConfig config = scale_config(sessions, 10);
    config.outage_at = 0;  // pure load comparison, no outage
    config.outage_duration = 0;
    backend::FleetDriver driver(simulator, service, config);
    driver.run();
    *dequeues = service.dequeues();
    *served = service.completed();
  };
  arm(true, &gate.batched_dequeues, &gate.batched_served);
  arm(false, &gate.serial_dequeues, &gate.serial_served);
  gate.ratio = gate.batched_dequeues == 0
                   ? 0.0
                   : static_cast<double>(gate.serial_dequeues) /
                         static_cast<double>(gate.batched_dequeues);
  // Served counts must agree to 0.1%: response latencies differ by a few
  // ms between the arms (joiners ride the leader's service window), which
  // flips a handful of OTA ticks for sessions still mid-recovery at their
  // cadence instant. Exact equality is not achievable; unequal LOAD is
  // what the tolerance rules out.
  const double served_skew =
      gate.serial_served == 0
          ? 1.0
          : static_cast<double>(
                gate.batched_served > gate.serial_served
                    ? gate.batched_served - gate.serial_served
                    : gate.serial_served - gate.batched_served) /
                static_cast<double>(gate.serial_served);
  gate.ok = served_skew <= 0.001 && gate.ratio >= 5.0;
  if (!gate.ok) {
    std::fprintf(stderr,
                 "batching gate FAILED: served %llu vs %llu, dequeues "
                 "%llu vs %llu (%.1fx < 5x)\n",
                 static_cast<unsigned long long>(gate.batched_served),
                 static_cast<unsigned long long>(gate.serial_served),
                 static_cast<unsigned long long>(gate.batched_dequeues),
                 static_cast<unsigned long long>(gate.serial_dequeues),
                 gate.ratio);
  }
  return gate;
}

struct RegionDrill {
  std::uint64_t failovers = 0;
  std::uint64_t region1_synthesis = 0;
  std::uint64_t fallback_none = 0;
  std::size_t unsafe_now = 0;
  double max_unsafe_ms = 0.0;
  std::uint64_t recoveries = 0;
  bool ok = false;
};

/// Two regions, region 0 crashes over the wave: breaker-driven failover
/// must recover every region-0 vehicle against region 1's cold cache and
/// strand nobody.
RegionDrill two_region_drill(std::size_t sessions) {
  RegionDrill drill;
  sim::Simulator simulator;
  backend::FleetScheduleService region0(
      simulator, scale_service_config(sessions / 2, true));
  backend::FleetScheduleService region1(
      simulator, scale_service_config(sessions / 2, true));
  region0.set_name("region0");
  region1.set_name("region1");
  backend::FleetConfig config = scale_config(sessions, 10);
  backend::FleetDriver driver(simulator, {&region0, &region1}, config);
  driver.run();

  drill.failovers = driver.failovers();
  drill.region1_synthesis = region1.synthesis_runs();
  drill.fallback_none = driver.fallback_none();
  drill.unsafe_now = driver.unsafe_now();
  drill.max_unsafe_ms =
      static_cast<double>(driver.max_unsafe_duration()) / 1e6;
  drill.recoveries = driver.recoveries_completed();

  fault::InvariantChecker checker;
  checker.require_no_stranded_vehicles(driver, kUnsafeBound);
  checker.require_fleet_recovery_bounded(driver, kRecoveryBound);
  const fault::InvariantReport report = checker.run();
  drill.ok = report.passed && drill.failovers > 0 &&
             drill.region1_synthesis > 0 && drill.fallback_none == 0;
  if (!drill.ok) {
    std::fprintf(stderr,
                 "two-region drill FAILED (failovers=%llu r1_synth=%llu "
                 "fb_none=%llu):\n%s\n",
                 static_cast<unsigned long long>(drill.failovers),
                 static_cast<unsigned long long>(drill.region1_synthesis),
                 static_cast<unsigned long long>(drill.fallback_none),
                 report.summary().c_str());
  }
  return drill;
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) ci = true;
  }
  bench::banner("E21+E22",
                "fleet backend robustness and scaling (Sec. 2.3 + 4.1)");

  std::vector<StampedeRow> stampede;
  for (std::size_t sessions :
       {std::size_t{1'000}, std::size_t{4'000}, std::size_t{10'000}}) {
    stampede.push_back(run_stampede(sessions));
  }
  bench::Table table({"sessions", "synth_runs", "cache_hit", "shed_ota",
                      "preempted", "backpressured", "peak_unsafe",
                      "max_unsafe_ms", "p50_ms", "p95_ms", "recoveries",
                      "host_ms", "invariants"});
  for (const StampedeRow& row : stampede) {
    table.row({bench::fmt(row.sessions), bench::fmt(row.synthesis_runs),
               bench::fmt(row.cache_hit_rate, 4), bench::fmt(row.shed_ota),
               bench::fmt(row.preempted), bench::fmt(row.backpressured),
               bench::fmt(row.peak_unsafe), bench::fmt(row.max_unsafe_ms, 1),
               bench::fmt(row.p50_ms, 1), bench::fmt(row.p95_ms, 1),
               bench::fmt(row.recoveries), bench::fmt(row.host_ms, 0),
               row.invariants_ok ? "PASS" : "FAIL"});
  }

  std::printf(
      "\n-- outage A/B (1k sessions, 3 s backend crash over the wave) --\n");
  const OutageRow resilient = run_outage(/*resilient=*/true);
  const OutageRow stranded = run_outage(/*resilient=*/false);
  bench::Table outage_table({"arm", "peak_unsafe", "max_unsafe_ms", "fb_cache",
                             "fb_local", "fb_none", "breaker_opens",
                             "timeouts", "recoveries", "invariants"});
  for (const OutageRow* row : {&resilient, &stranded}) {
    outage_table.row(
        {row->arm, bench::fmt(row->peak_unsafe),
         bench::fmt(row->max_unsafe_ms, 1), bench::fmt(row->fallback_cache),
         bench::fmt(row->fallback_local), bench::fmt(row->fallback_none),
         bench::fmt(row->breaker_opens), bench::fmt(row->client_timeouts),
         bench::fmt(row->recoveries), row->invariants_ok ? "PASS" : "FAIL"});
  }

  const bool deterministic = determinism_gate();
  std::printf("\nsweep determinism (serial vs 3 threads): %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  // --- E22 ---
  std::printf(
      "\n-- E22 scaling (stampede + outage; batched + wheel + SoA; %s) --\n",
      ci ? "ci ladder: 10k/100k" : "full ladder: 10k/100k/1M");
  std::vector<std::size_t> tiers = {10'000, 100'000};
  if (!ci) tiers.push_back(1'000'000);
  std::vector<ScaleRow> scale;
  for (const std::size_t sessions : tiers) {
    scale.push_back(run_scale_tier(sessions));
  }
  bench::Table scale_table({"sessions", "host_ms", "sessions_per_s",
                            "peak_rss_mb", "requests", "synth_runs",
                            "dequeues", "mean_batch", "p50_ms", "p95_ms",
                            "max_unsafe_ms", "invariants"});
  for (const ScaleRow& row : scale) {
    scale_table.row(
        {bench::fmt(row.sessions), bench::fmt(row.host_ms, 0),
         bench::fmt(row.sessions_per_sec, 0),
         bench::fmt(static_cast<double>(row.peak_rss_kb) / 1024.0, 1),
         bench::fmt(row.requests), bench::fmt(row.synthesis_runs),
         bench::fmt(row.dequeues), bench::fmt(row.mean_batch, 1),
         bench::fmt(row.p50_ms, 1), bench::fmt(row.p95_ms, 1),
         bench::fmt(row.max_unsafe_ms, 1),
         row.invariants_ok ? "PASS" : "FAIL"});
  }

  const bool wheel_ok = wheel_vs_heap_gate();
  std::printf("wheel-vs-heap fingerprint (10k sessions): %s\n",
              wheel_ok ? "bit-identical" : "MISMATCH");

  const BatchingGate batch_gate = batching_gate(100'000);
  std::printf(
      "batched vs serial dequeues (100k, served %llu vs %llu): "
      "%llu vs %llu (%.1fx) %s\n",
      static_cast<unsigned long long>(batch_gate.batched_served),
      static_cast<unsigned long long>(batch_gate.serial_served),
      static_cast<unsigned long long>(batch_gate.batched_dequeues),
      static_cast<unsigned long long>(batch_gate.serial_dequeues),
      batch_gate.ratio, batch_gate.ok ? "PASS" : "FAIL");

  const RegionDrill drill = two_region_drill(100'000);
  std::printf(
      "two-region outage drill (100k): failovers=%llu region1_synth=%llu "
      "stranded=%zu %s\n",
      static_cast<unsigned long long>(drill.failovers),
      static_cast<unsigned long long>(drill.region1_synthesis),
      drill.unsafe_now, drill.ok ? "PASS" : "FAIL");

  bool ok = deterministic && wheel_ok && batch_gate.ok && drill.ok;
  for (const StampedeRow& row : stampede) ok = ok && row.invariants_ok;
  for (const ScaleRow& row : scale) ok = ok && row.invariants_ok;
  // The resilient arm carries the headline; the ablation arm must actually
  // exhibit the stranding the fallback ladder exists to prevent.
  ok = ok && resilient.invariants_ok;
  const bool ablation_shows_stranding =
      stranded.fallback_none > 0 &&
      stranded.max_unsafe_ms > resilient.max_unsafe_ms * 2.0;
  ok = ok && ablation_shows_stranding;
  if (!resilient.invariants_ok) {
    std::fprintf(stderr, "resilient arm FAILED:\n%s\n",
                 resilient.verdict.c_str());
  }
  if (!ablation_shows_stranding) {
    std::fprintf(stderr,
                 "ablation arm did not strand (fb_none=%llu, "
                 "max_unsafe %.1f ms vs %.1f ms)\n",
                 static_cast<unsigned long long>(stranded.fallback_none),
                 stranded.max_unsafe_ms, resilient.max_unsafe_ms);
  }
  // CI regression floor: 100k must stay within 5x of the 10k per-session
  // cost (throughput floor at 20% of the small-tier baseline).
  if (ci && scale.size() >= 2) {
    const double floor = scale[0].sessions_per_sec * 0.2;
    if (scale[1].sessions_per_sec < floor) {
      std::fprintf(stderr,
                   "sessions/sec regression: 100k at %.0f < floor %.0f "
                   "(10k baseline %.0f)\n",
                   scale[1].sessions_per_sec, floor,
                   scale[0].sessions_per_sec);
      ok = false;
    }
  }

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E22_fleet_scaling\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"stampede\": [\n");
  for (std::size_t i = 0; i < stampede.size(); ++i) {
    const StampedeRow& row = stampede[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"sessions\": %zu,\n", row.sessions);
    std::fprintf(f, "      \"synthesis_runs\": %llu,\n",
                 static_cast<unsigned long long>(row.synthesis_runs));
    std::fprintf(f, "      \"cache_hit_rate\": %.4f,\n", row.cache_hit_rate);
    std::fprintf(f, "      \"shed_ota\": %llu,\n",
                 static_cast<unsigned long long>(row.shed_ota));
    std::fprintf(f, "      \"shed_resync\": %llu,\n",
                 static_cast<unsigned long long>(row.shed_resync));
    std::fprintf(f, "      \"shed_recovery\": %llu,\n",
                 static_cast<unsigned long long>(row.shed_recovery));
    std::fprintf(f, "      \"preempted\": %llu,\n",
                 static_cast<unsigned long long>(row.preempted));
    std::fprintf(f, "      \"backpressured\": %llu,\n",
                 static_cast<unsigned long long>(row.backpressured));
    std::fprintf(f, "      \"peak_unsafe\": %zu,\n", row.peak_unsafe);
    std::fprintf(f, "      \"max_unsafe_ms\": %.2f,\n", row.max_unsafe_ms);
    std::fprintf(f, "      \"recovery_p50_ms\": %.2f,\n", row.p50_ms);
    std::fprintf(f, "      \"recovery_p95_ms\": %.2f,\n", row.p95_ms);
    std::fprintf(f, "      \"recoveries_completed\": %llu,\n",
                 static_cast<unsigned long long>(row.recoveries));
    std::fprintf(f, "      \"host_ms\": %.1f,\n", row.host_ms);
    std::fprintf(f, "      \"invariants_pass\": %s\n",
                 row.invariants_ok ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < stampede.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"outage\": [\n");
  const OutageRow* rows[] = {&resilient, &stranded};
  for (std::size_t i = 0; i < 2; ++i) {
    const OutageRow& row = *rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"arm\": \"%s\",\n", row.arm);
    std::fprintf(f, "      \"peak_unsafe\": %zu,\n", row.peak_unsafe);
    std::fprintf(f, "      \"max_unsafe_ms\": %.2f,\n", row.max_unsafe_ms);
    std::fprintf(f, "      \"fallback_cache\": %llu,\n",
                 static_cast<unsigned long long>(row.fallback_cache));
    std::fprintf(f, "      \"fallback_local\": %llu,\n",
                 static_cast<unsigned long long>(row.fallback_local));
    std::fprintf(f, "      \"fallback_none\": %llu,\n",
                 static_cast<unsigned long long>(row.fallback_none));
    std::fprintf(f, "      \"breaker_opens\": %llu,\n",
                 static_cast<unsigned long long>(row.breaker_opens));
    std::fprintf(f, "      \"client_timeouts\": %llu,\n",
                 static_cast<unsigned long long>(row.client_timeouts));
    std::fprintf(f, "      \"recoveries_completed\": %llu,\n",
                 static_cast<unsigned long long>(row.recoveries));
    std::fprintf(f, "      \"invariants_pass\": %s\n",
                 row.invariants_ok ? "true" : "false");
    std::fprintf(f, "    }%s\n", i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const ScaleRow& row = scale[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"sessions\": %zu,\n", row.sessions);
    std::fprintf(f, "      \"host_ms\": %.1f,\n", row.host_ms);
    std::fprintf(f, "      \"sessions_per_sec\": %.0f,\n",
                 row.sessions_per_sec);
    std::fprintf(f, "      \"peak_rss_kb\": %zu,\n", row.peak_rss_kb);
    std::fprintf(f, "      \"requests_total\": %llu,\n",
                 static_cast<unsigned long long>(row.requests));
    std::fprintf(f, "      \"synthesis_runs\": %llu,\n",
                 static_cast<unsigned long long>(row.synthesis_runs));
    std::fprintf(f, "      \"dequeues\": %llu,\n",
                 static_cast<unsigned long long>(row.dequeues));
    std::fprintf(f, "      \"coalesced\": %llu,\n",
                 static_cast<unsigned long long>(row.coalesced));
    std::fprintf(f, "      \"mean_batch\": %.1f,\n", row.mean_batch);
    std::fprintf(f, "      \"batch_size_histogram\": [");
    for (std::size_t b = 0; b < row.batch_hist.size(); ++b) {
      std::fprintf(f, "%s%llu", b ? ", " : "",
                   static_cast<unsigned long long>(row.batch_hist[b]));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "      \"recovery_p50_ms\": %.2f,\n", row.p50_ms);
    std::fprintf(f, "      \"recovery_p95_ms\": %.2f,\n", row.p95_ms);
    std::fprintf(f, "      \"max_unsafe_ms\": %.2f,\n", row.max_unsafe_ms);
    std::fprintf(f, "      \"recoveries_completed\": %llu,\n",
                 static_cast<unsigned long long>(row.recoveries));
    std::fprintf(f, "      \"invariants_pass\": %s\n",
                 row.invariants_ok ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < scale.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"wheel_matches_heap\": %s,\n",
               wheel_ok ? "true" : "false");
  std::fprintf(f, "  \"batching_gate\": {\n");
  std::fprintf(f, "    \"sessions\": 100000,\n");
  std::fprintf(f, "    \"batched_dequeues\": %llu,\n",
               static_cast<unsigned long long>(batch_gate.batched_dequeues));
  std::fprintf(f, "    \"serial_dequeues\": %llu,\n",
               static_cast<unsigned long long>(batch_gate.serial_dequeues));
  std::fprintf(f, "    \"batched_served\": %llu,\n",
               static_cast<unsigned long long>(batch_gate.batched_served));
  std::fprintf(f, "    \"serial_served\": %llu,\n",
               static_cast<unsigned long long>(batch_gate.serial_served));
  std::fprintf(f, "    \"dequeue_reduction\": %.2f,\n", batch_gate.ratio);
  std::fprintf(f, "    \"pass\": %s\n", batch_gate.ok ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"two_region_drill\": {\n");
  std::fprintf(f, "    \"sessions\": 100000,\n");
  std::fprintf(f, "    \"failovers\": %llu,\n",
               static_cast<unsigned long long>(drill.failovers));
  std::fprintf(f, "    \"region1_synthesis_runs\": %llu,\n",
               static_cast<unsigned long long>(drill.region1_synthesis));
  std::fprintf(f, "    \"fallback_none\": %llu,\n",
               static_cast<unsigned long long>(drill.fallback_none));
  std::fprintf(f, "    \"stranded\": %zu,\n", drill.unsafe_now);
  std::fprintf(f, "    \"max_unsafe_ms\": %.2f,\n", drill.max_unsafe_ms);
  std::fprintf(f, "    \"recoveries_completed\": %llu,\n",
               static_cast<unsigned long long>(drill.recoveries));
  std::fprintf(f, "    \"pass\": %s\n", drill.ok ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"sweep_deterministic\": %s\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fleet.json\n");
  return ok ? 0 : 1;
}
