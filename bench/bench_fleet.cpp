// E21 -- Sec. 2.3 + 4.1: fleet-scale backend robustness.
//
// Three measurements against one FleetScheduleService:
//
//   stampede      1k..10k vehicle sessions on a staggered OTA cadence; at
//                 t = 5 s a fault wave hits half the fleet inside 500 ms
//                 and every victim requests recovery synthesis at once.
//                 Reports what the admission/shedding/backpressure stack
//                 and the cross-vehicle memo cache turn that stampede
//                 into: real synthesis runs, cache hit rate, shed/
//                 backpressure counts, recovery latency percentiles, and
//                 the longest any vehicle stayed unsafe.
//
//   outage A/B    1k sessions, a full backend crash spanning the fault
//                 wave. Arm "resilient" has the vehicle-side ladder
//                 (stale artifact cache, ECU-local admission); arm
//                 "stranded" ablates it. The headline invariant -- no
//                 vehicle stuck unsafe, bounded recovery after heal -- is
//                 machine-checked per arm and the bench exits non-zero if
//                 the resilient arm ever violates it (or the ablation
//                 fails to demonstrate the stranding it exists to show).
//
//   determinism   the same fleet scenarios swept serially and on 3
//                 threads must merge to bit-identical fingerprints
//                 (exit non-zero otherwise).
//
// Machine-readable results go to BENCH_fleet.json following the
// BENCH_fault.json pattern so successive PRs accumulate a trajectory.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "backend/fleet.hpp"
#include "bench/common.hpp"
#include "fault/invariants.hpp"
#include "sim/sweep.hpp"

using namespace dynaplat;

namespace {

constexpr sim::Duration kUnsafeBound = 2 * sim::kSecond;
constexpr sim::Duration kRecoveryBound = 4 * sim::kSecond;

struct StampedeRow {
  std::size_t sessions = 0;
  std::uint64_t synthesis_runs = 0;
  double cache_hit_rate = 0.0;
  std::uint64_t shed_ota = 0;
  std::uint64_t shed_resync = 0;
  std::uint64_t shed_recovery = 0;
  std::uint64_t preempted = 0;
  std::uint64_t backpressured = 0;
  std::size_t peak_unsafe = 0;
  double max_unsafe_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t recoveries = 0;
  double host_ms = 0.0;
  bool invariants_ok = false;
};

struct OutageRow {
  const char* arm = "";
  std::size_t peak_unsafe = 0;
  double max_unsafe_ms = 0.0;
  std::uint64_t fallback_cache = 0;
  std::uint64_t fallback_local = 0;
  std::uint64_t fallback_none = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t recoveries = 0;
  bool invariants_ok = false;
  std::string verdict;
};

backend::FleetConfig fleet_config(std::size_t sessions, std::uint64_t seed) {
  backend::FleetConfig config;
  config.sessions = sessions;
  config.topology_classes = 32;
  config.seed = seed;
  config.horizon = 20 * sim::kSecond;
  config.ota_period = 2 * sim::kSecond;
  config.wave_at = 5 * sim::kSecond;
  config.wave_fraction = 0.5;
  config.wave_stagger = 500 * sim::kMillisecond;
  config.recovery_retry = 250 * sim::kMillisecond;
  return config;
}

void latency_percentiles(const backend::FleetDriver& driver, double* p50,
                         double* p95) {
  std::vector<double> ms;
  ms.reserve(driver.latencies().size());
  for (const sim::Duration d : driver.latencies()) {
    ms.push_back(static_cast<double>(d) / 1e6);
  }
  const bench::Percentiles p = bench::percentiles(std::move(ms));
  *p50 = p.p50;
  *p95 = p.p95;
}

StampedeRow run_stampede(std::size_t sessions) {
  StampedeRow row;
  row.sessions = sessions;
  bench::Stopwatch watch;
  sim::Simulator simulator;
  // Backend provisioned at ~2x the fleet's routine load (each worker
  // serves 2k cached req/s): the wave burst (~3x nominal, amplified by
  // client retries) transiently saturates it, so the stampede has to be
  // *managed* (criticality shedding, backpressure, recovery reserve), not
  // merely absorbed by a deep queue.
  backend::ServiceConfig service_config;
  service_config.queue_capacity = 64;
  service_config.backpressure_watermark = 48;
  service_config.recovery_reserve = 16;
  service_config.workers = std::max<std::size_t>(sessions / 2'000, 1);
  service_config.min_service_time = 500 * sim::kMicrosecond;
  backend::FleetScheduleService service(simulator, service_config);
  backend::FleetDriver driver(simulator, service, fleet_config(sessions, 1));
  driver.run();
  row.host_ms = watch.elapsed_ms();

  row.synthesis_runs = service.synthesis_runs();
  const std::uint64_t lookups = service.cache_hits() + service.cache_misses();
  row.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(service.cache_hits()) /
                         static_cast<double>(lookups);
  row.shed_ota = service.shed(backend::Criticality::kOta);
  row.shed_resync = service.shed(backend::Criticality::kResync);
  row.shed_recovery = service.shed(backend::Criticality::kRecovery);
  row.preempted = service.preempted();
  row.backpressured = service.backpressured();
  row.peak_unsafe = driver.peak_unsafe();
  row.max_unsafe_ms =
      static_cast<double>(driver.max_unsafe_duration()) / 1e6;
  row.recoveries = driver.recoveries_completed();
  latency_percentiles(driver, &row.p50_ms, &row.p95_ms);

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, kUnsafeBound);
  checker.require_fleet_recovery_bounded(driver, kRecoveryBound);
  const fault::InvariantReport report = checker.run();
  row.invariants_ok = report.passed;
  if (!report.passed) {
    std::fprintf(stderr, "stampede %zu sessions:\n%s\n", sessions,
                 report.summary().c_str());
  }
  return row;
}

OutageRow run_outage(bool resilient) {
  OutageRow row;
  row.arm = resilient ? "resilient" : "stranded";
  sim::Simulator simulator;
  backend::FleetScheduleService service(simulator);
  backend::FleetConfig config = fleet_config(1'000, 2);
  // The backend dies just before the wave and stays dead well past it:
  // every recovery request of the stampede meets a dead backend first.
  config.outage_at = 4'500 * sim::kMillisecond;
  config.outage_duration = 3 * sim::kSecond;
  if (!resilient) {
    config.client.local_fallback = false;
    config.client.artifact_cache_capacity = 0;
  }
  backend::FleetDriver driver(simulator, service, config);
  driver.run();

  row.peak_unsafe = driver.peak_unsafe();
  row.max_unsafe_ms =
      static_cast<double>(driver.max_unsafe_duration()) / 1e6;
  row.fallback_cache = driver.fallback_cache();
  row.fallback_local = driver.fallback_local();
  row.fallback_none = driver.fallback_none();
  row.breaker_opens = driver.client_breaker_opens();
  row.client_timeouts = driver.client_timeouts();
  row.recoveries = driver.recoveries_completed();

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, kUnsafeBound);
  checker.require_fleet_recovery_bounded(driver, kRecoveryBound);
  const fault::InvariantReport report = checker.run();
  row.invariants_ok = report.passed;
  row.verdict = report.summary();
  return row;
}

bool determinism_gate() {
  const auto scenario = [](sim::ScenarioRun& run) {
    backend::FleetConfig config = fleet_config(64, 300 + run.index);
    config.horizon = 6 * sim::kSecond;
    config.wave_at = 2 * sim::kSecond;
    config.outage_at = 1'800 * sim::kMillisecond;
    config.outage_duration = 1 * sim::kSecond;
    config.outage_is_partition = (run.index % 2) == 1;
    backend::FleetScheduleService service(run.simulator);
    backend::FleetDriver driver(run.simulator, service, config);
    driver.run();
    return driver.fingerprint();
  };
  std::vector<std::uint64_t> serial;
  std::vector<std::uint64_t> parallel;
  {
    sim::ScenarioSweep sweep({.seed = 42, .threads = 0});
    serial = sweep.run<std::uint64_t>(4, scenario);
  }
  {
    sim::ScenarioSweep sweep({.seed = 42, .threads = 3});
    parallel = sweep.run<std::uint64_t>(4, scenario);
  }
  return sim::ScenarioSweep::merge_fingerprints(serial) ==
         sim::ScenarioSweep::merge_fingerprints(parallel);
}

}  // namespace

int main() {
  bench::banner("E21", "fleet backend robustness (Sec. 2.3 + 4.1)");

  std::vector<StampedeRow> stampede;
  for (std::size_t sessions : {std::size_t{1'000}, std::size_t{4'000},
                               std::size_t{10'000}}) {
    stampede.push_back(run_stampede(sessions));
  }
  bench::Table table({"sessions", "synth_runs", "cache_hit", "shed_ota",
                      "preempted", "backpressured", "peak_unsafe",
                      "max_unsafe_ms", "p50_ms", "p95_ms", "recoveries",
                      "host_ms", "invariants"});
  for (const StampedeRow& row : stampede) {
    table.row({bench::fmt(row.sessions), bench::fmt(row.synthesis_runs),
               bench::fmt(row.cache_hit_rate, 4), bench::fmt(row.shed_ota),
               bench::fmt(row.preempted), bench::fmt(row.backpressured),
               bench::fmt(row.peak_unsafe), bench::fmt(row.max_unsafe_ms, 1),
               bench::fmt(row.p50_ms, 1), bench::fmt(row.p95_ms, 1),
               bench::fmt(row.recoveries), bench::fmt(row.host_ms, 0),
               row.invariants_ok ? "PASS" : "FAIL"});
  }

  std::printf("\n-- outage A/B (1k sessions, 3 s backend crash over the "
              "wave) --\n");
  const OutageRow resilient = run_outage(/*resilient=*/true);
  const OutageRow stranded = run_outage(/*resilient=*/false);
  bench::Table outage_table({"arm", "peak_unsafe", "max_unsafe_ms",
                             "fb_cache", "fb_local", "fb_none",
                             "breaker_opens", "timeouts", "recoveries",
                             "invariants"});
  for (const OutageRow* row : {&resilient, &stranded}) {
    outage_table.row(
        {row->arm, bench::fmt(row->peak_unsafe),
         bench::fmt(row->max_unsafe_ms, 1), bench::fmt(row->fallback_cache),
         bench::fmt(row->fallback_local), bench::fmt(row->fallback_none),
         bench::fmt(row->breaker_opens), bench::fmt(row->client_timeouts),
         bench::fmt(row->recoveries), row->invariants_ok ? "PASS" : "FAIL"});
  }

  const bool deterministic = determinism_gate();
  std::printf("\nsweep determinism (serial vs 3 threads): %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  bool ok = deterministic;
  for (const StampedeRow& row : stampede) ok = ok && row.invariants_ok;
  // The resilient arm carries the headline; the ablation arm must actually
  // exhibit the stranding the fallback ladder exists to prevent.
  ok = ok && resilient.invariants_ok;
  const bool ablation_shows_stranding =
      stranded.fallback_none > 0 &&
      stranded.max_unsafe_ms > resilient.max_unsafe_ms * 2.0;
  ok = ok && ablation_shows_stranding;
  if (!resilient.invariants_ok) {
    std::fprintf(stderr, "resilient arm FAILED:\n%s\n",
                 resilient.verdict.c_str());
  }
  if (!ablation_shows_stranding) {
    std::fprintf(stderr,
                 "ablation arm did not strand (fb_none=%llu, "
                 "max_unsafe %.1f ms vs %.1f ms)\n",
                 static_cast<unsigned long long>(stranded.fallback_none),
                 stranded.max_unsafe_ms, resilient.max_unsafe_ms);
  }

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E21_fleet_backend_robustness\",\n");
  std::fprintf(f, "  \"stampede\": [\n");
  for (std::size_t i = 0; i < stampede.size(); ++i) {
    const StampedeRow& row = stampede[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"sessions\": %zu,\n", row.sessions);
    std::fprintf(f, "      \"synthesis_runs\": %llu,\n",
                 static_cast<unsigned long long>(row.synthesis_runs));
    std::fprintf(f, "      \"cache_hit_rate\": %.4f,\n", row.cache_hit_rate);
    std::fprintf(f, "      \"shed_ota\": %llu,\n",
                 static_cast<unsigned long long>(row.shed_ota));
    std::fprintf(f, "      \"shed_resync\": %llu,\n",
                 static_cast<unsigned long long>(row.shed_resync));
    std::fprintf(f, "      \"shed_recovery\": %llu,\n",
                 static_cast<unsigned long long>(row.shed_recovery));
    std::fprintf(f, "      \"preempted\": %llu,\n",
                 static_cast<unsigned long long>(row.preempted));
    std::fprintf(f, "      \"backpressured\": %llu,\n",
                 static_cast<unsigned long long>(row.backpressured));
    std::fprintf(f, "      \"peak_unsafe\": %zu,\n", row.peak_unsafe);
    std::fprintf(f, "      \"max_unsafe_ms\": %.2f,\n", row.max_unsafe_ms);
    std::fprintf(f, "      \"recovery_p50_ms\": %.2f,\n", row.p50_ms);
    std::fprintf(f, "      \"recovery_p95_ms\": %.2f,\n", row.p95_ms);
    std::fprintf(f, "      \"recoveries_completed\": %llu,\n",
                 static_cast<unsigned long long>(row.recoveries));
    std::fprintf(f, "      \"host_ms\": %.1f,\n", row.host_ms);
    std::fprintf(f, "      \"invariants_pass\": %s\n",
                 row.invariants_ok ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < stampede.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"outage\": [\n");
  const OutageRow* rows[] = {&resilient, &stranded};
  for (std::size_t i = 0; i < 2; ++i) {
    const OutageRow& row = *rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"arm\": \"%s\",\n", row.arm);
    std::fprintf(f, "      \"peak_unsafe\": %zu,\n", row.peak_unsafe);
    std::fprintf(f, "      \"max_unsafe_ms\": %.2f,\n", row.max_unsafe_ms);
    std::fprintf(f, "      \"fallback_cache\": %llu,\n",
                 static_cast<unsigned long long>(row.fallback_cache));
    std::fprintf(f, "      \"fallback_local\": %llu,\n",
                 static_cast<unsigned long long>(row.fallback_local));
    std::fprintf(f, "      \"fallback_none\": %llu,\n",
                 static_cast<unsigned long long>(row.fallback_none));
    std::fprintf(f, "      \"breaker_opens\": %llu,\n",
                 static_cast<unsigned long long>(row.breaker_opens));
    std::fprintf(f, "      \"client_timeouts\": %llu,\n",
                 static_cast<unsigned long long>(row.client_timeouts));
    std::fprintf(f, "      \"recoveries_completed\": %llu,\n",
                 static_cast<unsigned long long>(row.recoveries));
    std::fprintf(f, "      \"invariants_pass\": %s\n",
                 row.invariants_ok ? "true" : "false");
    std::fprintf(f, "    }%s\n", i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sweep_deterministic\": %s\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fleet.json\n");
  return ok ? 0 : 1;
}
