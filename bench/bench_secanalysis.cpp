// E12 -- Sec. 5.4 [11]: probabilistic architecture security analysis.
//
// Part 1: four canonical E/E topologies with identical component inventory
// are scored (asset risk within a 50-step horizon, expected steps to
// compromise): flat bus, central gateway, domain gateways, zonal + central.
// Part 2: analysis wall time vs architecture size (components).
// Part 3: countermeasure ranking via hardening gain on the gateway arch.
//
// Expected shape: risk strictly drops with segmentation depth; analysis
// cost grows ~linearly in edges * horizon (fast enough to run inside a DSE
// loop); hardening the gateway dominates hardening leaf ECUs.
#include <string>

#include "bench/common.hpp"
#include "security/analyzer.hpp"
#include "sim/random.hpp"

using namespace dynaplat;

namespace {

using security::AttackComponent;
using security::AttackGraph;

AttackGraph with_entries_and_assets() {
  AttackGraph graph;
  graph.add({"telematics", 0.30, true, false});   // 0
  graph.add({"obd", 0.20, true, false});          // 1
  graph.add({"infotainment", 0.25, false, false}); // 2
  graph.add({"adas", 0.08, false, false});        // 3
  graph.add({"body", 0.15, false, false});        // 4
  graph.add({"brake", 0.05, false, true});        // 5
  graph.add({"steer", 0.05, false, true});        // 6
  return graph;
}

AttackGraph flat_bus() {
  AttackGraph graph = with_entries_and_assets();
  // One CAN bus: everything reaches everything.
  for (std::size_t a = 0; a < graph.components.size(); ++a) {
    for (std::size_t b = 0; b < graph.components.size(); ++b) {
      if (a != b) graph.connect(a, b);
    }
  }
  return graph;
}

AttackGraph central_gateway() {
  AttackGraph graph = with_entries_and_assets();
  const auto gw = graph.add({"gateway", 0.05, false, false});
  for (std::size_t i = 0; i < gw; ++i) graph.biconnect(i, gw);
  return graph;
}

AttackGraph domain_gateways() {
  AttackGraph graph = with_entries_and_assets();
  const auto gw = graph.add({"gateway", 0.05, false, false});
  const auto dom_conn = graph.add({"dom_connectivity", 0.06, false, false});
  const auto dom_chassis = graph.add({"dom_chassis", 0.04, false, false});
  // Connectivity domain: telematics, obd, infotainment.
  for (std::size_t i : {0u, 1u, 2u}) graph.biconnect(i, dom_conn);
  // Chassis domain: adas, body, brake, steer.
  for (std::size_t i : {3u, 4u, 5u, 6u}) graph.biconnect(i, dom_chassis);
  graph.biconnect(dom_conn, gw);
  graph.biconnect(dom_chassis, gw);
  return graph;
}

AttackGraph zonal() {
  AttackGraph graph = domain_gateways();
  // Zonal adds per-zone filtering in front of the actuators.
  const auto zone_front = graph.add({"zone_front", 0.03, false, false});
  graph.biconnect(graph.index_of("dom_chassis"), zone_front);
  // Re-route brake/steer exclusively through the zone controller: emulate
  // by hardening their direct exposure.
  graph.components[graph.index_of("brake")].exploitability = 0.02;
  graph.components[graph.index_of("steer")].exploitability = 0.02;
  return graph;
}

AttackGraph random_arch(std::size_t components, sim::Random& rng) {
  AttackGraph graph;
  for (std::size_t i = 0; i < components; ++i) {
    AttackComponent component;
    component.name = "c" + std::to_string(i);
    component.exploitability = rng.uniform(0.02, 0.3);
    component.attacker_entry = i == 0;
    component.asset = i + 1 == components;
    graph.add(component);
  }
  // Sparse random connectivity (3 edges per node) plus a spine.
  for (std::size_t i = 0; i + 1 < components; ++i) graph.connect(i, i + 1);
  for (std::size_t i = 0; i < components * 3; ++i) {
    graph.connect(rng.next_below(components), rng.next_below(components));
  }
  return graph;
}

}  // namespace

int main() {
  security::SecurityAnalyzer analyzer;

  bench::banner("E12a", "architecture security ranking (Sec. 5.4, [11])");
  {
    bench::Table table({"architecture", "asset_risk_50", "asset_risk_200",
                        "expected_steps"});
    struct Arch {
      const char* name;
      AttackGraph graph;
    };
    for (auto& arch :
         {Arch{"flat_bus", flat_bus()},
          Arch{"central_gateway", central_gateway()},
          Arch{"domain_gateways", domain_gateways()},
          Arch{"zonal", zonal()}}) {
      const auto short_horizon = analyzer.analyze(arch.graph, 50);
      const auto long_horizon = analyzer.analyze(arch.graph, 200);
      table.row({arch.name, bench::fmt(short_horizon.asset_risk, 4),
                 bench::fmt(long_horizon.asset_risk, 4),
                 bench::fmt(short_horizon.expected_steps_to_asset, 1)});
    }
  }

  std::printf("\n");
  bench::banner("E12b", "analysis cost vs architecture size");
  {
    bench::Table table({"components", "edges", "wall_ms_100runs"});
    for (std::size_t n : {5u, 10u, 20u, 50u}) {
      sim::Random rng(n);
      const auto graph = random_arch(n, rng);
      bench::Stopwatch stopwatch;
      for (int i = 0; i < 100; ++i) analyzer.analyze(graph, 50);
      table.row({bench::fmt(n), bench::fmt(graph.edges.size()),
                 bench::fmt(stopwatch.elapsed_ms(), 2)});
    }
  }

  std::printf("\n");
  bench::banner("E12c", "countermeasure ranking (hardening gain, factor 0.2)");
  {
    bench::Table table({"hardened_component", "risk_reduction"});
    const auto graph = central_gateway();
    for (const char* component :
         {"gateway", "telematics", "infotainment", "brake"}) {
      const double gain = analyzer.hardening_gain(
          graph, graph.index_of(component), 0.2, 50);
      table.row({component, bench::fmt(gain, 4)});
    }
  }
  return 0;
}
