// E13 -- clock synchronization quality (supports Sec. 3.2's argument
// against centrally-switched updates and distributed TT tables).
//
// One reference master and one drifting slave on the Ethernet backbone.
// Swept over slave drift and sync period; reported: the slave's residual
// error just before each correction (p95 and max -- the error any
// "switch at time T" coordination actually experiences), and the unsynced
// error after 20 s for contrast.
//
// Expected shape: residual ~= drift * sync_period + path-delay estimation
// error; tightening the period buys accuracy linearly until the fixed
// path-delay misestimate floors it. Unsynced clocks drift off by orders of
// magnitude more than the 20 ms clock error assumed in E3's central-switch
// baseline -- i.e. that baseline is *optimistic* without a sync service.
#include <cstdlib>
#include <memory>

#include "bench/common.hpp"
#include "net/ethernet.hpp"
#include "os/clock.hpp"
#include "platform/clock_sync.hpp"

using namespace dynaplat;

namespace {

struct Outcome {
  double residual_p95_us = 0.0;
  double residual_max_us = 0.0;
  double final_error_us = 0.0;
  std::uint64_t corrections = 0;
};

Outcome run(double drift_ppm, sim::Duration sync_period, bool synced) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig master_config{.name = "master", .cpu = {.mips = 1000}};
  os::EcuConfig slave_config{.name = "slave", .cpu = {.mips = 1000}};
  os::Ecu master_ecu(simulator, master_config, &backbone, 1);
  os::Ecu slave_ecu(simulator, slave_config, &backbone, 2);
  master_ecu.processor().start();
  slave_ecu.processor().start();
  middleware::ServiceRuntime master_rt(master_ecu);
  middleware::ServiceRuntime slave_rt(slave_ecu);

  os::LocalClock master_clock(simulator, 0.0);
  os::LocalClock slave_clock(simulator, drift_ppm, sim::kMillisecond);

  std::unique_ptr<platform::ClockSyncService> master_sync, slave_sync;
  if (synced) {
    platform::ClockSyncConfig config;
    config.sync_period = sync_period;
    master_sync = std::make_unique<platform::ClockSyncService>(
        master_rt, master_clock, true, config);
    slave_sync = std::make_unique<platform::ClockSyncService>(
        slave_rt, slave_clock, false, config);
  }
  simulator.run_until(sim::seconds(20));

  Outcome outcome;
  outcome.final_error_us =
      static_cast<double>(std::llabs(slave_clock.true_error())) / 1000.0;
  if (slave_sync) {
    outcome.residual_p95_us = slave_sync->residual_error().percentile(95) /
                              1000.0;
    outcome.residual_max_us = slave_sync->residual_error().max() / 1000.0;
    outcome.corrections = slave_sync->corrections();
  }
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E13", "clock sync residual vs drift & period (Sec. 3.2)");
  bench::Table table({"drift_ppm", "sync_period_ms", "residual_p95_us",
                      "residual_max_us", "final_error_us", "corrections"});
  for (double drift : {20.0, 100.0, 500.0}) {
    {
      const Outcome unsynced = run(drift, 0, false);
      table.row({bench::fmt(drift, 0), "unsynced", "-", "-",
                 bench::fmt(unsynced.final_error_us, 1), "0"});
    }
    for (sim::Duration period :
         {10 * sim::kMillisecond, 100 * sim::kMillisecond,
          1000 * sim::kMillisecond}) {
      const Outcome outcome = run(drift, period, true);
      table.row({bench::fmt(drift, 0), bench::fmt(sim::to_ms(period), 0),
                 bench::fmt(outcome.residual_p95_us, 1),
                 bench::fmt(outcome.residual_max_us, 1),
                 bench::fmt(outcome.final_error_us, 1),
                 bench::fmt(outcome.corrections)});
    }
  }
  return 0;
}
