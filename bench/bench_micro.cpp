// Micro-benchmarks (google-benchmark) for the hot primitives underneath the
// experiment harnesses: event-queue throughput, SHA-256/HMAC, bignum modpow,
// RTA, TT synthesis and the security analyzer. These quantify host-side
// simulation capacity (how many vehicle-seconds per wall-second the fleet
// backend can validate, Sec. 2.3/3.1).
#include <benchmark/benchmark.h>

#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "dse/schedulability.hpp"
#include "security/analyzer.hpp"
#include "sim/simulator.hpp"

using namespace dynaplat;

static void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int count = 0;
    simulator.schedule_every(1, 1, [&] {
      if (++count >= state.range(0)) simulator.stop();
    });
    simulator.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(10000);

static void BM_Sha256(benchmark::State& state) {
  const std::vector<std::uint8_t> data(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

static void BM_HmacSha256(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x11);
  const std::vector<std::uint8_t> data(256, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

static void BM_RsaVerify512(benchmark::State& state) {
  sim::Random rng(5);
  const auto kp = crypto::RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg(128, 0x5A);
  const auto sig = crypto::rsa_sign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify512);

static void BM_ResponseTimeAnalysis(benchmark::State& state) {
  std::vector<dse::AnalysisTask> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    dse::AnalysisTask task;
    task.name = "t";
    task.period = (i + 2) * sim::kMillisecond;
    task.deadline = task.period;
    task.wcet = 20'000 * (i % 5 + 1);
    task.priority = i;
    task.deterministic = true;
    tasks.push_back(task);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse::response_time_analysis(tasks));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(10)->Arg(50);

static void BM_TtSynthesis(benchmark::State& state) {
  std::vector<dse::AnalysisTask> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    dse::AnalysisTask task;
    task.name = "t";
    task.period = (1 << (i % 3)) * 10 * sim::kMillisecond;
    task.deadline = task.period;
    task.wcet = 200'000;
    task.priority = i;
    task.deterministic = true;
    tasks.push_back(task);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse::synthesize_tt_table(tasks));
  }
}
BENCHMARK(BM_TtSynthesis)->Arg(5)->Arg(20);

static void BM_SecurityAnalysis(benchmark::State& state) {
  security::AttackGraph graph;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    graph.add({"c" + std::to_string(i), 0.1, i == 0, i + 1 == n});
  }
  for (std::size_t i = 0; i + 1 < n; ++i) graph.biconnect(i, i + 1);
  security::SecurityAnalyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(graph, 50));
  }
}
BENCHMARK(BM_SecurityAnalysis)->Arg(10)->Arg(50);

BENCHMARK_MAIN();
