// E16 -- event-kernel throughput: slab/indexed-heap vs the legacy kernel.
//
// The legacy kernel (priority_queue + two unordered_maps + cancellation
// tombstones, exactly as shipped before the rewrite) is reproduced inline
// below as the baseline. Three measurements:
//
//   A. mixed workload -- periodic tickers, one-shot cascades, and the
//      reliable-transport retry pattern (schedule an ack timer, cancel it
//      on the next tick). This is the shape every subsystem puts on the
//      kernel; events/sec is the headline number.
//   B. one-shot churn -- random-time self-rescheduling events, the pure
//      queue-discipline cost with no cancellations.
//   C. cancel growth -- schedule+cancel with no time advance; the legacy
//      queue accumulates one tombstone per cancel, the indexed heap and
//      slab stay flat.
//
// Each timed section repeats kReps times; throughput reports best-of-N and
// the per-rep p50/p95/max spread (bench::percentiles), so BENCH_sim.json is
// noise-resistant. Both kernels run the bit-identical workload; event
// counts are cross-checked to prove the comparison is apples-to-apples.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

using namespace dynaplat;

namespace {

// --- Legacy kernel (pre-rewrite), verbatim semantics -------------------------

class LegacySimulator {
 public:
  struct Id {
    std::uint64_t value = 0;
    bool valid() const { return value != 0; }
  };

  sim::Time now() const { return now_; }

  Id schedule_at(sim::Time at, std::function<void()> fn) {
    return enqueue(at, std::move(fn));
  }
  Id schedule_in(sim::Duration delay, std::function<void()> fn) {
    return enqueue(now_ + delay, std::move(fn));
  }
  Id schedule_every(sim::Time first, sim::Duration period,
                    std::function<void()> fn) {
    const Id id = enqueue(first, std::move(fn));
    recurrences_.emplace(id.value, period);
    return id;
  }

  bool cancel(Id id) {
    recurrences_.erase(id.value);
    return callbacks_.erase(id.value) > 0;
  }

  bool step() {
    while (!queue_.empty()) {
      const QueueEntry entry = queue_.top();
      if (callbacks_.find(entry.id) == callbacks_.end()) {
        queue_.pop();  // tombstone
        continue;
      }
      queue_.pop();
      now_ = entry.at;
      fire(entry.id);
      return true;
    }
    return false;
  }

  void run_until(sim::Time until) {
    for (;;) {
      while (!queue_.empty() &&
             callbacks_.find(queue_.top().id) == callbacks_.end()) {
        queue_.pop();
      }
      if (queue_.empty() || queue_.top().at > until) break;
      step();
    }
    if (now_ < until) now_ = until;
  }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending() const { return callbacks_.size(); }
  std::size_t queue_entries() const { return queue_.size(); }

 private:
  struct QueueEntry {
    sim::Time at;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const QueueEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  Id enqueue(sim::Time at, std::function<void()> fn) {
    const std::uint64_t id = next_id_++;
    queue_.push(QueueEntry{at, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return Id{id};
  }

  void fire(std::uint64_t id) {
    auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return;
    ++events_executed_;
    auto rec = recurrences_.find(id);
    if (rec != recurrences_.end()) {
      queue_.push(QueueEntry{now_ + rec->second, next_seq_++, id});
      auto fn = it->second;  // copy: the callback may cancel itself
      fn();
    } else {
      auto fn = std::move(it->second);
      callbacks_.erase(it);
      fn();
    }
  }

  sim::Time now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
  std::unordered_map<std::uint64_t, sim::Duration> recurrences_;
};

// --- Workload A: mixed periodic / cascade / retry-cancel ----------------------

struct MixedCounts {
  std::uint64_t events = 0;
  std::uint64_t acked = 0;
  std::uint64_t expired = 0;
};

template <typename Sim>
MixedCounts mixed_workload(sim::Time horizon) {
  using Id = decltype(std::declval<Sim&>().schedule_at(sim::Time{0}, [] {}));
  Sim s;
  constexpr int kTimers = 64;
  constexpr sim::Duration kTick = 100 * sim::kMicrosecond;
  constexpr sim::Duration kRetry = 10 * sim::kMillisecond;
  std::vector<Id> retry(kTimers);
  MixedCounts counts;

  for (int t = 0; t < kTimers; ++t) {
    // ~40-byte capture: a middleware-ish callback (object pointer plus a few
    // ids). Inline for the slab kernel, a heap allocation per scheduled
    // retry timer for std::function.
    s.schedule_every(
        kTick + t * sim::kMicrosecond, kTick,
        [&s, &retry, &counts, t] {
          if (retry[t].valid() && s.cancel(retry[t])) ++counts.acked;
          const std::uint64_t seq0 = counts.acked;
          const std::uint64_t seq1 = seq0 ^ 0x9E3779B97F4A7C15ull;
          retry[t] = s.schedule_in(kRetry, [&counts, seq0, seq1] {
            ++counts.expired;
            (void)seq0;
            (void)seq1;
          });
        });
  }
  // One-shot cascades: a dispatcher fanning out short-lived events, the
  // publish/deliver shape of the network and middleware layers.
  s.schedule_every(50 * sim::kMicrosecond, 50 * sim::kMicrosecond,
                   [&s, &counts] {
                     for (int k = 0; k < 4; ++k) {
                       s.schedule_in(10 * sim::kMicrosecond + k,
                                     [&counts] { (void)counts; });
                     }
                   });
  s.run_until(horizon);
  counts.events = s.events_executed();
  return counts;
}

// --- Workload B: one-shot churn ----------------------------------------------

template <typename Sim>
std::uint64_t churn_workload(std::uint64_t total_events) {
  Sim s;
  sim::Random rng(0xC0FFEE);
  std::uint64_t fired = 0;
  // 4096 always-pending events; each firing reschedules a successor at a
  // random future time until the budget is spent.
  struct Spawner {
    Sim* s;
    sim::Random* rng;
    std::uint64_t* fired;
    std::uint64_t budget;
    void operator()() const {
      ++*fired;
      if (*fired >= budget) return;
      const sim::Duration delay =
          1 + static_cast<sim::Duration>(rng->next_below(1000));
      s->schedule_in(delay, *this);
    }
  };
  for (int i = 0; i < 4096; ++i) {
    const sim::Duration delay =
        1 + static_cast<sim::Duration>(rng.next_below(1000));
    s.schedule_in(delay, Spawner{&s, &rng, &fired, total_events});
  }
  while (fired < total_events && s.step()) {
  }
  return fired;
}

// --- Measurement harness ------------------------------------------------------

struct Throughput {
  std::uint64_t events = 0;
  double best_ms = 0.0;
  double events_per_sec = 0.0;
  bench::Percentiles rep_ms;
};

template <typename Fn>
Throughput measure(int reps, std::uint64_t events, Fn&& fn) {
  Throughput result;
  result.events = events;
  const std::vector<double> samples = bench::repeat_ms(reps, fn);
  result.rep_ms = bench::percentiles(samples);
  result.best_ms = samples[0];
  for (double s : samples) result.best_ms = std::min(result.best_ms, s);
  result.events_per_sec =
      static_cast<double>(events) / (result.best_ms / 1000.0);
  return result;
}

void print_row(bench::Table& table, const char* workload, const char* kernel,
               const Throughput& t) {
  table.row({workload, kernel, bench::fmt(t.events),
             bench::fmt(t.best_ms, 2), bench::fmt(t.events_per_sec / 1e6, 3),
             bench::fmt(t.rep_ms.p50, 2), bench::fmt(t.rep_ms.p95, 2),
             bench::fmt(t.rep_ms.max, 2)});
}

void json_throughput(std::FILE* f, const char* name, const Throughput& t,
                     const char* indent) {
  std::fprintf(f, "%s\"%s\": {\n", indent, name);
  std::fprintf(f, "%s  \"events\": %llu,\n", indent,
               static_cast<unsigned long long>(t.events));
  std::fprintf(f, "%s  \"best_ms\": %.3f,\n", indent, t.best_ms);
  std::fprintf(f, "%s  \"events_per_sec\": %.0f,\n", indent, t.events_per_sec);
  std::fprintf(f, "%s  \"rep_ms_p50\": %.3f,\n", indent, t.rep_ms.p50);
  std::fprintf(f, "%s  \"rep_ms_p95\": %.3f,\n", indent, t.rep_ms.p95);
  std::fprintf(f, "%s  \"rep_ms_max\": %.3f\n", indent, t.rep_ms.max);
  std::fprintf(f, "%s}", indent);
}

}  // namespace

int main() {
  bench::banner("E16", "event-kernel throughput (slab/indexed-heap vs legacy)");

  constexpr int kReps = 5;
  constexpr sim::Time kMixedHorizon = 2 * sim::kSecond;
  constexpr std::uint64_t kChurnEvents = 1'000'000;

  // Cross-check: both kernels must execute the identical event schedule.
  const MixedCounts legacy_counts = mixed_workload<LegacySimulator>(kMixedHorizon);
  const MixedCounts slab_counts = mixed_workload<sim::Simulator>(kMixedHorizon);
  if (legacy_counts.events != slab_counts.events ||
      legacy_counts.acked != slab_counts.acked ||
      legacy_counts.expired != slab_counts.expired) {
    std::fprintf(stderr,
                 "kernel parity violation: legacy %llu/%llu/%llu vs slab "
                 "%llu/%llu/%llu\n",
                 static_cast<unsigned long long>(legacy_counts.events),
                 static_cast<unsigned long long>(legacy_counts.acked),
                 static_cast<unsigned long long>(legacy_counts.expired),
                 static_cast<unsigned long long>(slab_counts.events),
                 static_cast<unsigned long long>(slab_counts.acked),
                 static_cast<unsigned long long>(slab_counts.expired));
    return 1;
  }

  bench::Table table({"workload", "kernel", "events", "best_ms", "Mev_per_s",
                      "p50_ms", "p95_ms", "max_ms"});

  const Throughput mixed_legacy =
      measure(kReps, legacy_counts.events,
              [] { mixed_workload<LegacySimulator>(kMixedHorizon); });
  print_row(table, "mixed", "legacy", mixed_legacy);
  const Throughput mixed_slab =
      measure(kReps, slab_counts.events,
              [] { mixed_workload<sim::Simulator>(kMixedHorizon); });
  print_row(table, "mixed", "slab", mixed_slab);

  const std::uint64_t churn_check = churn_workload<sim::Simulator>(100000);
  if (churn_check != 100000) {
    std::fprintf(stderr, "churn parity violation: %llu events\n",
                 static_cast<unsigned long long>(churn_check));
    return 1;
  }
  const Throughput churn_legacy =
      measure(kReps, kChurnEvents,
              [] { churn_workload<LegacySimulator>(kChurnEvents); });
  print_row(table, "oneshot-churn", "legacy", churn_legacy);
  const Throughput churn_slab =
      measure(kReps, kChurnEvents,
              [] { churn_workload<sim::Simulator>(kChurnEvents); });
  print_row(table, "oneshot-churn", "slab", churn_slab);

  const double mixed_speedup =
      mixed_slab.events_per_sec / mixed_legacy.events_per_sec;
  const double churn_speedup =
      churn_slab.events_per_sec / churn_legacy.events_per_sec;
  std::printf("\nmixed speedup: %.2fx   oneshot-churn speedup: %.2fx\n",
              mixed_speedup, churn_speedup);

  // --- C: cancel-heavy memory behaviour ---------------------------------------
  constexpr int kCancelRounds = 200000;
  LegacySimulator legacy_cancel;
  for (int i = 0; i < kCancelRounds; ++i) {
    legacy_cancel.cancel(legacy_cancel.schedule_in(sim::kSecond, [] {}));
  }
  sim::Simulator slab_cancel;
  for (int i = 0; i < kCancelRounds; ++i) {
    slab_cancel.cancel(slab_cancel.schedule_in(sim::kSecond, [] {}));
  }
  std::printf(
      "\ncancel growth after %d schedule+cancel rounds (no time advance):\n"
      "  legacy: %zu queue entries (tombstones), %zu pending\n"
      "  slab:   %zu slab nodes,                 %zu pending\n",
      kCancelRounds, legacy_cancel.queue_entries(), legacy_cancel.pending(),
      slab_cancel.slab_capacity(), slab_cancel.pending());

  std::FILE* f = std::fopen("BENCH_sim.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sim.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E16_event_kernel\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"reps\": %d,\n", kReps);
  std::fprintf(f, "  \"mixed\": {\n");
  json_throughput(f, "legacy", mixed_legacy, "    ");
  std::fprintf(f, ",\n");
  json_throughput(f, "slab", mixed_slab, "    ");
  std::fprintf(f, ",\n    \"speedup\": %.2f\n  },\n", mixed_speedup);
  std::fprintf(f, "  \"oneshot_churn\": {\n");
  json_throughput(f, "legacy", churn_legacy, "    ");
  std::fprintf(f, ",\n");
  json_throughput(f, "slab", churn_slab, "    ");
  std::fprintf(f, ",\n    \"speedup\": %.2f\n  },\n", churn_speedup);
  std::fprintf(f, "  \"cancel_growth\": {\n");
  std::fprintf(f, "    \"rounds\": %d,\n", kCancelRounds);
  std::fprintf(f, "    \"legacy_queue_entries\": %zu,\n",
               legacy_cancel.queue_entries());
  std::fprintf(f, "    \"slab_nodes\": %zu,\n", slab_cancel.slab_capacity());
  std::fprintf(f, "    \"legacy_pending\": %zu,\n", legacy_cancel.pending());
  std::fprintf(f, "    \"slab_pending\": %zu\n", slab_cancel.pending());
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_sim.json\n");
  return 0;
}
