// E11 -- Sec. 2.4 + [17]: X-in-the-loop test levels.
//
// The same cruise-control function is validated at MiL and SiL level.
// Reported per level and scenario: control quality (settling time,
// overshoot, steady-state error), simulation cost (events executed, host
// wall time) and the real-time factor (simulated seconds per host second --
// "using the full potential of computing power of a PC").
//
// Expected shape: MiL and SiL agree on control quality within a few percent
// (SiL adds one control period of transport delay); SiL costs 1-2 orders of
// magnitude more events; both run far faster than real time, so a nightly
// farm can run thousands of scenario-hours -- the paper's argument for
// front-loading tests to MiL/SiL.
#include "bench/common.hpp"
#include "xil/testbench.hpp"

using namespace dynaplat;

namespace {

void report(bench::Table& table, const char* level, const char* scenario,
            const xil::CruiseResult& result, double wall_ms,
            sim::Duration sim_duration) {
  const double rt_factor =
      sim::to_s(sim_duration) / (wall_ms / 1000.0);
  table.row(
      {level, scenario,
       result.settling_time ? bench::fmt(sim::to_s(*result.settling_time), 2)
                            : "never",
       bench::fmt(result.overshoot_mps, 2),
       bench::fmt(result.steady_state_error_mps, 3),
       bench::fmt(result.deadline_misses), bench::fmt(result.events_executed),
       bench::fmt(wall_ms, 1), bench::fmt(rt_factor, 0)});
}

}  // namespace

int main() {
  bench::banner("E11", "MiL vs SiL testing (Sec. 2.4, [17])");
  bench::Table table({"level", "scenario", "settle_s", "overshoot_mps",
                      "sse_mps", "misses", "events", "wall_ms",
                      "xRealtime"});

  struct Case {
    const char* name;
    xil::CruiseScenario scenario;
  };
  std::vector<Case> cases;
  {
    Case nominal{"nominal", {}};
    nominal.scenario.duration = sim::seconds(60);
    cases.push_back(nominal);

    Case loaded{"bg_load", {}};
    loaded.scenario.duration = sim::seconds(60);
    loaded.scenario.background_load_instructions = 1'000'000;
    cases.push_back(loaded);

    Case lossy{"5pct_loss", {}};
    lossy.scenario.duration = sim::seconds(60);
    lossy.scenario.frame_loss_rate = 0.05;
    cases.push_back(lossy);
  }

  for (const Case& c : cases) {
    {
      bench::Stopwatch stopwatch;
      const auto result = xil::run_mil(c.scenario);
      report(table, "MiL", c.name, result, stopwatch.elapsed_ms(),
             c.scenario.duration);
    }
    {
      bench::Stopwatch stopwatch;
      const auto result = xil::run_sil(c.scenario);
      report(table, "SiL", c.name, result, stopwatch.elapsed_ms(),
             c.scenario.duration);
    }
  }
  return 0;
}
