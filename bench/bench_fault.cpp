// E13 -- Sec. 2.4/3.3: robustness under injected faults.
//
// Part A sweeps uniform frame loss against the middleware transport in
// reliable (CRC32 + ack/retry) and fire-and-forget mode: delivered
// fraction, retry count and wire overhead (frames per message, 3 data
// fragments being the loss-free minimum).
//
// Part B sweeps the fault-campaign seed against a triple-ECU platform with
// a replicated DA app under supervision: events injected, failovers, worst
// failover outage, and whether the fail-operational invariants held. Every
// row is reproducible from its seed alone.
//
// Machine-readable results go to BENCH_fault.json following the
// BENCH_monitor.json pattern so successive PRs accumulate a trajectory.
//
// `bench_fault --sweep [--threads=N] [--seeds=K]` runs a K-seed campaign
// sweep three ways -- serial, thread-pooled (sim::ScenarioSweep) and
// process-sharded (fault::ProcessSweep with fork()ed workers pulling from a
// work-stealing queue) -- checks that every per-seed fingerprint and the
// index-ordered merge is bit-identical across all drivers, reports
// per-shard job counts and busy times, and writes BENCH_fault_sweep.json.
//
// `bench_fault --fuzz` is experiment E20: an equal-budget A/B of the
// coverage-guided chaos fuzzer (fault::FuzzScheduler) against a blind seed
// sweep from the same base config, a shard-count determinism check (the
// same search at 0/2/3 worker processes must produce bit-identical
// journals and coverage), and a delta-debugging minimization demo that
// shrinks a known-failing campaign to a replayable JSON repro and verifies
// the repro trips the same invariant. Results go to BENCH_fuzz.json; the
// journal and repro land in fuzz_coverage.json / fuzz_repro.json. Exit
// status enforces the E20 gates, so CI can run this as a fuzz smoke job.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "concurrency/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/fuzz.hpp"
#include "fault/invariants.hpp"
#include "fault/minimize.hpp"
#include "fault/shard.hpp"
#include "middleware/transport.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/json.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"
#include "sim/sweep.hpp"

using namespace dynaplat;

namespace {

// --- Part A: transport under uniform loss -------------------------------------

struct TransportOutcome {
  double loss = 0.0;
  bool reliable = false;
  int sent = 0;
  int delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t delivery_failures = 0;
  std::uint64_t frames_on_wire = 0;
  double frames_per_message = 0.0;
};

TransportOutcome run_transport(double loss, bool reliable) {
  sim::Simulator simulator;
  middleware::TransportConfig config;
  config.reliable = reliable;
  config.ack_timeout = 10 * sim::kMillisecond;
  config.max_retries = 5;
  config.max_backoff = 80 * sim::kMillisecond;

  // Deterministic Bernoulli loss on every frame (data and acks alike);
  // the seed folds in the sweep point so rows are independent but stable.
  std::mt19937_64 rng(0xFA177ull ^ static_cast<std::uint64_t>(loss * 1000) ^
                      (reliable ? 0x1000000ull : 0ull));
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  TransportOutcome outcome;
  outcome.loss = loss;
  outcome.reliable = reliable;

  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
  auto wire = [&](middleware::Transport* peer, net::NodeId src) {
    return [&, peer, src](net::Frame frame) {
      frame.src = src;
      ++outcome.frames_on_wire;
      if (coin(rng) < loss) return;  // lost in flight
      simulator.schedule_in(10 * sim::kMicrosecond,
                            [peer, frame] { peer->on_frame(frame); });
    };
  };
  a = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) { wire(b.get(), 1)(std::move(frame)); }, 16,
      &simulator, config);
  b = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) { wire(a.get(), 2)(std::move(frame)); }, 16,
      &simulator, config);
  b->set_handler([&outcome](net::NodeId, std::vector<std::uint8_t>) {
    ++outcome.delivered;
  });

  constexpr int kMessages = 200;
  const std::vector<std::uint8_t> message(25, 0x5A);  // 3 fragments
  for (int i = 0; i < kMessages; ++i) {
    simulator.schedule_at(static_cast<sim::Time>(i) * 5 * sim::kMillisecond,
                          [&a, &message, i] {
                            a->send(2, net::kPriorityLowest,
                                    static_cast<std::uint16_t>(i % 7),
                                    message);
                          });
  }
  simulator.run_until(sim::seconds(3));

  outcome.sent = kMessages;
  outcome.retries = a->retries();
  outcome.delivery_failures = a->delivery_failures();
  outcome.frames_per_message =
      static_cast<double>(outcome.frames_on_wire) / kMessages;
  return outcome;
}

// --- Part B: campaign seed sweep ----------------------------------------------

// The Aux app rides along as a low-priority NDA overrun target: its 6M-cycle
// task (6 ms on ECU C) stays under the 20 ms deadline at typical seeded
// overrun draws, and only crosses it past a 3.3x factor -- the top of the
// seeded range, reachable sooner with fuzzer-scaled magnitudes. A blind
// sweep of the base config (overrun family disabled) can reach none of it.
const char* kSystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
interface Cmd paradigm=event payload=8 period=10ms
app Pilot class=deterministic asil=D memory=4M replicas=2
  task drive period=10ms wcet=100K priority=1
  provides Cmd
app Aux class=nondeterministic asil=QM memory=4M
  task churn period=20ms wcet=6M priority=8
deploy Pilot -> A | B | C
deploy Aux -> C
)";

class PilotApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++step_;
    if (!active() || context_.def->provides.empty()) return;
    context_.comm->publish(context_.service_id(context_.def->provides[0]), 1,
                           {static_cast<std::uint8_t>(step_)},
                           context_.priority_of(context_.def->provides[0]));
  }
  std::vector<std::uint8_t> serialize_state() override {
    return {static_cast<std::uint8_t>(step_)};
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    if (!state.empty()) step_ = state[0];
  }

 private:
  std::uint64_t step_ = 0;
};

class AuxApp final : public platform::Application {};

struct CampaignOutcome {
  std::uint64_t seed = 0;
  std::size_t injected = 0;
  std::size_t failovers = 0;
  double worst_outage_ms = 0.0;
  bool invariants_passed = false;
  std::string report;
  std::uint64_t fingerprint = 0;
  double wall_ms = 0.0;
};

/// The shared E13/E20 rig: triple ECU, replicated Pilot under supervision,
/// Aux overrun target on C, degradation manager engaged. Owns everything a
/// scenario needs so both the seed sweep and the fuzzer run through the
/// exact same platform.
struct Rig {
  sim::Simulator& simulator;
  sim::Trace trace;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::unique_ptr<platform::DynamicPlatform> dp;
  std::unique_ptr<platform::RedundancyManager> redundancy;
  std::unique_ptr<platform::DegradationManager> degradation;
  bool ok = false;

  explicit Rig(sim::Simulator& sim) : simulator(sim) {
    parsed = model::parse_system(kSystem);
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    net::NodeId next_node = 1;
    for (const auto& ecu_def : parsed.model.ecus()) {
      os::EcuConfig config;
      config.name = ecu_def.name;
      config.cpu.mips = ecu_def.mips;
      config.memory_bytes = ecu_def.memory_bytes;
      ecus.push_back(std::make_unique<os::Ecu>(
          simulator, config, backbone.get(), next_node++, &trace));
    }
    platform::NodeConfig node_config;
    node_config.middleware.transport.reliable = true;
    dp = std::make_unique<platform::DynamicPlatform>(simulator, parsed.model,
                                                     parsed.deployment);
    for (auto& ecu : ecus) dp->add_node(*ecu, node_config);
    dp->register_app("Pilot", [] { return std::make_unique<PilotApp>(); });
    dp->register_app("Aux", [] { return std::make_unique<AuxApp>(); });
    if (!dp->install_all()) return;
    redundancy = std::make_unique<platform::RedundancyManager>(*dp, "Pilot");
    redundancy->engage();
    degradation = std::make_unique<platform::DegradationManager>(*dp);
    degradation->engage();
    ok = true;
  }

  /// Classic E13 target set (every ECU + backbone, no overrun target):
  /// identical to the pre-fuzzer bench, so Part B and the sweep keep their
  /// historical per-seed fingerprints.
  void add_classic_targets(fault::FaultCampaign& campaign) {
    campaign.set_trace(&trace);
    for (auto& ecu : ecus) campaign.add_ecu(*ecu);
    campaign.add_medium(*backbone);
  }

  /// Fuzz target set: Pilot replica ECUs for crash/memory, the backbone
  /// for network faults, Aux for overruns. ECU C stays out of the crash
  /// pool so the raw overrun task handle can never dangle across a restart
  /// (same rule as examples/chaos_campaign.cpp).
  void add_targets(fault::FaultCampaign& campaign) {
    campaign.set_trace(&trace);
    campaign.add_ecu(*ecus[0]);
    campaign.add_ecu(*ecus[1]);
    campaign.add_medium(*backbone);
    const platform::AppInstance* aux = dp->node("C")->instance("Aux");
    campaign.add_overrun_target("C/churn", ecus[2]->processor(aux->core),
                                aux->tasks[0]);
  }

  /// The invariants every fuzzed configuration must uphold -- deliberately
  /// the *guaranteed* subset (loose 1 s outage bound, no stranded
  /// reassembly, DA deadlines), so a violation is a real platform bug, not
  /// an aggressive-bound artifact. Verdicts land in the trace's coverage
  /// map; no bundle is dumped (empty recorder path).
  fault::InvariantReport check_fuzz_invariants(std::uint64_t seed) {
    fault::InvariantChecker checker;
    checker.require_failover_outage_below(*redundancy, 1 * sim::kSecond);
    checker.require_no_da_deadline_misses(*dp);
    checker.require_no_stranded_reassembly(*dp);
    fault::FlightRecorderConfig recorder;
    recorder.trace = &trace;
    recorder.seed = seed;
    recorder.path.clear();  // coverage verdicts only
    checker.set_flight_recorder(recorder);
    return checker.run();
  }
};

CampaignOutcome run_campaign(sim::Simulator& simulator, std::uint64_t seed) {
  bench::Stopwatch watch;
  Rig rig(simulator);
  if (!rig.ok) return {};

  fault::CampaignConfig campaign_config;
  campaign_config.seed = seed;
  campaign_config.start = 200 * sim::kMillisecond;
  campaign_config.horizon = 3 * sim::kSecond;
  campaign_config.episodes = 6;
  campaign_config.weight_overrun = 0.0;  // no overrun target registered
  fault::FaultCampaign campaign(simulator, campaign_config);
  rig.add_classic_targets(campaign);
  campaign.generate();
  campaign.arm();

  simulator.run_until(4 * sim::kSecond);

  fault::InvariantChecker checker;
  checker.require_failover_outage_below(*rig.redundancy,
                                        300 * sim::kMillisecond);
  checker.require_no_da_deadline_misses(*rig.dp);
  // Detection limit: 3 missed heartbeats at 10 ms plus one supervisor tick.
  checker.require_faults_detected(campaign, *rig.dp, rig.redundancy.get(),
                                  40 * sim::kMillisecond);
  checker.require_no_stranded_reassembly(*rig.dp);

  CampaignOutcome outcome;
  outcome.seed = seed;
  outcome.injected = campaign.injected().size();
  outcome.failovers = rig.redundancy->failovers().size();
  for (const platform::FailoverEvent& event : rig.redundancy->failovers()) {
    outcome.worst_outage_ms =
        std::max(outcome.worst_outage_ms, sim::to_ms(event.outage));
  }
  const fault::InvariantReport report = checker.run();
  outcome.invariants_passed = report.passed;
  outcome.report = report.summary();
  outcome.fingerprint = campaign.fingerprint();
  outcome.wall_ms = watch.elapsed_ms();
  return outcome;
}

// --- Sweep mode: serial vs thread pool vs process shards ----------------------

struct SweepRun {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  std::vector<CampaignOutcome> outcomes;
  std::uint64_t merged = 0;
};

SweepRun run_seed_sweep(std::size_t threads, std::size_t seeds) {
  SweepRun result;
  result.threads = threads;
  sim::ScenarioSweep sweep({.seed = 1, .threads = threads});
  bench::Stopwatch watch;
  result.outcomes = sweep.run<CampaignOutcome>(
      seeds, [](sim::ScenarioRun& run) {
        return run_campaign(run.simulator, run.index + 1);
      });
  result.wall_ms = watch.elapsed_ms();
  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve(result.outcomes.size());
  for (const CampaignOutcome& o : result.outcomes) {
    fingerprints.push_back(o.fingerprint);
  }
  result.merged = sim::ScenarioSweep::merge_fingerprints(fingerprints);
  return result;
}

struct ProcessRun {
  std::size_t shards = 0;  ///< 0 = inline serial baseline
  double wall_ms = 0.0;
  std::vector<std::uint64_t> fingerprints;
  std::size_t passed = 0;
  std::uint64_t merged = 0;
  fault::ShardStats stats;
};

ProcessRun run_process_sweep(std::size_t shards, std::size_t seeds) {
  ProcessRun result;
  result.shards = shards;
  fault::ProcessSweep sweep({shards});
  bench::Stopwatch watch;
  const std::vector<std::string> blobs =
      sweep.run(seeds, [](std::size_t index) {
        sim::Simulator simulator;
        const CampaignOutcome outcome = run_campaign(simulator, index + 1);
        char buf[96];
        std::snprintf(buf, sizeof buf, "{\"fp\":\"%016llx\",\"passed\":%s}",
                      static_cast<unsigned long long>(outcome.fingerprint),
                      outcome.invariants_passed ? "true" : "false");
        return std::string(buf);
      });
  result.wall_ms = watch.elapsed_ms();
  result.stats = sweep.stats();
  for (const std::string& blob : blobs) {
    obs::json::Value doc;
    if (!obs::json::parse(blob, &doc)) continue;
    result.fingerprints.push_back(
        std::strtoull(doc.at("fp").string.c_str(), nullptr, 16));
    if (doc.at("passed").boolean) ++result.passed;
  }
  result.merged = sim::ScenarioSweep::merge_fingerprints(result.fingerprints);
  return result;
}

int sweep_main(std::size_t seeds, std::size_t threads) {
  bench::banner("E13s", "parallel campaign sweep: threads vs process shards");
  std::printf("seeds=%zu  parallel arm=%zu workers\n\n", seeds, threads);

  const SweepRun serial = run_seed_sweep(1, seeds);
  const SweepRun pooled = run_seed_sweep(threads, seeds);
  const ProcessRun forked_serial = run_process_sweep(0, seeds);
  const ProcessRun forked = run_process_sweep(threads, seeds);

  bool identical = serial.merged == pooled.merged &&
                   serial.merged == forked_serial.merged &&
                   serial.merged == forked.merged &&
                   serial.outcomes.size() == pooled.outcomes.size() &&
                   forked.fingerprints.size() == serial.outcomes.size();
  for (std::size_t i = 0; identical && i < serial.outcomes.size(); ++i) {
    identical = serial.outcomes[i].fingerprint ==
                    pooled.outcomes[i].fingerprint &&
                serial.outcomes[i].fingerprint == forked.fingerprints[i] &&
                serial.outcomes[i].invariants_passed ==
                    pooled.outcomes[i].invariants_passed;
  }

  std::size_t passed = 0;
  for (const CampaignOutcome& o : serial.outcomes) {
    if (o.invariants_passed) ++passed;
  }

  bench::Table table({"driver", "workers", "wall_ms", "merged_fingerprint"});
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(serial.merged));
  table.row({"threads", "1", bench::fmt(serial.wall_ms, 1), fp});
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(pooled.merged));
  table.row({"threads", bench::fmt(threads), bench::fmt(pooled.wall_ms, 1),
             fp});
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(forked_serial.merged));
  table.row({"fork-inline", "1", bench::fmt(forked_serial.wall_ms, 1), fp});
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(forked.merged));
  table.row({"fork", bench::fmt(forked.shards), bench::fmt(forked.wall_ms, 1),
             fp});

  std::printf("\nper-shard distribution (fork, %zu workers):\n",
              forked.stats.jobs.size());
  for (std::size_t w = 0; w < forked.stats.jobs.size(); ++w) {
    std::printf("  shard %zu: %zu jobs, %.1f ms busy\n", w,
                forked.stats.jobs[w], forked.stats.busy_ms[w]);
  }
  const std::size_t hw = concurrency::ThreadPool::hardware_threads();
  const double thread_speedup = serial.wall_ms / pooled.wall_ms;
  const double fork_speedup = forked_serial.wall_ms / forked.wall_ms;
  std::printf("\nfingerprints %s across all four drivers; invariants %zu/%zu; "
              "thread speedup %.2fx, fork speedup %.2fx (host has %zu "
              "hardware threads)\n",
              identical ? "bit-identical" : "DIVERGED", passed,
              serial.outcomes.size(), thread_speedup, fork_speedup, hw);
  if (!identical) return 1;

  std::FILE* f = std::fopen("BENCH_fault_sweep.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault_sweep.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E13s_parallel_seed_sweep\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"seeds\": %zu,\n", seeds);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  std::fprintf(f, "  \"parallel_workers\": %zu,\n", threads);
  // An A/B on a box with fewer hardware threads than the parallel arm
  // measures pool/fork overhead, not speedup -- flag it so readers don't
  // quote the number as a parallelism result.
  std::fprintf(f, "  \"speedup_meaningful\": %s,\n",
               hw >= threads ? "true" : "false");
  std::fprintf(f, "  \"bit_identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "  \"invariants_passed\": %zu,\n", passed);
  std::fprintf(f, "  \"merged_fingerprint\": \"%016llx\",\n",
               static_cast<unsigned long long>(serial.merged));
  std::fprintf(f, "  \"wall_ms_1_thread\": %.2f,\n", serial.wall_ms);
  std::fprintf(f, "  \"wall_ms_%zu_threads\": %.2f,\n", threads,
               pooled.wall_ms);
  std::fprintf(f, "  \"thread_speedup\": %.2f,\n", thread_speedup);
  std::fprintf(f, "  \"wall_ms_fork_inline\": %.2f,\n", forked_serial.wall_ms);
  std::fprintf(f, "  \"wall_ms_fork_%zu_shards\": %.2f,\n", forked.shards,
               forked.wall_ms);
  std::fprintf(f, "  \"fork_speedup\": %.2f,\n", fork_speedup);
  std::fprintf(f, "  \"per_shard\": [");
  for (std::size_t w = 0; w < forked.stats.jobs.size(); ++w) {
    std::fprintf(f, "%s\n    {\"shard\": %zu, \"jobs\": %zu, "
                 "\"busy_ms\": %.2f}", w == 0 ? "" : ",", w,
                 forked.stats.jobs[w], forked.stats.busy_ms[w]);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fault_sweep.json\n");
  return 0;
}

// --- Fuzz mode (E20): coverage-guided search vs blind sweep -------------------

/// One fuzz scenario: fresh rig, campaign from `config`, loose invariants,
/// coverage snapshot out. A pure function of the config -- the scheduler's
/// replay/shard contract.
fault::FuzzRunResult run_fuzz_scenario(const fault::CampaignConfig& config) {
  sim::Simulator simulator;
  Rig rig(simulator);
  fault::FuzzRunResult result;
  if (!rig.ok) return result;
  fault::FaultCampaign campaign(simulator, config);
  rig.add_targets(campaign);
  campaign.generate();
  campaign.arm();
  simulator.run_until(config.start + config.horizon + 1 * sim::kSecond);
  const fault::InvariantReport report =
      rig.check_fuzz_invariants(config.seed);
  result.invariants_passed = report.passed;
  for (const fault::InvariantResult& r : report.results) {
    if (!r.passed) {
      result.violated = r.name;
      result.detail = r.detail;
      break;
    }
  }
  result.fingerprint = campaign.fingerprint();
  result.coverage.merge_from(rig.trace.coverage());
  return result;
}

fault::CampaignConfig fuzz_base_config() {
  fault::CampaignConfig base;
  base.seed = 1;
  base.start = 200 * sim::kMillisecond;
  base.horizon = 3 * sim::kSecond;
  base.episodes = 6;
  base.weight_overrun = 0.0;  // the fuzzer has to *discover* this family
  return base;
}

/// Scripted-plan probe for the minimizer: same rig, explicit plan, tight
/// outage bound (any failover violates), horizon as absolute end time.
fault::ProbeVerdict run_scripted_probe(const std::vector<fault::FaultEvent>& plan,
                                       sim::Duration horizon) {
  sim::Simulator simulator;
  Rig rig(simulator);
  fault::ProbeVerdict verdict;
  if (!rig.ok) return verdict;
  fault::FaultCampaign campaign(simulator, fault::CampaignConfig{});
  rig.add_targets(campaign);
  for (const fault::FaultEvent& event : plan) campaign.schedule(event);
  campaign.arm();
  simulator.run_until(horizon);
  fault::InvariantChecker checker;
  checker.require_failover_outage_below(*rig.redundancy,
                                        1 * sim::kMillisecond);
  const fault::InvariantReport report = checker.run();
  for (const fault::InvariantResult& r : report.results) {
    if (!r.passed) {
      verdict.violated = true;
      verdict.invariant = r.name;
      verdict.detail = r.detail;
      break;
    }
  }
  return verdict;
}

int fuzz_main() {
  bench::banner("E20", "coverage-guided chaos fuzzing vs blind seed sweep");

  fault::FuzzConfig fuzz_config;
  fuzz_config.master_seed = 1;
  fuzz_config.base = fuzz_base_config();
  fuzz_config.rounds = 12;
  fuzz_config.batch = 8;
  const std::size_t budget =
      1 + static_cast<std::size_t>(fuzz_config.rounds * fuzz_config.batch);

  // --- Blind arm: same base, same budget, only the seed varies ---------------
  bench::Stopwatch blind_watch;
  obs::CoverageMap blind_cov;
  std::vector<std::size_t> blind_timeline;
  std::size_t blind_violations = 0;
  for (std::size_t i = 0; i < budget; ++i) {
    fault::CampaignConfig config = fuzz_config.base;
    config.seed = i + 1;
    const fault::FuzzRunResult r = run_fuzz_scenario(config);
    if (!r.invariants_passed) ++blind_violations;
    blind_cov.merge_from(r.coverage);
    blind_timeline.push_back(blind_cov.unique_hit_count());
  }
  const double blind_ms = blind_watch.elapsed_ms();

  // --- Fuzz arm: coverage-guided search, same budget -------------------------
  bench::Stopwatch fuzz_watch;
  fault::FuzzScheduler fuzzer(fuzz_config, run_fuzz_scenario);
  fuzzer.run();
  const double fuzz_ms = fuzz_watch.elapsed_ms();

  const std::size_t blind_keys = blind_cov.unique_hit_count();
  const std::size_t fuzz_keys = fuzzer.unique_keys();
  std::printf("budget: %zu scenarios per arm\n", budget);
  std::printf("blind sweep:  %zu unique coverage keys, %zu violations, "
              "%.1f ms\n", blind_keys, blind_violations, blind_ms);
  std::printf("fuzz search:  %zu unique coverage keys, %zu failures, "
              "%.1f ms, corpus %zu\n", fuzz_keys, fuzzer.failures().size(),
              fuzz_ms, fuzzer.corpus().size());
  const bool more_coverage = fuzz_keys > blind_keys;
  std::printf("coverage gate: fuzz %s blind (+%zd keys)\n",
              more_coverage ? ">" : "<=",
              static_cast<std::ptrdiff_t>(fuzz_keys) -
                  static_cast<std::ptrdiff_t>(blind_keys));

  // --- Shard determinism: same search at 2 and 3 worker processes ------------
  bool shards_identical = true;
  const std::string serial_journal = fuzzer.journal_json();
  const std::uint64_t serial_cov_fp = fuzzer.coverage().fingerprint();
  for (const std::size_t shards : {std::size_t{2}, std::size_t{3}}) {
    fault::FuzzConfig sharded_config = fuzz_config;
    sharded_config.shards = shards;
    fault::FuzzScheduler sharded(sharded_config, run_fuzz_scenario);
    sharded.run();
    const bool same = sharded.journal_json() == serial_journal &&
                      sharded.coverage().fingerprint() == serial_cov_fp;
    std::printf("shards=%zu: journal+coverage %s serial\n", shards,
                same ? "bit-identical to" : "DIVERGED from");
    shards_identical = shards_identical && same;
  }

  // --- Minimization demo: shrink a known-failing campaign --------------------
  // A deliberately tight outage bound (1 ms -- any failover violates) makes
  // the failure guaranteed, so the demo exercises the minimizer machinery
  // end to end without depending on the fuzzer having found a real bug.
  fault::CampaignConfig demo = fuzz_base_config();
  demo.seed = 3;
  demo.episodes = 10;
  std::vector<fault::FaultEvent> demo_plan;
  {
    sim::Simulator simulator;
    Rig rig(simulator);
    fault::FaultCampaign campaign(simulator, demo);
    rig.add_targets(campaign);
    campaign.generate();
    demo_plan = campaign.plan();
  }
  const sim::Duration demo_horizon = demo.start + demo.horizon +
                                     1 * sim::kSecond;
  fault::Minimizer minimizer({}, run_scripted_probe);
  bench::Stopwatch min_watch;
  fault::Repro repro = minimizer.minimize(demo_plan, demo_horizon);
  const double min_ms = min_watch.elapsed_ms();
  repro.seed = demo.seed;
  bool repro_retrips = false;
  if (repro.failing) {
    fault::write_repro_file(repro, "fuzz_repro.json");
    // Round-trip: load the JSON back and replay it -- the repro must trip
    // the *same* invariant from the serialized form alone.
    std::string text = fault::repro_json(repro);
    fault::Repro loaded;
    if (fault::load_repro(text, &loaded)) {
      const fault::ProbeVerdict verdict =
          run_scripted_probe(loaded.plan, loaded.horizon);
      repro_retrips = verdict.violated && verdict.invariant == repro.invariant;
    }
    std::printf("\nminimization demo: %zu events -> %zu, horizon %.2fs -> "
                "%.2fs, %zu probe runs, %.1f ms; repro %s (%s)\n",
                repro.original_events, repro.plan.size(),
                sim::to_s(demo_horizon), sim::to_s(repro.horizon),
                repro.runs_used, min_ms,
                repro_retrips ? "re-trips" : "FAILED to re-trip",
                repro.invariant.c_str());
  } else {
    std::printf("\nminimization demo: campaign did not fail (unexpected)\n");
  }

  // --- Artifacts --------------------------------------------------------------
  std::FILE* journal = std::fopen("fuzz_coverage.json", "w");
  if (journal != nullptr) {
    std::fputs(serial_journal.c_str(), journal);
    std::fclose(journal);
  }

  const std::size_t hw = concurrency::ThreadPool::hardware_threads();
  std::FILE* f = std::fopen("BENCH_fuzz.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fuzz.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E20_coverage_guided_fuzz\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"master_seed\": %llu,\n",
               static_cast<unsigned long long>(fuzz_config.master_seed));
  std::fprintf(f, "  \"budget_scenarios\": %zu,\n", budget);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  std::fprintf(f, "  \"blind\": {\"unique_keys\": %zu, \"violations\": %zu, "
               "\"wall_ms\": %.1f},\n", blind_keys, blind_violations,
               blind_ms);
  std::fprintf(f, "  \"fuzz\": {\"unique_keys\": %zu, \"failures\": %zu, "
               "\"wall_ms\": %.1f, \"corpus\": %zu, \"rounds\": %d, "
               "\"batch\": %d},\n", fuzz_keys, fuzzer.failures().size(),
               fuzz_ms, fuzzer.corpus().size(), fuzzer.rounds_completed(),
               fuzz_config.batch);
  std::fprintf(f, "  \"scenarios_per_sec\": %.1f,\n",
               1000.0 * static_cast<double>(budget) / fuzz_ms);
  std::fprintf(f, "  \"strictly_more_coverage\": %s,\n",
               more_coverage ? "true" : "false");
  std::fprintf(f, "  \"coverage_timeline_blind\": [");
  for (std::size_t i = 0; i < blind_timeline.size(); ++i) {
    std::fprintf(f, "%s%zu", i == 0 ? "" : ", ", blind_timeline[i]);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"coverage_timeline_fuzz\": [");
  for (std::size_t i = 0; i < fuzzer.timeline().size(); ++i) {
    std::fprintf(f, "%s%zu", i == 0 ? "" : ", ", fuzzer.timeline()[i]);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"shard_determinism\": {\"counts\": [0, 2, 3], "
               "\"bit_identical\": %s, \"coverage_fingerprint\": "
               "\"%016llx\"},\n", shards_identical ? "true" : "false",
               static_cast<unsigned long long>(serial_cov_fp));
  std::fprintf(f, "  \"minimization_demo\": {\"failing\": %s, "
               "\"invariant\": \"%s\", \"original_events\": %zu, "
               "\"minimized_events\": %zu, \"original_horizon_ns\": %llu, "
               "\"minimized_horizon_ns\": %llu, \"probe_runs\": %zu, "
               "\"wall_ms\": %.1f, \"repro_file\": \"fuzz_repro.json\", "
               "\"repro_retrips\": %s}\n", repro.failing ? "true" : "false",
               repro.invariant.c_str(), repro.original_events,
               repro.plan.size(),
               static_cast<unsigned long long>(demo_horizon),
               static_cast<unsigned long long>(repro.horizon),
               repro.runs_used, min_ms, repro_retrips ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fuzz.json, fuzz_coverage.json, fuzz_repro.json\n");

  // E20 gates, in CI-smoke order of severity: a fuzz-found invariant
  // violation is a platform bug; the rest are fuzzer regressions.
  if (!fuzzer.failures().empty()) {
    std::fprintf(stderr, "FUZZ GATE: %zu invariant violation(s) found -- "
                 "first: %s (%s)\n", fuzzer.failures().size(),
                 fuzzer.failures()[0].violated.c_str(),
                 fuzzer.failures()[0].detail.c_str());
    return 2;
  }
  if (!more_coverage || !shards_identical || !repro_retrips) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = false;
  bool fuzz = false;
  std::size_t seeds = 32;
  std::size_t threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--fuzz") == 0) {
      fuzz = true;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seeds = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::strtoull(argv[i] + 10, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_fault [--sweep [--seeds=K] [--threads=N] | "
                   "--fuzz]\n");
      return 1;
    }
  }
  if (seeds == 0 || threads == 0) {
    std::fprintf(stderr, "--seeds and --threads must be positive\n");
    return 1;
  }
  if (fuzz) return fuzz_main();
  if (sweep) return sweep_main(seeds, threads);
  bench::banner("E13", "fault campaigns & reliable transport (Sec. 2.4/3.3)");

  std::printf("\n-- transport under uniform frame loss --\n");
  bench::Table loss_table({"loss_pct", "mode", "delivered", "retries",
                           "delivery_failures", "frames_per_msg"});
  std::vector<TransportOutcome> transport_samples;
  for (double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    for (bool reliable : {false, true}) {
      const TransportOutcome outcome = run_transport(loss, reliable);
      loss_table.row({bench::fmt(loss * 100, 0),
                      reliable ? "reliable" : "best-effort",
                      bench::fmt(outcome.delivered) + "/" +
                          bench::fmt(outcome.sent),
                      bench::fmt(outcome.retries),
                      bench::fmt(outcome.delivery_failures),
                      bench::fmt(outcome.frames_per_message, 2)});
      transport_samples.push_back(outcome);
    }
  }

  std::printf("\n-- campaign seed sweep (replicated DA app, 6 episodes) --\n");
  bench::Table seed_table({"seed", "injected", "failovers", "worst_outage_ms",
                           "invariants", "fingerprint", "wall_ms"});
  std::vector<CampaignOutcome> campaign_samples;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Simulator simulator;
    const CampaignOutcome outcome = run_campaign(simulator, seed);
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(outcome.fingerprint));
    seed_table.row({bench::fmt(outcome.seed), bench::fmt(outcome.injected),
                    bench::fmt(outcome.failovers),
                    bench::fmt(outcome.worst_outage_ms, 1),
                    outcome.invariants_passed ? "PASS" : "FAIL", fp,
                    bench::fmt(outcome.wall_ms, 1)});
    if (!outcome.invariants_passed) {
      std::printf("%s\n", outcome.report.c_str());
    }
    campaign_samples.push_back(outcome);
  }

  std::FILE* f = std::fopen("BENCH_fault.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E13_fault_robustness\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"transport_loss_sweep\": [\n");
  for (std::size_t i = 0; i < transport_samples.size(); ++i) {
    const TransportOutcome& s = transport_samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"loss\": %.2f,\n", s.loss);
    std::fprintf(f, "      \"reliable\": %s,\n", s.reliable ? "true" : "false");
    std::fprintf(f, "      \"sent\": %d,\n", s.sent);
    std::fprintf(f, "      \"delivered\": %d,\n", s.delivered);
    std::fprintf(f, "      \"retries\": %llu,\n",
                 static_cast<unsigned long long>(s.retries));
    std::fprintf(f, "      \"delivery_failures\": %llu,\n",
                 static_cast<unsigned long long>(s.delivery_failures));
    std::fprintf(f, "      \"frames_per_message\": %.3f\n",
                 s.frames_per_message);
    std::fprintf(f, "    }%s\n", i + 1 < transport_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"campaign_seed_sweep\": [\n");
  for (std::size_t i = 0; i < campaign_samples.size(); ++i) {
    const CampaignOutcome& s = campaign_samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"seed\": %llu,\n",
                 static_cast<unsigned long long>(s.seed));
    std::fprintf(f, "      \"events_injected\": %zu,\n", s.injected);
    std::fprintf(f, "      \"failovers\": %zu,\n", s.failovers);
    std::fprintf(f, "      \"worst_outage_ms\": %.3f,\n", s.worst_outage_ms);
    std::fprintf(f, "      \"invariants_passed\": %s,\n",
                 s.invariants_passed ? "true" : "false");
    std::fprintf(f, "      \"fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(s.fingerprint));
    std::fprintf(f, "      \"wall_ms\": %.2f\n", s.wall_ms);
    std::fprintf(f, "    }%s\n", i + 1 < campaign_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_fault.json\n");
  return 0;
}
