// E13 -- Sec. 2.4/3.3: robustness under injected faults.
//
// Part A sweeps uniform frame loss against the middleware transport in
// reliable (CRC32 + ack/retry) and fire-and-forget mode: delivered
// fraction, retry count and wire overhead (frames per message, 3 data
// fragments being the loss-free minimum).
//
// Part B sweeps the fault-campaign seed against a triple-ECU platform with
// a replicated DA app under supervision: events injected, failovers, worst
// failover outage, and whether the fail-operational invariants held. Every
// row is reproducible from its seed alone.
//
// Machine-readable results go to BENCH_fault.json following the
// BENCH_monitor.json pattern so successive PRs accumulate a trajectory.
//
// `bench_fault --sweep` instead runs a 32-seed campaign sweep through
// sim::ScenarioSweep at 1 and 8 worker threads, checks that every per-seed
// fingerprint (and the index-ordered merge) is bit-identical across thread
// counts, reports the wall-clock speedup, and writes
// BENCH_fault_sweep.json.
#include <sys/utsname.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "bench/common.hpp"
#include "concurrency/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/invariants.hpp"
#include "middleware/transport.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"
#include "sim/sweep.hpp"

using namespace dynaplat;

namespace {

// --- Part A: transport under uniform loss -------------------------------------

struct TransportOutcome {
  double loss = 0.0;
  bool reliable = false;
  int sent = 0;
  int delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t delivery_failures = 0;
  std::uint64_t frames_on_wire = 0;
  double frames_per_message = 0.0;
};

TransportOutcome run_transport(double loss, bool reliable) {
  sim::Simulator simulator;
  middleware::TransportConfig config;
  config.reliable = reliable;
  config.ack_timeout = 10 * sim::kMillisecond;
  config.max_retries = 5;
  config.max_backoff = 80 * sim::kMillisecond;

  // Deterministic Bernoulli loss on every frame (data and acks alike);
  // the seed folds in the sweep point so rows are independent but stable.
  std::mt19937_64 rng(0xFA177ull ^ static_cast<std::uint64_t>(loss * 1000) ^
                      (reliable ? 0x1000000ull : 0ull));
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  TransportOutcome outcome;
  outcome.loss = loss;
  outcome.reliable = reliable;

  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
  auto wire = [&](middleware::Transport* peer, net::NodeId src) {
    return [&, peer, src](net::Frame frame) {
      frame.src = src;
      ++outcome.frames_on_wire;
      if (coin(rng) < loss) return;  // lost in flight
      simulator.schedule_in(10 * sim::kMicrosecond,
                            [peer, frame] { peer->on_frame(frame); });
    };
  };
  a = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) { wire(b.get(), 1)(std::move(frame)); }, 16,
      &simulator, config);
  b = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) { wire(a.get(), 2)(std::move(frame)); }, 16,
      &simulator, config);
  b->set_handler([&outcome](net::NodeId, std::vector<std::uint8_t>) {
    ++outcome.delivered;
  });

  constexpr int kMessages = 200;
  const std::vector<std::uint8_t> message(25, 0x5A);  // 3 fragments
  for (int i = 0; i < kMessages; ++i) {
    simulator.schedule_at(static_cast<sim::Time>(i) * 5 * sim::kMillisecond,
                          [&a, &message, i] {
                            a->send(2, net::kPriorityLowest,
                                    static_cast<std::uint16_t>(i % 7),
                                    message);
                          });
  }
  simulator.run_until(sim::seconds(3));

  outcome.sent = kMessages;
  outcome.retries = a->retries();
  outcome.delivery_failures = a->delivery_failures();
  outcome.frames_per_message =
      static_cast<double>(outcome.frames_on_wire) / kMessages;
  return outcome;
}

// --- Part B: campaign seed sweep ----------------------------------------------

const char* kSystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
interface Cmd paradigm=event payload=8 period=10ms
app Pilot class=deterministic asil=D memory=4M replicas=2
  task drive period=10ms wcet=100K priority=1
  provides Cmd
deploy Pilot -> A | B | C
)";

class PilotApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++step_;
    if (!active() || context_.def->provides.empty()) return;
    context_.comm->publish(context_.service_id(context_.def->provides[0]), 1,
                           {static_cast<std::uint8_t>(step_)},
                           context_.priority_of(context_.def->provides[0]));
  }
  std::vector<std::uint8_t> serialize_state() override {
    return {static_cast<std::uint8_t>(step_)};
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    if (!state.empty()) step_ = state[0];
  }

 private:
  std::uint64_t step_ = 0;
};

struct CampaignOutcome {
  std::uint64_t seed = 0;
  std::size_t injected = 0;
  std::size_t failovers = 0;
  double worst_outage_ms = 0.0;
  bool invariants_passed = false;
  std::string report;
  std::uint64_t fingerprint = 0;
  double wall_ms = 0.0;
};

CampaignOutcome run_campaign(sim::Simulator& simulator, std::uint64_t seed) {
  bench::Stopwatch watch;
  model::ParsedSystem parsed = model::parse_system(kSystem);
  net::EthernetSwitch backbone(simulator, "eth", net::EthernetConfig{});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId next_node = 1;
  for (const auto& ecu_def : parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.memory_bytes = ecu_def.memory_bytes;
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             next_node++, nullptr));
  }
  platform::NodeConfig node_config;
  node_config.middleware.transport.reliable = true;
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  for (auto& ecu : ecus) dp.add_node(*ecu, node_config);
  dp.register_app("Pilot", [] { return std::make_unique<PilotApp>(); });
  if (!dp.install_all()) return {};

  platform::RedundancyManager redundancy(dp, "Pilot");
  redundancy.engage();

  fault::CampaignConfig campaign_config;
  campaign_config.seed = seed;
  campaign_config.start = 200 * sim::kMillisecond;
  campaign_config.horizon = 3 * sim::kSecond;
  campaign_config.episodes = 6;
  campaign_config.weight_overrun = 0.0;  // no overrun targets registered
  fault::FaultCampaign campaign(simulator, campaign_config);
  for (auto& ecu : ecus) campaign.add_ecu(*ecu);
  campaign.add_medium(backbone);
  campaign.generate();
  campaign.arm();

  simulator.run_until(4 * sim::kSecond);

  fault::InvariantChecker checker;
  checker.require_failover_outage_below(redundancy,
                                        300 * sim::kMillisecond);
  checker.require_no_da_deadline_misses(dp);
  // Detection limit: 3 missed heartbeats at 10 ms plus one supervisor tick.
  checker.require_faults_detected(campaign, dp, &redundancy,
                                  40 * sim::kMillisecond);
  checker.require_no_stranded_reassembly(dp);

  CampaignOutcome outcome;
  outcome.seed = seed;
  outcome.injected = campaign.injected().size();
  outcome.failovers = redundancy.failovers().size();
  for (const platform::FailoverEvent& event : redundancy.failovers()) {
    outcome.worst_outage_ms =
        std::max(outcome.worst_outage_ms, sim::to_ms(event.outage));
  }
  const fault::InvariantReport report = checker.run();
  outcome.invariants_passed = report.passed;
  outcome.report = report.summary();
  outcome.fingerprint = campaign.fingerprint();
  outcome.wall_ms = watch.elapsed_ms();
  return outcome;
}

// --- Sweep mode: parallel seed sweep on ScenarioSweep -------------------------

struct SweepRun {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  std::vector<CampaignOutcome> outcomes;
  std::uint64_t merged = 0;
};

SweepRun run_seed_sweep(std::size_t threads, std::size_t seeds) {
  SweepRun result;
  result.threads = threads;
  sim::ScenarioSweep sweep({.seed = 1, .threads = threads});
  bench::Stopwatch watch;
  result.outcomes = sweep.run<CampaignOutcome>(
      seeds, [](sim::ScenarioRun& run) {
        return run_campaign(run.simulator, run.index + 1);
      });
  result.wall_ms = watch.elapsed_ms();
  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve(result.outcomes.size());
  for (const CampaignOutcome& o : result.outcomes) {
    fingerprints.push_back(o.fingerprint);
  }
  result.merged = sim::ScenarioSweep::merge_fingerprints(fingerprints);
  return result;
}

int sweep_main() {
  bench::banner("E13s", "parallel 32-seed campaign sweep (ScenarioSweep)");
  constexpr std::size_t kSeeds = 32;

  const SweepRun serial = run_seed_sweep(1, kSeeds);
  const SweepRun parallel = run_seed_sweep(8, kSeeds);

  bool identical = serial.merged == parallel.merged &&
                   serial.outcomes.size() == parallel.outcomes.size();
  for (std::size_t i = 0; identical && i < serial.outcomes.size(); ++i) {
    identical = serial.outcomes[i].fingerprint ==
                    parallel.outcomes[i].fingerprint &&
                serial.outcomes[i].invariants_passed ==
                    parallel.outcomes[i].invariants_passed;
  }

  bench::Table table({"threads", "seeds", "wall_ms", "merged_fingerprint",
                      "invariants"});
  for (const SweepRun* run : {&serial, &parallel}) {
    std::size_t passed = 0;
    for (const CampaignOutcome& o : run->outcomes) {
      if (o.invariants_passed) ++passed;
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(run->merged));
    table.row({bench::fmt(run->threads), bench::fmt(run->outcomes.size()),
               bench::fmt(run->wall_ms, 1), fp,
               bench::fmt(passed) + "/" + bench::fmt(run->outcomes.size())});
  }
  const double speedup = serial.wall_ms / parallel.wall_ms;
  std::printf("\nper-seed fingerprints %s across thread counts; speedup %.2fx "
              "(host has %zu hardware threads)\n",
              identical ? "bit-identical" : "DIVERGED", speedup,
              concurrency::ThreadPool::hardware_threads());
  if (!identical) return 1;

  std::FILE* f = std::fopen("BENCH_fault_sweep.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault_sweep.json\n");
    return 1;
  }
  const std::size_t hw = concurrency::ThreadPool::hardware_threads();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E13s_parallel_seed_sweep\",\n");
  std::fprintf(f, "  \"seeds\": %zu,\n", kSeeds);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  std::fprintf(f, "  \"sweep_thread_counts\": [1, 8],\n");
  utsname host{};
  if (uname(&host) == 0) {
    std::fprintf(f, "  \"host\": \"%s %s %s\",\n", host.sysname, host.release,
                 host.machine);
  }
  // An A/B on a box with fewer hardware threads than the parallel arm
  // measures thread-pool overhead, not speedup — flag it so readers don't
  // quote the number as a parallelism result.
  std::fprintf(f, "  \"speedup_meaningful\": %s,\n", hw >= 8 ? "true" : "false");
  std::fprintf(f, "  \"bit_identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "  \"merged_fingerprint\": \"%016llx\",\n",
               static_cast<unsigned long long>(serial.merged));
  std::fprintf(f, "  \"wall_ms_1_thread\": %.2f,\n", serial.wall_ms);
  std::fprintf(f, "  \"wall_ms_8_threads\": %.2f,\n", parallel.wall_ms);
  std::fprintf(f, "  \"speedup\": %.2f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fault_sweep.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--sweep") == 0) return sweep_main();
  bench::banner("E13", "fault campaigns & reliable transport (Sec. 2.4/3.3)");

  std::printf("\n-- transport under uniform frame loss --\n");
  bench::Table loss_table({"loss_pct", "mode", "delivered", "retries",
                           "delivery_failures", "frames_per_msg"});
  std::vector<TransportOutcome> transport_samples;
  for (double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    for (bool reliable : {false, true}) {
      const TransportOutcome outcome = run_transport(loss, reliable);
      loss_table.row({bench::fmt(loss * 100, 0),
                      reliable ? "reliable" : "best-effort",
                      bench::fmt(outcome.delivered) + "/" +
                          bench::fmt(outcome.sent),
                      bench::fmt(outcome.retries),
                      bench::fmt(outcome.delivery_failures),
                      bench::fmt(outcome.frames_per_message, 2)});
      transport_samples.push_back(outcome);
    }
  }

  std::printf("\n-- campaign seed sweep (replicated DA app, 6 episodes) --\n");
  bench::Table seed_table({"seed", "injected", "failovers", "worst_outage_ms",
                           "invariants", "fingerprint", "wall_ms"});
  std::vector<CampaignOutcome> campaign_samples;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Simulator simulator;
    const CampaignOutcome outcome = run_campaign(simulator, seed);
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(outcome.fingerprint));
    seed_table.row({bench::fmt(outcome.seed), bench::fmt(outcome.injected),
                    bench::fmt(outcome.failovers),
                    bench::fmt(outcome.worst_outage_ms, 1),
                    outcome.invariants_passed ? "PASS" : "FAIL", fp,
                    bench::fmt(outcome.wall_ms, 1)});
    if (!outcome.invariants_passed) {
      std::printf("%s\n", outcome.report.c_str());
    }
    campaign_samples.push_back(outcome);
  }

  std::FILE* f = std::fopen("BENCH_fault.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E13_fault_robustness\",\n");
  std::fprintf(f, "  \"transport_loss_sweep\": [\n");
  for (std::size_t i = 0; i < transport_samples.size(); ++i) {
    const TransportOutcome& s = transport_samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"loss\": %.2f,\n", s.loss);
    std::fprintf(f, "      \"reliable\": %s,\n", s.reliable ? "true" : "false");
    std::fprintf(f, "      \"sent\": %d,\n", s.sent);
    std::fprintf(f, "      \"delivered\": %d,\n", s.delivered);
    std::fprintf(f, "      \"retries\": %llu,\n",
                 static_cast<unsigned long long>(s.retries));
    std::fprintf(f, "      \"delivery_failures\": %llu,\n",
                 static_cast<unsigned long long>(s.delivery_failures));
    std::fprintf(f, "      \"frames_per_message\": %.3f\n",
                 s.frames_per_message);
    std::fprintf(f, "    }%s\n", i + 1 < transport_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"campaign_seed_sweep\": [\n");
  for (std::size_t i = 0; i < campaign_samples.size(); ++i) {
    const CampaignOutcome& s = campaign_samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"seed\": %llu,\n",
                 static_cast<unsigned long long>(s.seed));
    std::fprintf(f, "      \"events_injected\": %zu,\n", s.injected);
    std::fprintf(f, "      \"failovers\": %zu,\n", s.failovers);
    std::fprintf(f, "      \"worst_outage_ms\": %.3f,\n", s.worst_outage_ms);
    std::fprintf(f, "      \"invariants_passed\": %s,\n",
                 s.invariants_passed ? "true" : "false");
    std::fprintf(f, "      \"fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(s.fingerprint));
    std::fprintf(f, "      \"wall_ms\": %.2f\n", s.wall_ms);
    std::fprintf(f, "    }%s\n", i + 1 < campaign_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_fault.json\n");
  return 0;
}
