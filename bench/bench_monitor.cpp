// E10 -- Sec. 3.4: runtime monitoring cost and detection latency.
//
// A deterministic task set runs under the monitor at several sampling
// periods. At t = 5 s a latent fault is injected (one task's execution time
// inflates past its deadline). Reported: monitoring CPU overhead (fraction
// of the core), detection latency (fault injection -> first fault record)
// and fault count; plus the monitor-off baseline.
//
// Expected shape: overhead scales inversely with sampling period and stays
// well under 1%; detection latency ~ sampling period; with monitoring off
// the fault is never seen (the certification data set stays empty).
//
// Machine-readable results go to BENCH_monitor.json (one sample per
// sampling period plus the off baseline), following the BENCH_dse.json
// pattern so successive PRs accumulate a trajectory.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "monitor/runtime_monitor.hpp"

using namespace dynaplat;

namespace {

struct Outcome {
  double overhead_percent = 0.0;
  double detection_ms = -1.0;
  std::size_t faults = 0;
};

Outcome run(bool monitoring, sim::Duration sampling_period) {
  sim::Simulator simulator;
  sim::Trace trace;
  os::EcuConfig config{.name = "ecu", .cpu = {.mips = 200}};
  os::Ecu ecu(simulator, config, nullptr, 0, &trace);

  // Reference run cost: measure instructions of the task set alone first
  // via utilization math (tasks are exact), so overhead = extra busy time.
  std::vector<os::TaskId> ids;
  for (int i = 0; i < 5; ++i) {
    os::TaskConfig task;
    task.name = "da" + std::to_string(i);
    task.task_class = os::TaskClass::kDeterministic;
    task.period = (5 + 5 * i) * sim::kMillisecond;
    task.instructions = 50'000 + 20'000 * static_cast<std::uint64_t>(i);
    task.priority = i;
    ids.push_back(ecu.processor().add_task(task));
  }
  ecu.processor().start();

  monitor::MonitorConfig monitor_config;
  monitor_config.sampling_period = sampling_period;
  monitor::RuntimeMonitor monitor(ecu, monitor_config);
  sim::Time detected_at = 0;
  if (monitoring) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      monitor::Contract contract;
      contract.task = ids[i];
      contract.name = "da" + std::to_string(i);
      contract.period = (5 + 5 * static_cast<sim::Duration>(i)) *
                        sim::kMillisecond;
      monitor.watch(contract);
    }
    monitor.set_report_sink([&](const monitor::FaultRecord&) {
      if (detected_at == 0) detected_at = simulator.now();
    });
    monitor.start();
  }

  // Latent fault: at t = 5 s task 0's execution time inflates 60x (a stuck
  // loop), overrunning its 5 ms period.
  const sim::Time fault_at = sim::seconds(5);
  simulator.schedule_at(fault_at, [&] {
    ecu.processor().remove_task(ids[0]);
    os::TaskConfig task;
    task.name = "da0";
    task.task_class = os::TaskClass::kDeterministic;
    task.period = 5 * sim::kMillisecond;
    task.instructions = 3'000'000;
    task.priority = 0;
    const os::TaskId new_id = ecu.processor().add_task(task);
    if (monitoring) {
      monitor::Contract contract;
      contract.task = new_id;
      contract.name = "da0";
      contract.period = 5 * sim::kMillisecond;
      monitor.watch(contract);
    }
  });

  // Baseline busy fraction measured on a twin run without the monitor would
  // double runtime; instead use the analytic task utilization.
  double base_utilization = 0.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    // instr * 5 ns per instruction at 200 MIPS, over a (5 + 5i) ms period.
    base_utilization += static_cast<double>(50'000 + 20'000 * i) * 5.0 /
                        (static_cast<double>(5 + 5 * i) * 1e6);
  }

  simulator.run_until(fault_at);  // pre-fault phase only for overhead
  const double busy_pre_fault = ecu.processor().busy_fraction();
  simulator.run_until(sim::seconds(8));

  Outcome outcome;
  outcome.overhead_percent = (busy_pre_fault - base_utilization) * 100.0;
  if (detected_at > 0) {
    outcome.detection_ms = sim::to_ms(detected_at - fault_at);
  }
  outcome.faults = monitor.faults().size();
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E10", "runtime monitoring overhead & detection (Sec. 3.4)");
  bench::Table table({"monitoring", "sampling_ms", "cpu_overhead_pct",
                      "detection_ms", "faults_recorded"});

  struct Sample {
    bool monitoring = false;
    double sampling_ms = 0.0;
    Outcome outcome;
  };
  std::vector<Sample> samples;
  {
    const Outcome off = run(false, 10 * sim::kMillisecond);
    table.row({"off", "-", bench::fmt(off.overhead_percent, 3),
               off.detection_ms < 0 ? "never" : bench::fmt(off.detection_ms, 1),
               bench::fmt(off.faults)});
    samples.push_back({false, 0.0, off});
  }
  for (sim::Duration period : {sim::kMillisecond, 5 * sim::kMillisecond,
                               10 * sim::kMillisecond,
                               100 * sim::kMillisecond}) {
    const Outcome on = run(true, period);
    table.row({"on", bench::fmt(sim::to_ms(period), 0),
               bench::fmt(on.overhead_percent, 3),
               on.detection_ms < 0 ? "never" : bench::fmt(on.detection_ms, 1),
               bench::fmt(on.faults)});
    samples.push_back({true, sim::to_ms(period), on});
  }

  std::FILE* f = std::fopen("BENCH_monitor.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_monitor.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"E10_runtime_monitoring\",\n");
  bench::fprint_host_json(f);
  std::fprintf(f, "  \"samples\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"monitoring\": %s,\n",
                 s.monitoring ? "true" : "false");
    std::fprintf(f, "      \"sampling_period_ms\": %.3f,\n", s.sampling_ms);
    std::fprintf(f, "      \"cpu_overhead_percent\": %.4f,\n",
                 s.outcome.overhead_percent);
    std::fprintf(f, "      \"detection_latency_ms\": %.3f,\n",
                 s.outcome.detection_ms);
    std::fprintf(f, "      \"faults_recorded\": %zu\n", s.outcome.faults);
    std::fprintf(f, "    }%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_monitor.json\n");
  return 0;
}
