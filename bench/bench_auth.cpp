// E7 -- Sec. 4.2 + [10]: lightweight session authentication vs per-message
// asymmetric authentication.
//
// A producer publishes N messages at 100 Hz to one consumer under three
// regimes: none, session (one asymmetric handshake, then HMAC per message
// -- the LASAN approach [10]) and asymmetric (an RSA operation per
// message). Setup cost (handshake, measured during subscription
// establishment) is separated from the steady per-message cost.
//
// Expected shape: session pays a large one-off setup, then ~HMAC-sized
// per-message cost; asymmetric pays nothing up front but a per-message cost
// three orders of magnitude higher, saturating the 500 MIPS ECU well below
// 100 Hz (delivered < sent).
#include <memory>

#include "bench/common.hpp"
#include "net/ethernet.hpp"
#include "security/auth.hpp"

using namespace dynaplat;

namespace {

struct Outcome {
  std::uint64_t delivered = 0;
  double setup_cpu_ms = 0.0;
  double steady_cpu_ms = 0.0;
  double makespan_ms = 0.0;  // first publish -> last delivery
};

Outcome run(security::AuthMode mode, int messages) {
  sim::Simulator simulator;
  net::EthernetSwitch medium(simulator, "eth", {});
  os::EcuConfig config_a{.name = "a", .cpu = {.mips = 500}};
  os::EcuConfig config_b{.name = "b", .cpu = {.mips = 500}};
  os::Ecu a(simulator, config_a, &medium, 1);
  os::Ecu b(simulator, config_b, &medium, 2);
  a.processor().start();
  b.processor().start();
  middleware::ServiceRuntime rt_a(a);
  middleware::ServiceRuntime rt_b(b);
  security::KeyServer key_server(9);
  security::AuthenticationService auth_a(rt_a, key_server, mode);
  security::AuthenticationService auth_b(rt_b, key_server, mode);

  const os::CpuModel cpu{.mips = 500};
  auto cpu_ms_both = [&] {
    return sim::to_ms(cpu.duration_for(a.processor().instructions_retired() +
                                       b.processor().instructions_retired()));
  };

  rt_a.offer(1);
  Outcome outcome;
  sim::Time last_delivery = 0;
  rt_b.subscribe(1, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++outcome.delivered;
    last_delivery = simulator.now();
  });
  // Establish the subscription (and, for session mode, the handshake).
  const double cpu_at_start = cpu_ms_both();
  simulator.run_until(sim::seconds(3));
  outcome.setup_cpu_ms = cpu_ms_both() - cpu_at_start;

  const sim::Time publish_start = simulator.now();
  const double cpu_at_publish = cpu_ms_both();
  for (int i = 0; i < messages; ++i) {
    simulator.schedule_at(publish_start + (i + 1) * 10 * sim::kMillisecond,
                          [&rt_a] {
                            rt_a.publish(1, 1,
                                         std::vector<std::uint8_t>(64, 0x42),
                                         3);
                          });
  }
  // Generous drain window for the saturated asymmetric case.
  simulator.run_until(publish_start + messages * 10 * sim::kMillisecond +
                      sim::seconds(300));
  outcome.steady_cpu_ms = cpu_ms_both() - cpu_at_publish;
  outcome.makespan_ms =
      last_delivery > publish_start ? sim::to_ms(last_delivery - publish_start)
                                    : 0.0;
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E7",
                "session vs per-message authentication (Sec. 4.2, [10])");
  bench::Table table({"mode", "messages", "delivered", "setup_cpu_ms",
                      "steady_cpu_ms", "cpu_per_msg_ms", "makespan_ms"});
  for (int messages : {1, 10, 100, 1000}) {
    for (const auto& [mode, name] :
         {std::pair{security::AuthMode::kNone, "none"},
          std::pair{security::AuthMode::kSession, "session"},
          std::pair{security::AuthMode::kAsymmetric, "asymmetric"}}) {
      const Outcome outcome = run(mode, messages);
      table.row({name, bench::fmt(messages), bench::fmt(outcome.delivered),
                 bench::fmt(outcome.setup_cpu_ms, 1),
                 bench::fmt(outcome.steady_cpu_ms, 2),
                 bench::fmt(outcome.steady_cpu_ms / messages, 3),
                 bench::fmt(outcome.makespan_ms, 1)});
    }
  }
  return 0;
}
