// Shared helpers for the experiment benches (E1..E12).
//
// Each bench binary regenerates one table/figure of EXPERIMENTS.md as a
// tab-separated table on stdout, plus a short header naming the experiment.
// Wall-clock helpers measure host cost where the experiment is about
// analysis/synthesis cost rather than simulated time.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <type_traits>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/utsname.h>
#endif

namespace dynaplat::bench {

/// Fixed-width tab-separated table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "", columns_[i].c_str());
    }
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "", cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Integral overload (size_t/uint64_t/int/...), kept out of the double
/// overload's way.
template <typename T>
  requires std::is_integral_v<T>
inline std::string fmt(T v) {
  return std::to_string(v);
}

/// Host wall-clock stopwatch (for analysis-cost experiments).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const char* experiment, const char* title) {
  std::printf("### %s -- %s\n", experiment, title);
}

// --- Noise-resistant repetition ---------------------------------------------
//
// Wall-clock numbers on a shared box jitter upward (preemption, frequency
// scaling) but never downward below the true cost, so throughput-style
// results report the *minimum* over N repetitions and latency-style results
// report percentiles over the per-rep samples.

/// p50/p95/max over a sample set (nearest-rank; empty input yields zeros).
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

inline Percentiles percentiles(std::vector<double> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  auto rank = [&](double q) {
    const std::size_t n = samples.size();
    std::size_t i = static_cast<std::size_t>(q * static_cast<double>(n));
    if (i >= n) i = n - 1;
    return samples[i];
  };
  p.p50 = rank(0.50);
  p.p95 = rank(0.95);
  p.max = samples.back();
  return p;
}

/// Runs `fn` `reps` times and returns every per-rep wall time in ms.
template <typename Fn>
inline std::vector<double> repeat_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.elapsed_ms());
  }
  return samples;
}

/// Best-of-N wall time in ms — the standard throughput measurement.
template <typename Fn>
inline double min_elapsed_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    const double ms = watch.elapsed_ms();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

// --- Host context ------------------------------------------------------------
//
// Wall-clock results mean nothing without the machine they were taken on:
// every BENCH_*.json embeds a "host" object so successive PRs' trajectories
// are comparable (or visibly not).

struct HostInfo {
  unsigned hardware_threads = 0;
  std::string cpu_model;  ///< /proc/cpuinfo "model name" (empty if unknown)
  std::string os;         ///< uname sysname + release (empty if unknown)
};

inline HostInfo host_info() {
  HostInfo info;
  info.hardware_threads = std::thread::hardware_concurrency();
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        std::string model = colon + 1;
        while (!model.empty() && (model.front() == ' ' || model.front() == '\t'))
          model.erase(model.begin());
        while (!model.empty() && (model.back() == '\n' || model.back() == '\r'))
          model.pop_back();
        info.cpu_model = std::move(model);
      }
      break;
    }
    std::fclose(f);
  }
  utsname names{};
  if (uname(&names) == 0) {
    info.os = std::string(names.sysname) + " " + names.release;
  }
#endif
  return info;
}

/// Peak resident set size in kB (/proc/self/status VmHWM; 0 if unknown).
inline std::size_t peak_rss_kb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::size_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
    }
    std::fclose(f);
    return kb;
  }
#endif
  return 0;
}

/// Emits the standard `"host": {...},` JSON fragment (two-space indent,
/// trailing comma) — call right after the opening `{` of a BENCH_*.json.
inline void fprint_host_json(std::FILE* f) {
  const HostInfo info = host_info();
  const auto escaped = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::fprintf(f, "  \"host\": {\n");
  std::fprintf(f, "    \"hardware_threads\": %u,\n", info.hardware_threads);
  std::fprintf(f, "    \"cpu_model\": \"%s\",\n",
               escaped(info.cpu_model).c_str());
  std::fprintf(f, "    \"os\": \"%s\"\n", escaped(info.os).c_str());
  std::fprintf(f, "  },\n");
}

}  // namespace dynaplat::bench
