// Shared helpers for the experiment benches (E1..E12).
//
// Each bench binary regenerates one table/figure of EXPERIMENTS.md as a
// tab-separated table on stdout, plus a short header naming the experiment.
// Wall-clock helpers measure host cost where the experiment is about
// analysis/synthesis cost rather than simulated time.
#pragma once

#include <chrono>
#include <type_traits>
#include <cstdio>
#include <string>
#include <vector>

namespace dynaplat::bench {

/// Fixed-width tab-separated table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "", columns_[i].c_str());
    }
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "", cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Integral overload (size_t/uint64_t/int/...), kept out of the double
/// overload's way.
template <typename T>
  requires std::is_integral_v<T>
inline std::string fmt(T v) {
  return std::to_string(v);
}

/// Host wall-clock stopwatch (for analysis-cost experiments).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const char* experiment, const char* title) {
  std::printf("### %s -- %s\n", experiment, title);
}

}  // namespace dynaplat::bench
