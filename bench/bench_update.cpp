// E3 -- Sec. 3.2: update safety.
//
// A deterministic 10 ms publisher is updated while a remote consumer
// watches. Strategies: the paper's 4-phase staged protocol, stop-restart
// (firmware-image style) and the centrally-switched baseline. Swept over
// application state size (which the staged protocol must transfer) and
// package verification cost (which stop-restart pays inside the outage).
//
// Expected shape: staged ownership gap == 0 and consumer-visible gap stays
// at the nominal period regardless of verify cost; stop-restart outage
// grows with verify cost; central switch outage == clock error.
#include <memory>

#include "bench/common.hpp"
#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/update.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Net kind=ethernet bitrate=100M
ecu Host mips=200 memory=128M asil=D network=Net
ecu Peer mips=1000 memory=128M asil=D network=Net
interface Feed paradigm=event payload=8 period=10ms
app Pub class=deterministic asil=B memory=8M
  task tick period=10ms wcet=100K priority=1
  provides Feed
deploy Pub -> Host
)";

class StatefulPub final : public platform::Application {
 public:
  explicit StatefulPub(std::size_t state_bytes)
      : state_(state_bytes, 0x5A) {}
  void on_task(const std::string&) override {
    ++count_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(count_);
    context_.comm->publish(context_.service_id("Feed"), 1, writer.take(), 2);
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(count_);
    writer.blob(state_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    middleware::PayloadReader reader(state);
    count_ = reader.u64();
    state_ = reader.blob();
  }

 private:
  std::uint64_t count_ = 0;
  std::vector<std::uint8_t> state_;
};

struct Outcome {
  bool success = false;
  double ownership_gap_ms = 0.0;
  double consumer_gap_ms = 0.0;  // worst inter-event gap seen at consumer
  bool state_continuous = false;
  double total_ms = 0.0;
};

Outcome run(const std::string& strategy, std::size_t state_bytes,
            std::uint64_t verify_instructions) {
  model::ParsedSystem parsed = model::parse_system(kModel);
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig host_config{.name = "Host", .cpu = {.mips = 200}};
  os::EcuConfig peer_config{.name = "Peer", .cpu = {.mips = 1000}};
  os::Ecu host(simulator, host_config, &backbone, 1);
  os::Ecu peer(simulator, peer_config, &backbone, 2);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(host);
  dp.add_node(peer);
  dp.register_app("Pub", [state_bytes] {
    return std::make_unique<StatefulPub>(state_bytes);
  });
  if (!dp.install_all()) return {};

  std::uint64_t last_count = 0;
  sim::Time last_rx = 0;
  sim::Duration worst_gap = 0;
  bool monotonic = true;
  dp.node("Peer")->comm().subscribe(
      dp.service_id("Feed"), 1,
      [&](std::vector<std::uint8_t> data, net::NodeId) {
        middleware::PayloadReader reader(data);
        const std::uint64_t count = reader.u64();
        if (count < last_count) monotonic = false;
        last_count = count;
        if (last_rx != 0 && simulator.now() > sim::seconds(1)) {
          worst_gap = std::max(worst_gap, simulator.now() - last_rx);
        }
        last_rx = simulator.now();
      });
  simulator.run_until(sim::seconds(1));
  const std::uint64_t count_before = last_count;

  platform::UpdateManager updates(dp);
  platform::UpdateConfig config;
  config.preinstall_instructions = verify_instructions;
  model::AppDef v2 = *parsed.model.app("Pub");
  v2.version = 2;
  auto factory = [state_bytes] {
    return std::make_unique<StatefulPub>(state_bytes);
  };

  platform::UpdateReport report;
  auto done = [&](platform::UpdateReport r) { report = r; };
  auto& node = *dp.node("Host");
  if (strategy == "staged") {
    updates.staged_update(node, "Pub", v2, factory, config, done);
  } else if (strategy == "stop_restart") {
    updates.stop_restart_update(node, "Pub", v2, factory, config, done);
  } else {
    updates.central_switch_update(node, "Pub", v2, factory, config, done);
  }
  simulator.run_until(sim::seconds(5));

  Outcome outcome;
  outcome.success = report.success;
  outcome.ownership_gap_ms = sim::to_ms(report.ownership_gap);
  outcome.consumer_gap_ms = sim::to_ms(worst_gap);
  outcome.state_continuous = monotonic && last_count > count_before;
  outcome.total_ms = sim::to_ms(report.finished - report.started);
  return outcome;
}

}  // namespace

int main() {
  bench::banner("E3", "staged runtime update vs baselines (Sec. 3.2)");
  bench::Table table({"strategy", "state_KiB", "verify_Minstr",
                      "ownership_gap_ms", "consumer_gap_ms", "total_ms",
                      "state_continuous"});
  for (const char* strategy : {"staged", "stop_restart", "central_switch"}) {
    for (std::size_t state_kib : {1u, 16u, 64u}) {
      for (std::uint64_t verify_m : {5u, 50u}) {
        const Outcome outcome =
            run(strategy, state_kib * 1024, verify_m * 1'000'000);
        table.row({strategy, bench::fmt(state_kib), bench::fmt(verify_m),
                   bench::fmt(outcome.ownership_gap_ms, 1),
                   bench::fmt(outcome.consumer_gap_ms, 1),
                   bench::fmt(outcome.total_ms, 1),
                   outcome.state_continuous ? "yes" : "NO"});
      }
    }
  }
  return 0;
}
