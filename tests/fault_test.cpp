// Robustness tests: deterministic fault campaigns, net-layer fault hooks
// (burst loss, corruption, partitions, per-name seeds), the reliable
// transport (CRC32 + ack/retry + dedup + TTL eviction) and redundancy
// failover under injected faults (partition, crash-restart flapping,
// rank-staggered ordering).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "fault/campaign.hpp"
#include "fault/invariants.hpp"
#include "obs/json.hpp"
#include "middleware/transport.hpp"
#include "model/parser.hpp"
#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"

namespace dynaplat::platform {
namespace {

// --- Net-layer fault hooks ----------------------------------------------------

/// Sends `count` tagged unicast frames 1 -> 2 spaced 2 ms apart and returns
/// the tags that arrived (the delivered pattern).
std::vector<int> loss_pattern(sim::Simulator& sim, net::Medium& bus,
                              int count) {
  std::vector<int> delivered;
  bus.attach(1, [](const net::Frame&) {});
  bus.attach(2, [&delivered](const net::Frame& frame) {
    delivered.push_back(frame.payload[0] | (frame.payload[1] << 8));
  });
  for (int i = 0; i < count; ++i) {
    sim.schedule_at(static_cast<sim::Time>(i) * 2 * sim::kMillisecond,
                    [&bus, i] {
                      net::Frame frame;
                      frame.src = 1;
                      frame.dst = 2;
                      frame.payload = {static_cast<std::uint8_t>(i),
                                       static_cast<std::uint8_t>(i >> 8),
                                       0, 0, 0, 0, 0, 0};
                      bus.send(std::move(frame));
                    });
  }
  sim.run_until(static_cast<sim::Time>(count + 2) * 2 * sim::kMillisecond);
  return delivered;
}

TEST(MediumFaults, DefaultLossSeedDerivesFromMediumName) {
  // Two identically configured buses with the default seed must not share a
  // drop sequence (a shared fixed seed makes co-simulated buses lose the
  // same frames in lockstep).
  sim::Simulator sim_a;
  net::CanBus bus_a(sim_a, "canA", net::CanBusConfig{});
  bus_a.set_fault_injection(0.3);
  const auto pattern_a = loss_pattern(sim_a, bus_a, 300);

  sim::Simulator sim_b;
  net::CanBus bus_b(sim_b, "canB", net::CanBusConfig{});
  bus_b.set_fault_injection(0.3);
  const auto pattern_b = loss_pattern(sim_b, bus_b, 300);
  EXPECT_NE(pattern_a, pattern_b);

  // Same name => same derived seed => bit-identical pattern in a fresh run.
  sim::Simulator sim_a2;
  net::CanBus bus_a2(sim_a2, "canA", net::CanBusConfig{});
  bus_a2.set_fault_injection(0.3);
  EXPECT_EQ(loss_pattern(sim_a2, bus_a2, 300), pattern_a);
}

TEST(MediumFaults, GilbertElliottProducesBurstyLoss) {
  sim::Simulator sim;
  net::CanBus bus(sim, "can0", net::CanBusConfig{});
  net::GilbertElliott model;
  model.p_good_to_bad = 0.2;
  model.p_bad_to_good = 0.3;
  model.loss_good = 0.0;
  model.loss_bad = 1.0;
  bus.set_burst_loss(model);
  const auto delivered = loss_pattern(sim, bus, 400);
  ASSERT_FALSE(delivered.empty());
  EXPECT_GT(bus.frames_dropped(), 0u);
  // Bursty: with loss_bad=1.0 every Bad-state visit devours consecutive
  // frames (mean run length ~3.3), so gaps of >2 tags must appear.
  bool burst_seen = false;
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    if (delivered[i] - delivered[i - 1] > 2) burst_seen = true;
  }
  EXPECT_TRUE(burst_seen);
}

TEST(MediumFaults, PartitionCutsCrossIslandTrafficOnly) {
  sim::Simulator sim;
  net::CanBus bus(sim, "can0", net::CanBusConfig{});
  int at_2 = 0;
  int at_3 = 0;
  bus.attach(1, [](const net::Frame&) {});
  bus.attach(2, [&at_2](const net::Frame&) { ++at_2; });
  bus.attach(3, [&at_3](const net::Frame&) { ++at_3; });
  EXPECT_FALSE(bus.partitioned());
  bus.set_partition({1});
  EXPECT_TRUE(bus.partitioned());

  auto unicast = [&bus](net::NodeId src, net::NodeId dst) {
    net::Frame frame;
    frame.src = src;
    frame.dst = dst;
    frame.payload = {1, 2, 3};
    bus.send(std::move(frame));
  };
  unicast(1, 2);  // crosses the cut: dropped
  unicast(2, 3);  // same island: delivered
  sim.run_until(10 * sim::kMillisecond);
  EXPECT_EQ(at_2, 0);
  EXPECT_EQ(at_3, 1);
  EXPECT_GE(bus.frames_partition_dropped(), 1u);

  bus.heal_partition();
  unicast(1, 2);
  sim.run_until(20 * sim::kMillisecond);
  EXPECT_EQ(at_2, 1);
}

TEST(MediumFaults, CorruptionFlipsExactlyOneBit) {
  sim::Simulator sim;
  net::CanBus bus(sim, "can0", net::CanBusConfig{});
  bus.attach(1, [](const net::Frame&) {});
  std::vector<std::uint8_t> received;
  bus.attach(
      2, [&received](const net::Frame& frame) { received = frame.payload; });
  bus.set_corruption(1.0);
  net::Frame frame;
  frame.src = 1;
  frame.dst = 2;
  frame.payload = {0xFF, 0xFF, 0xFF, 0xFF};
  bus.send(std::move(frame));
  sim.run_until(10 * sim::kMillisecond);
  ASSERT_EQ(received.size(), 4u);
  int flipped_bits = 0;
  for (const std::uint8_t byte : received) {
    flipped_bits += __builtin_popcount(0xFFu ^ byte);
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(bus.frames_corrupted(), 1u);
}

// --- Reliable transport -------------------------------------------------------

bool is_ack(const net::Frame& frame) {
  return frame.payload.size() >= 6 && frame.payload[4] == 0 &&
         frame.payload[5] == 0;
}

/// Two transports joined by a lossy in-memory wire. Filters may drop
/// (return false) or mutate frames in flight.
struct Wire {
  explicit Wire(middleware::TransportConfig config) {
    a = std::make_unique<middleware::Transport>(
        [this](net::Frame frame) {
          frame.src = 1;
          if (a_filter && !a_filter(frame)) return;
          sim.schedule_in(10 * sim::kMicrosecond,
                          [this, frame] { b->on_frame(frame); });
        },
        16, &sim, config);
    b = std::make_unique<middleware::Transport>(
        [this](net::Frame frame) {
          frame.src = 2;
          if (b_filter && !b_filter(frame)) return;
          sim.schedule_in(10 * sim::kMicrosecond,
                          [this, frame] { a->on_frame(frame); });
        },
        16, &sim, config);
  }

  sim::Simulator sim;
  std::function<bool(net::Frame&)> a_filter;
  std::function<bool(net::Frame&)> b_filter;
  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
};

middleware::TransportConfig reliable_config() {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 10 * sim::kMillisecond;
  config.max_retries = 3;
  config.max_backoff = 40 * sim::kMillisecond;
  return config;
}

TEST(ReliableTransport, Crc32MatchesKnownVector) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(middleware::crc32(data, sizeof(data)), 0xCBF43926u);
}

TEST(ReliableTransport, RetriesRecoverLostFragments) {
  Wire wire(reliable_config());
  int data_drops = 0;
  wire.a_filter = [&data_drops](net::Frame& frame) {
    if (!is_ack(frame) && data_drops == 0) {
      ++data_drops;
      return false;  // lose the first data fragment once
    }
    return true;
  };
  std::vector<std::uint8_t> got;
  int deliveries = 0;
  wire.b->set_handler([&](net::NodeId, std::vector<std::uint8_t> message) {
    got = std::move(message);
    ++deliveries;
  });
  const std::vector<std::uint8_t> message(25, 0x5A);
  wire.a->send(2, net::kPriorityLowest, 1, message);
  wire.sim.run_until(sim::seconds(1));
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(got, message);
  EXPECT_EQ(wire.a->retries(), 1u);
  EXPECT_EQ(wire.a->pending_reliable(), 0u);
  EXPECT_EQ(wire.a->delivery_failures(), 0u);
}

TEST(ReliableTransport, DuplicateFromLostAckIsSuppressed) {
  Wire wire(reliable_config());
  int ack_drops = 0;
  wire.b_filter = [&ack_drops](net::Frame& frame) {
    if (is_ack(frame) && ack_drops == 0) {
      ++ack_drops;
      return false;  // receiver's first ack never arrives
    }
    return true;
  };
  int deliveries = 0;
  wire.b->set_handler(
      [&deliveries](net::NodeId, std::vector<std::uint8_t>) { ++deliveries; });
  wire.a->send(2, net::kPriorityLowest, 1, std::vector<std::uint8_t>(25, 7));
  wire.sim.run_until(sim::seconds(1));
  // The retry re-delivered the full message; dedup swallowed the copy.
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(wire.b->duplicates_suppressed(), 1u);
  EXPECT_EQ(wire.b->acks_sent(), 2u);
  EXPECT_EQ(wire.a->pending_reliable(), 0u);
}

TEST(ReliableTransport, BoundedRetriesSurfaceDeliveryFailure) {
  Wire wire(reliable_config());
  wire.a_filter = [](net::Frame& frame) { return is_ack(frame); };
  net::NodeId failed_dst = 0;
  std::uint16_t failed_id = 0;
  wire.a->set_delivery_failure_handler([&](net::NodeId dst, std::uint16_t id) {
    failed_dst = dst;
    failed_id = id;
  });
  wire.a->send(2, net::kPriorityLowest, 1, std::vector<std::uint8_t>(8, 1));
  wire.sim.run_until(sim::seconds(1));
  EXPECT_EQ(wire.a->delivery_failures(), 1u);
  EXPECT_EQ(wire.a->retries(), 3u);  // max_retries, then give up
  EXPECT_EQ(failed_dst, 2u);
  EXPECT_EQ(failed_id, 1u);
  EXPECT_EQ(wire.a->pending_reliable(), 0u);
}

TEST(ReliableTransport, CrcRejectsCorruptionUntilCleanRetry) {
  Wire wire(reliable_config());
  int corrupted = 0;
  wire.a_filter = [&corrupted](net::Frame& frame) {
    if (!is_ack(frame) && corrupted == 0 && frame.payload.size() > 6) {
      ++corrupted;
      frame.payload[6] ^= 0x01;  // single bit flip in the first fragment
    }
    return true;
  };
  std::vector<std::uint8_t> got;
  int deliveries = 0;
  wire.b->set_handler([&](net::NodeId, std::vector<std::uint8_t> message) {
    got = std::move(message);
    ++deliveries;
  });
  const std::vector<std::uint8_t> message{1, 2,  3,  4,  5,  6,  7, 8,
                                          9, 10, 11, 12, 13, 14, 15};
  wire.a->send(2, net::kPriorityLowest, 1, message);
  wire.sim.run_until(sim::seconds(1));
  EXPECT_EQ(wire.b->crc_failures(), 1u);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(got, message);  // the retry delivered the uncorrupted copy
}

TEST(ReassemblyTtl, EvictsStrandedPartials) {
  middleware::TransportConfig config;  // unreliable
  config.reassembly_ttl = 50 * sim::kMillisecond;
  Wire wire(config);
  wire.a_filter = [](net::Frame& frame) {
    return frame.payload[2] != 2;  // last fragment of a 3-fragment message
  };
  int deliveries = 0;
  wire.b->set_handler(
      [&deliveries](net::NodeId, std::vector<std::uint8_t>) { ++deliveries; });
  wire.a->send(2, net::kPriorityLowest, 1, std::vector<std::uint8_t>(30, 9));
  wire.sim.run_until(10 * sim::kMillisecond);
  EXPECT_EQ(wire.b->partial_count(), 1u);  // stuck at 2/3 fragments

  // Past the TTL the periodic sweep reclaims the stale entry even though
  // the link has gone quiet — no inbound frame is needed.
  wire.sim.run_until(100 * sim::kMillisecond);
  EXPECT_EQ(wire.b->partial_count(), 0u);
  EXPECT_EQ(wire.b->reassembly_evictions(), 1u);
  wire.a_filter = nullptr;
  wire.a->send(2, net::kPriorityLowest, 1, std::vector<std::uint8_t>(4, 3));
  wire.sim.run_until(200 * sim::kMillisecond);
  EXPECT_EQ(deliveries, 1);  // only the second (complete) message
  EXPECT_EQ(wire.b->partial_count(), 0u);
  EXPECT_EQ(wire.b->reassembly_evictions(), 1u);
  EXPECT_GE(wire.b->reassembly_failures(), 1u);
}

// --- Redundancy under injected faults ----------------------------------------

class CounterApp final : public Application {
 public:
  void on_task(const std::string&) override {
    ++counter_;
    if (!active() || context_.def->provides.empty()) return;
    context_.comm->publish(context_.service_id(context_.def->provides[0]), 1,
                           {static_cast<std::uint8_t>(counter_)},
                           context_.priority_of(context_.def->provides[0]));
  }
  std::vector<std::uint8_t> serialize_state() override {
    return {static_cast<std::uint8_t>(counter_)};
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    if (!state.empty()) counter_ = state[0];
  }

 private:
  std::uint64_t counter_ = 0;
};

class NullApp final : public Application {};

struct World {
  explicit World(const std::string& dsl, NodeConfig node_config = {}) {
    parsed = model::parse_system(dsl);
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    net::NodeId next_node = 1;
    for (const auto& ecu_def : parsed.model.ecus()) {
      os::EcuConfig config;
      config.name = ecu_def.name;
      config.cpu.mips = ecu_def.mips;
      config.memory_bytes = ecu_def.memory_bytes;
      config.has_mmu = ecu_def.has_mmu;
      ecus.push_back(std::make_unique<os::Ecu>(simulator, config,
                                               backbone.get(), next_node++,
                                               &trace));
    }
    platform = std::make_unique<DynamicPlatform>(
        simulator, parsed.model, parsed.deployment, PlatformConfig{});
    for (auto& ecu : ecus) platform->add_node(*ecu, node_config);
  }

  os::Ecu& ecu(const std::string& name) {
    for (auto& e : ecus) {
      if (e->name() == name) return *e;
    }
    throw std::out_of_range(name);
  }

  sim::Simulator simulator;
  sim::Trace trace;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::unique_ptr<DynamicPlatform> platform;
};

const char* kRedundantSystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
interface Cmd paradigm=event payload=8 period=10ms
app Pilot class=deterministic asil=D memory=4M replicas=2
  task drive period=10ms wcet=100K priority=1
  provides Cmd
deploy Pilot -> A | B | C
)";

struct RedundantWorld : World {
  explicit RedundantWorld(const char* dsl = kRedundantSystem) : World(dsl) {
    platform->register_app("Pilot",
                           [] { return std::make_unique<CounterApp>(); });
    EXPECT_TRUE(platform->install_all());
  }
};

TEST(RedundancyFault, FailoverDuringBusPartition) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  world.simulator.run_until(300 * sim::kMillisecond);
  EXPECT_EQ(redundancy.current_primary(), "A");

  // Sever A (node 1) from B and C: the standby must take over even though
  // A is still alive on its island.
  world.backbone->set_partition({1});
  world.simulator.run_until(sim::seconds(1));
  EXPECT_EQ(redundancy.current_primary(), "B");
  ASSERT_EQ(redundancy.failovers().size(), 1u);

  // After the heal, the deposed primary rejoins as a standby — it must not
  // reclaim (no flapping: still exactly one failover).
  world.backbone->heal_partition();
  world.simulator.run_until(sim::seconds(3));
  EXPECT_EQ(redundancy.current_primary(), "B");
  EXPECT_EQ(redundancy.failovers().size(), 1u);
  const AppInstance* old_primary =
      world.platform->node("A")->instance("Pilot");
  ASSERT_NE(old_primary, nullptr);
  EXPECT_FALSE(old_primary->app->active());
}

TEST(RedundancyFault, CrashRestartPrimaryDoesNotReclaim) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  world.simulator.run_until(400 * sim::kMillisecond);

  world.ecu("A").fail();
  world.simulator.run_until(sim::seconds(1));
  EXPECT_EQ(redundancy.current_primary(), "B");
  ASSERT_EQ(redundancy.failovers().size(), 1u);

  // The crashed primary restarts; it must rejoin as a standby, not flap
  // leadership back.
  world.ecu("A").recover();
  world.simulator.run_until(sim::seconds(3));
  EXPECT_EQ(redundancy.current_primary(), "B");
  EXPECT_EQ(redundancy.failovers().size(), 1u);
}

const char* kQuadRedundantSystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
ecu D mips=1000 memory=64M asil=D network=Net
interface Cmd paradigm=event payload=8 period=10ms
app Pilot class=deterministic asil=D memory=4M replicas=4
  task drive period=10ms wcet=100K priority=1
  provides Cmd
deploy Pilot -> A | B | C | D
)";

TEST(RedundancyFault, StaggeredTimeoutsPromoteExactlyTheFirstStandby) {
  RedundantWorld world(kQuadRedundantSystem);
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  world.simulator.run_until(300 * sim::kMillisecond);

  world.ecu("A").fail();
  world.simulator.run_until(sim::seconds(2));
  // Rank 1 wins the staggered race; ranks 2 and 3 stand down once its
  // heartbeats appear — exactly one promotion.
  EXPECT_EQ(redundancy.current_primary(), "B");
  ASSERT_EQ(redundancy.failovers().size(), 1u);
  EXPECT_EQ(redundancy.failovers()[0].new_primary, 2u);
  EXPECT_FALSE(world.platform->node("C")->instance("Pilot")->app->active());
  EXPECT_FALSE(world.platform->node("D")->instance("Pilot")->app->active());
}

// --- Graceful degradation -----------------------------------------------------

const char* kMixedCriticalitySystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
interface Tick paradigm=event payload=8 period=10ms
app Drive class=deterministic asil=D memory=4M
  task ctrl period=10ms wcet=100K priority=1
  provides Tick
app Infotain class=nondeterministic asil=QM memory=4M
  task ui period=20ms wcet=50K priority=8
deploy Drive -> A
deploy Infotain -> A
)";

struct MixedWorld : World {
  MixedWorld()
      : World(kMixedCriticalitySystem, [] {
          NodeConfig config;
          config.time_triggered = false;
          return config;
        }()) {
    platform->register_app("Drive",
                           [] { return std::make_unique<CounterApp>(); });
    platform->register_app("Infotain",
                           [] { return std::make_unique<NullApp>(); });
    EXPECT_TRUE(platform->install_all());
  }

  bool infotain_running() {
    const auto labels = platform->node("A")->running_instances();
    return std::find(labels.begin(), labels.end(), "Infotain") != labels.end();
  }
};

DegradationConfig fast_degradation() {
  DegradationConfig config;
  config.faults_for_degraded = 3;
  config.faults_for_limp_home = 1000;  // keep the test in DEGRADED
  config.fault_window = 500 * sim::kMillisecond;
  config.recovery_window = 300 * sim::kMillisecond;
  config.evaluation_period = 20 * sim::kMillisecond;
  return config;
}

TEST(Degradation, MonitorFaultsShedNdaLoadAndRecoveryRestoresIt) {
  MixedWorld world;
  DegradationManager degradation(*world.platform, fast_degradation());
  degradation.engage();
  world.simulator.run_until(200 * sim::kMillisecond);
  EXPECT_EQ(degradation.state("A"), HealthState::kOk);
  EXPECT_TRUE(world.infotain_running());

  // A latent bug: the DA control task suddenly runs 300x its nominal time,
  // blowing deadlines. The monitor raises faults; the degradation manager
  // sheds the NDA app to give the DA task the machine.
  const AppInstance* drive = world.platform->node("A")->instance("Drive");
  ASSERT_NE(drive, nullptr);
  os::Processor& cpu = world.ecu("A").processor(drive->core);
  const os::TaskId ctrl = drive->tasks[0];
  cpu.inject_overrun(ctrl, 300.0);
  world.simulator.run_until(230 * sim::kMillisecond);
  cpu.clear_overrun(ctrl);
  world.simulator.run_until(sim::seconds(1));
  EXPECT_EQ(degradation.state("A"), HealthState::kDegraded);
  EXPECT_FALSE(world.infotain_running());
  EXPECT_GE(degradation.apps_shed(), 1u);

  // The overrun cleared; once the aggregate miss ratio sinks back under the
  // contract and the fault window drains, the ECU returns to OK and the
  // shed app restarts.
  world.simulator.run_until(sim::seconds(10));
  EXPECT_EQ(degradation.state("A"), HealthState::kOk);
  EXPECT_TRUE(world.infotain_running());
  EXPECT_GE(degradation.apps_restored(), 1u);
  // The full journey is on record.
  ASSERT_GE(degradation.transitions().size(), 2u);
  EXPECT_EQ(degradation.transitions()[0].to, HealthState::kDegraded);
  EXPECT_EQ(degradation.transitions().back().to, HealthState::kOk);
}

TEST(Degradation, HeartbeatLossForcesStickyLimpHome) {
  MixedWorld world;
  DegradationManager degradation(*world.platform, fast_degradation());
  degradation.engage();
  world.simulator.run_until(100 * sim::kMillisecond);

  degradation.report_heartbeat_loss("A");
  EXPECT_EQ(degradation.state("A"), HealthState::kLimpHome);
  EXPECT_FALSE(world.infotain_running());

  // Limp-home does not self-heal, no matter how quiet the ECU is.
  world.simulator.run_until(sim::seconds(2));
  EXPECT_EQ(degradation.state("A"), HealthState::kLimpHome);

  degradation.reset("A");
  EXPECT_EQ(degradation.state("A"), HealthState::kOk);
  EXPECT_TRUE(world.infotain_running());
}

// --- Campaign engine ----------------------------------------------------------

/// Two ECUs on a CAN bus, no platform: enough surface for every event
/// family except task overruns.
struct MiniRig {
  MiniRig() : bus(sim, "can0", net::CanBusConfig{}) {
    os::EcuConfig config_a;
    config_a.name = "A";
    ecu_a = std::make_unique<os::Ecu>(sim, config_a, &bus, 1);
    os::EcuConfig config_b;
    config_b.name = "B";
    ecu_b = std::make_unique<os::Ecu>(sim, config_b, &bus, 2);
  }

  sim::Simulator sim;
  net::CanBus bus;
  std::unique_ptr<os::Ecu> ecu_a;
  std::unique_ptr<os::Ecu> ecu_b;
};

std::uint64_t run_campaign(std::uint64_t seed, std::size_t* injected_count) {
  MiniRig rig;
  fault::CampaignConfig config;
  config.seed = seed;
  config.horizon = 500 * sim::kMillisecond;
  config.episodes = 10;
  fault::FaultCampaign campaign(rig.sim, config);
  campaign.add_ecu(*rig.ecu_a);
  campaign.add_ecu(*rig.ecu_b);
  campaign.add_medium(rig.bus);
  campaign.generate();
  campaign.arm();
  rig.sim.run_until(sim::seconds(1));
  if (injected_count != nullptr) *injected_count = campaign.injected().size();
  return campaign.fingerprint();
}

TEST(Campaign, SameSeedReproducesBitForBit) {
  std::size_t count_1 = 0;
  std::size_t count_2 = 0;
  const std::uint64_t fp_1 = run_campaign(42, &count_1);
  const std::uint64_t fp_2 = run_campaign(42, &count_2);
  EXPECT_EQ(fp_1, fp_2);
  EXPECT_EQ(count_1, count_2);
  EXPECT_EQ(count_1, 20u);  // 10 episodes = 10 start/end pairs

  const std::uint64_t fp_other = run_campaign(43, nullptr);
  EXPECT_NE(fp_1, fp_other);
}

TEST(Campaign, ScriptedEventsFireAtTheirTimes) {
  MiniRig rig;
  fault::FaultCampaign campaign(rig.sim, fault::CampaignConfig{});
  campaign.add_ecu(*rig.ecu_a);

  fault::FaultEvent crash;
  crash.at = 10 * sim::kMillisecond;
  crash.kind = fault::FaultKind::kEcuCrash;
  crash.target = "A";
  campaign.schedule(crash);
  fault::FaultEvent restart;
  restart.at = 30 * sim::kMillisecond;
  restart.kind = fault::FaultKind::kEcuRestart;
  restart.target = "A";
  campaign.schedule(restart);
  campaign.arm();

  bool was_failed_mid_window = false;
  rig.sim.schedule_at(20 * sim::kMillisecond, [&] {
    was_failed_mid_window = rig.ecu_a->failed();
  });
  rig.sim.run_until(100 * sim::kMillisecond);
  EXPECT_TRUE(was_failed_mid_window);
  EXPECT_FALSE(rig.ecu_a->failed());
  ASSERT_EQ(campaign.injected().size(), 2u);
  EXPECT_EQ(campaign.injected()[0].at, 10 * sim::kMillisecond);
  EXPECT_EQ(campaign.injected()[1].at, 30 * sim::kMillisecond);
  EXPECT_EQ(campaign.injected_count(fault::FaultKind::kEcuCrash), 1u);
}

TEST(Campaign, BabblingIdiotFloodsTheBus) {
  MiniRig rig;
  std::uint64_t flood_frames = 0;
  rig.ecu_b->set_receive_handler([&flood_frames](const net::Frame& frame) {
    if (frame.src == 0xBABB1E) ++flood_frames;
  });
  fault::FaultCampaign campaign(rig.sim, fault::CampaignConfig{});
  campaign.add_medium(rig.bus);
  fault::FaultEvent babble;
  babble.at = 10 * sim::kMillisecond;
  babble.kind = fault::FaultKind::kBabbleStart;
  babble.target = "can0";
  babble.magnitude = 10.0;  // frames per millisecond
  campaign.schedule(babble);
  fault::FaultEvent stop;
  stop.at = 60 * sim::kMillisecond;
  stop.kind = fault::FaultKind::kBabbleEnd;
  stop.target = "can0";
  campaign.schedule(stop);
  campaign.arm();
  rig.sim.run_until(200 * sim::kMillisecond);
  // ~50ms at 10 frames/ms: a flood, then silence after the stop event.
  EXPECT_GT(flood_frames, 50u);
  const std::uint64_t at_stop = flood_frames;
  rig.sim.run_until(400 * sim::kMillisecond);
  EXPECT_EQ(flood_frames, at_stop);
}

// --- Invariant checker --------------------------------------------------------

TEST(Invariants, ReportsViolationsAndPasses) {
  fault::InvariantChecker checker;
  checker.add("always_true", [](std::string&) { return true; });
  checker.add("always_false", [](std::string& detail) {
    detail = "expected failure";
    return false;
  });
  const fault::InvariantReport report = checker.run();
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].passed);
  EXPECT_FALSE(report.results[1].passed);
  EXPECT_NE(report.summary().find("VIOLATED"), std::string::npos);
  EXPECT_NE(report.summary().find("expected failure"), std::string::npos);
}

TEST(Invariants, FlightRecorderDumpsBundleOnFirstViolationOnly) {
  sim::Trace trace;
  trace.metrics().counter("mw.sent").add(5);
  trace.coverage().hit("transport.retransmit", 2);
  trace.record(5 * sim::kMillisecond, sim::TraceCategory::kFault, "ecu/A",
               "heartbeat", 1);

  fault::InvariantChecker checker;
  checker.add("always_true", [](std::string&) { return true; });
  checker.add("brake_chain_alive", [](std::string& detail) {
    detail = "no frames for 40ms";
    return false;
  });
  const std::string path = ::testing::TempDir() + "flight_recorder_test.json";
  std::remove(path.c_str());
  fault::FlightRecorderConfig recorder;
  recorder.trace = &trace;
  recorder.seed = 99;
  recorder.path = path;
  checker.set_flight_recorder(recorder);

  const fault::InvariantReport report = checker.run();
  EXPECT_FALSE(report.passed);
  EXPECT_EQ(report.bundle_path, path);

  // Verdicts landed in the coverage map alongside the transport key.
  EXPECT_EQ(trace.coverage().count("invariant.always_true.pass"), 1u);
  EXPECT_EQ(trace.coverage().count("invariant.brake_chain_alive.fail"), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream raw;
  raw << in.rdbuf();
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(raw.str(), &doc, &error)) << error;
  const obs::json::Value& bundle = doc.at("postmortem");
  EXPECT_DOUBLE_EQ(bundle.at("seed").number, 99.0);
  EXPECT_EQ(bundle.at("verdict").string, "brake_chain_alive");
  EXPECT_EQ(bundle.at("detail").string, "no frames for 40ms");
  EXPECT_DOUBLE_EQ(bundle.at("metrics").at("counters").at("mw.sent").number,
                   5.0);
  EXPECT_DOUBLE_EQ(bundle.at("coverage").at("transport.retransmit").number,
                   2.0);
  ASSERT_EQ(bundle.at("trace_tail").size(), 1u);
  EXPECT_EQ(bundle.at("trace_tail")[0].at("name").string, "heartbeat");

  // A second run() sees the same violation but must not rewrite the bundle:
  // later failures are cascade noise, the first snapshot is the evidence.
  std::remove(path.c_str());
  const fault::InvariantReport again = checker.run();
  EXPECT_FALSE(again.passed);
  EXPECT_TRUE(again.bundle_path.empty());
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(Invariants, FailOperationalPropertiesHoldUnderCrashCampaign) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();

  fault::FaultCampaign campaign(world.simulator, fault::CampaignConfig{});
  campaign.add_ecu(world.ecu("A"));
  fault::FaultEvent crash;
  crash.at = 500 * sim::kMillisecond;
  crash.kind = fault::FaultKind::kEcuCrash;
  crash.target = "A";
  campaign.schedule(crash);
  campaign.arm();
  world.simulator.run_until(sim::seconds(2));

  fault::InvariantChecker checker;
  checker.require_failover_outage_below(redundancy, 200 * sim::kMillisecond);
  checker.require_no_da_deadline_misses(*world.platform);
  checker.require_faults_detected(campaign, *world.platform, &redundancy);
  checker.require_no_stranded_reassembly(*world.platform);
  const fault::InvariantReport report = checker.run();
  EXPECT_TRUE(report.passed) << report.summary();
}

}  // namespace
}  // namespace dynaplat::platform
