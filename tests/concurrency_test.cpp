// Tests for the concurrency subsystem (thread pool, parallel_for, seed
// streams) and for the DSE determinism contract: parallel exploration must
// reproduce the serial result bit-for-bit for the same seed, with and
// without the memoization cache.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "dse/exploration.hpp"
#include "model/parser.hpp"
#include "sim/random.hpp"

namespace dynaplat {
namespace dse {

/// White-box probe (friend of Explorer) so the cross-validation tests can
/// drive the genome-native fast path directly against the full verifier.
class TestProbe {
 public:
  using Genome = std::vector<std::size_t>;
  static model::Assignment decode(const Explorer& e, const Genome& g) {
    return e.decode(g);
  }
  static bool fast_feasible(const Explorer& e, const Genome& g) {
    return e.fast_feasible(g);
  }
  static double fast_cost(const Explorer& e, const Genome& g) {
    return e.fast_feasible(g)
               ? e.genome_soft_cost(g)
               : e.weights_.infeasible_penalty + e.genome_soft_cost(g);
  }
};

}  // namespace dse

namespace {

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  concurrency::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  concurrency::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  concurrency::ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("analysis failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    concurrency::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(executed.load(), 64);
}

// --- parallel_for -------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  concurrency::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  concurrency::parallel_for(&pool, 0, counts.size(), 7,
                            [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, NullPoolRunsInline) {
  std::vector<int> marks(100, 0);
  concurrency::parallel_for(nullptr, 10, 60, 8,
                            [&](std::size_t i) { marks[i] = 1; });
  for (std::size_t i = 0; i < marks.size(); ++i) {
    EXPECT_EQ(marks[i], (i >= 10 && i < 60) ? 1 : 0) << i;
  }
}

TEST(ParallelFor, RethrowsBodyException) {
  concurrency::ThreadPool pool(3);
  EXPECT_THROW(
      concurrency::parallel_for(&pool, 0, 100, 1,
                                [&](std::size_t i) {
                                  if (i == 42) {
                                    throw std::invalid_argument("bad genome");
                                  }
                                }),
      std::invalid_argument);
}

// --- Seed streams -------------------------------------------------------------

TEST(RandomStream, DeterministicAndDistinct) {
  sim::Random a0 = sim::Random::stream(99, 0);
  sim::Random a0_again = sim::Random::stream(99, 0);
  sim::Random a1 = sim::Random::stream(99, 1);
  sim::Random b0 = sim::Random::stream(100, 0);
  const std::uint64_t v0 = a0.next_u64();
  EXPECT_EQ(v0, a0_again.next_u64());  // pure function of (seed, stream)
  EXPECT_NE(v0, a1.next_u64());        // streams decorrelated
  EXPECT_NE(v0, b0.next_u64());        // seeds decorrelated
  sim::Random base(99);
  EXPECT_NE(sim::Random::stream(99, 0).next_u64(), base.next_u64());
}

// Regression: the original stream() mixed seed and stream_id additively
// (seed + stream_id * golden_ratio), so stream(s + gamma, i) collided with
// stream(s, i + 1) — adjacent master seeds shared whole child streams. The
// joint hash must keep every nearby (seed, stream) pair fully decorrelated
// over a real draw prefix, not just the first value.
TEST(RandomStream, AdjacentSeedsShareNoChildStreams) {
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
  constexpr int kDraws = 64;
  const auto prefix = [](sim::Random rng) {
    std::vector<std::uint64_t> draws;
    draws.reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) draws.push_back(rng.next_u64());
    return draws;
  };
  for (const std::uint64_t seed : {1ull, 99ull, 0xDEADBEEFull}) {
    // The historical collision pair, exactly.
    EXPECT_NE(prefix(sim::Random::stream(seed + kGolden, 0)),
              prefix(sim::Random::stream(seed, 1)));
    // And a dense neighborhood: nearby seeds crossed with nearby streams.
    std::vector<std::vector<std::uint64_t>> seen;
    for (std::uint64_t ds = 0; ds < 4; ++ds) {
      for (std::uint64_t id = 0; id < 4; ++id) {
        seen.push_back(prefix(sim::Random::stream(seed + ds, id)));
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      for (std::size_t j = i + 1; j < seen.size(); ++j) {
        EXPECT_NE(seen[i], seen[j]) << "seed=" << seed << " pair " << i
                                    << "," << j;
      }
    }
  }
}

// --- DSE determinism contract -------------------------------------------------

model::ParsedSystem dse_system(int n_apps, int n_ecus) {
  std::string dsl = "network Net kind=ethernet bitrate=1G\n";
  for (int e = 0; e < n_ecus; ++e) {
    dsl += "ecu E" + std::to_string(e) +
           " mips=1000 memory=64M asil=D network=Net\n";
  }
  for (int a = 0; a + 1 < n_apps; ++a) {
    dsl += "interface I" + std::to_string(a) +
           " paradigm=event payload=64 period=10ms\n";
  }
  for (int a = 0; a < n_apps; ++a) {
    dsl += "app A" + std::to_string(a) +
           " class=deterministic asil=B memory=4M\n";
    dsl += "  task t period=10ms wcet=2M priority=" + std::to_string(a % 8) +
           "\n";
    if (a > 0) dsl += "  consumes I" + std::to_string(a - 1) + "\n";
    if (a + 1 < n_apps) dsl += "  provides I" + std::to_string(a) + "\n";
  }
  return model::parse_system(dsl);
}

void expect_identical(const dse::ExplorationResult& serial,
                      const dse::ExplorationResult& parallel) {
  EXPECT_EQ(serial.cost, parallel.cost);  // bit-for-bit, no tolerance
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.assignment.placement, parallel.assignment.placement);
  EXPECT_EQ(serial.candidates_evaluated, parallel.candidates_evaluated);
}

TEST(DseDeterminism, ExhaustiveParallelMatchesSerial) {
  auto sys = dse_system(6, 3);
  dse::Explorer serial_explorer(sys.model);
  dse::Explorer parallel_explorer(sys.model);
  expect_identical(serial_explorer.exhaustive(2'000'000, 0),
                   parallel_explorer.exhaustive(2'000'000, 4));
}

TEST(DseDeterminism, GeneticParallelMatchesSerial) {
  auto sys = dse_system(8, 4);
  dse::Explorer serial_explorer(sys.model);
  dse::Explorer parallel_explorer(sys.model);
  expect_identical(serial_explorer.genetic(16, 25, 7, 0),
                   parallel_explorer.genetic(16, 25, 7, 4));
}

TEST(DseDeterminism, GeneticCacheDoesNotChangeResults) {
  auto sys = dse_system(8, 4);
  dse::Explorer cached(sys.model);
  dse::Explorer uncached(sys.model);
  uncached.set_cache_enabled(false);
  const auto with_cache = cached.genetic(16, 25, 7, 4);
  const auto without_cache = uncached.genetic(16, 25, 7, 0);
  EXPECT_EQ(with_cache.cost, without_cache.cost);
  EXPECT_EQ(with_cache.assignment.placement,
            without_cache.assignment.placement);
  EXPECT_EQ(without_cache.cache_hits, 0u);
  EXPECT_GT(cached.cache_size(), 0u);
}

TEST(DseDeterminism, AnnealingChainsMatchAcrossThreadCounts) {
  auto sys = dse_system(8, 4);
  dse::Explorer serial_explorer(sys.model);
  dse::Explorer parallel_explorer(sys.model);
  expect_identical(serial_explorer.simulated_annealing(1'500, 13, 4, 0),
                   parallel_explorer.simulated_annealing(1'500, 13, 4, 4));
}

TEST(DseDeterminism, RepeatedRunHitsMemoCache) {
  auto sys = dse_system(8, 4);
  dse::Explorer explorer(sys.model);
  const auto first = explorer.genetic(16, 25, 7, 0);
  const auto second = explorer.genetic(16, 25, 7, 0);
  // Identical seed => identical genome sequence => pure cache replay.
  EXPECT_EQ(second.cache_hits, second.candidates_evaluated);
  EXPECT_EQ(first.cost, second.cost);
  explorer.clear_cache();
  EXPECT_EQ(explorer.cache_size(), 0u);
}

// --- Fast-path cross-validation ----------------------------------------------
//
// The memoized evaluation path judges genomes with compiled per-(app, ECU) /
// per-(ECU pair) tables instead of running the string-keyed verifier. It
// must agree with feasible(decode(g)) and cost(decode(g)) bit for bit, on
// systems engineered so every ERROR rule actually fires for some genomes.
// Returns {feasible, infeasible} counts so callers can assert both verdicts
// were exercised.
std::pair<int, int> cross_validate(const model::SystemModel& system,
                                   std::uint64_t samples,
                                   std::uint64_t seed) {
  dse::Explorer explorer(system);
  const std::size_t n_apps = system.apps().size();
  const std::size_t n_ecus = system.ecus().size();
  int feasible_count = 0;
  int infeasible_count = 0;

  const auto check = [&](const std::vector<std::size_t>& genome) {
    const auto assignment = dse::TestProbe::decode(explorer, genome);
    const bool slow = explorer.feasible(assignment);
    const bool fast = dse::TestProbe::fast_feasible(explorer, genome);
    ASSERT_EQ(slow, fast);
    const double slow_cost = explorer.cost(assignment);
    const double fast_cost = dse::TestProbe::fast_cost(explorer, genome);
    ASSERT_EQ(slow_cost, fast_cost);  // bit-for-bit, no tolerance
    if (slow) {
      ++feasible_count;
    } else {
      ++infeasible_count;
    }
  };

  // Exhaust small spaces; sample large ones.
  std::uint64_t space = 1;
  for (std::size_t a = 0; a < n_apps && space <= 4096; ++a) space *= n_ecus;
  if (space <= 4096) {
    std::vector<std::size_t> genome(n_apps, 0);
    for (std::uint64_t k = 0; k < space; ++k) {
      check(genome);
      for (std::size_t d = 0; d < n_apps; ++d) {
        if (++genome[d] < n_ecus) break;
        genome[d] = 0;
      }
    }
  } else {
    sim::Random rng(seed);
    std::vector<std::size_t> genome(n_apps);
    for (std::uint64_t k = 0; k < samples; ++k) {
      for (auto& gene : genome) {
        gene = static_cast<std::size_t>(rng.next_below(n_ecus));
      }
      check(genome);
    }
  }
  return {feasible_count, infeasible_count};
}

TEST(DseFastPath, MatchesVerifierOnBaselineChain) {
  auto sys = dse_system(6, 3);  // full 3^6 sweep
  const auto [ok, bad] = cross_validate(sys.model, 0, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(bad, 0);  // six 0.2-util apps overload any single ECU
}

TEST(DseFastPath, MatchesVerifierOnHeterogeneousFarm) {
  // Every per-(app, ECU) and per-ECU rule can fire: an uncertified ECU
  // (asil=A), a POSIX ECU (rtos rule), an MMU-less ECU, a memory-tight ECU,
  // plus a replicated app and a nondeterministic one.
  const std::string dsl =
      "network Net kind=ethernet bitrate=1G\n"
      "ecu Strong mips=2000 memory=256M asil=D network=Net\n"
      "ecu Uncert mips=2000 memory=256M asil=A network=Net\n"
      "ecu Posix  mips=2000 memory=256M asil=D os=posix network=Net\n"
      "ecu NoMmu  mips=2000 memory=256M asil=D mmu=no network=Net\n"
      "ecu Tiny   mips=2000 memory=6M   asil=D network=Net\n"
      "interface Cmd paradigm=event payload=128 period=10ms\n"
      "app Pilot class=deterministic asil=C memory=4M replicas=2\n"
      "  task t period=10ms wcet=2M\n"
      "  provides Cmd\n"
      "app Logger class=nondeterministic asil=QM memory=4M\n"
      "  task t period=20ms wcet=1M\n"
      "  consumes Cmd\n"
      "app Filter class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=3M\n"
      "  consumes Cmd\n";
  const auto [ok, bad] = cross_validate(model::parse_system(dsl).model, 0, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(bad, 0);
}

TEST(DseFastPath, MatchesVerifierOnNetworkRules) {
  // Two disjoint networks (unreachable pairs), a CAN segment whose latency
  // floor breaks a tight requirement, and stream bandwidth that only fits
  // when the heavy streams stay co-located.
  const std::string dsl =
      "network Eth kind=ethernet bitrate=10M\n"
      "network Bus kind=can bitrate=500K\n"
      "ecu E0 mips=2000 memory=256M asil=D network=Eth\n"
      "ecu E1 mips=2000 memory=256M asil=D network=Eth\n"
      "ecu C0 mips=2000 memory=256M asil=D network=Bus\n"
      "ecu C1 mips=2000 memory=256M asil=D network=Bus\n"
      "interface Video paradigm=stream payload=1400 period=1ms "
      "bandwidth=6M\n"
      "interface Radar paradigm=stream payload=1400 period=1ms "
      "bandwidth=4M\n"
      "interface Brake paradigm=event payload=256 max_latency=100us\n"
      "app Cam asil=B memory=4M\n"
      "  task t period=10ms wcet=1M\n"
      "  provides Video\n"
      "app Rad asil=B memory=4M\n"
      "  task t period=10ms wcet=1M\n"
      "  provides Radar\n"
      "app Fuse asil=B memory=4M\n"
      "  task t period=10ms wcet=1M\n"
      "  consumes Video\n"
      "  consumes Radar\n"
      "  provides Brake\n"
      "app Act asil=B memory=4M\n"
      "  task t period=10ms wcet=1M\n"
      "  consumes Brake\n";
  const auto [ok, bad] = cross_validate(model::parse_system(dsl).model, 0, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(bad, 0);
}

TEST(DseFastPath, MatchesVerifierOnLargeSampledSystem) {
  auto sys = dse_system(12, 6);  // 6^12 genomes: randomized sampling
  const auto [ok, bad] = cross_validate(sys.model, 400, 99);
  EXPECT_GT(ok + bad, 0);
}

TEST(DseFastPath, StaticModelErrorRejectsEveryGenome) {
  // replicas > |ecus| makes redundancy.placement fire for every decoded
  // genome — the fast path's model-level verdict must agree.
  const std::string dsl =
      "network Net kind=ethernet bitrate=1G\n"
      "ecu E0 mips=2000 memory=256M asil=D network=Net\n"
      "ecu E1 mips=2000 memory=256M asil=D network=Net\n"
      "app Trip asil=B memory=4M replicas=3\n"
      "  task t period=10ms wcet=1M\n";
  const auto [ok, bad] = cross_validate(model::parse_system(dsl).model, 0, 0);
  EXPECT_EQ(ok, 0);
  EXPECT_EQ(bad, 2);
}

TEST(DseDeterminism, AnnealingMultiChainNotWorseThanSingle) {
  auto sys = dse_system(8, 4);
  dse::Explorer explorer(sys.model);
  const auto single = explorer.simulated_annealing(1'500, 13, 1, 0);
  const auto multi = explorer.simulated_annealing(1'500, 13, 4, 2);
  // Chain 0 of the multi-chain run is the single-chain run; best-of-chains
  // can only improve on it.
  EXPECT_LE(multi.cost, single.cost + 1e-9);
}

}  // namespace
}  // namespace dynaplat
