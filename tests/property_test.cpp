// Property-based tests: randomized sweeps asserting structural invariants
// of the schedulers, TT synthesis, transport reassembly, CAN arbitration,
// the explorer/verifier contract and platform lifecycle chaos.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dse/exploration.hpp"
#include "dse/schedulability.hpp"
#include "middleware/transport.hpp"
#include "model/parser.hpp"
#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "os/processor.hpp"
#include "platform/platform.hpp"
#include "sim/random.hpp"

namespace dynaplat {
namespace {

// --- TT synthesis invariants over random task sets ------------------------------

class TtSynthesisProperty : public ::testing::TestWithParam<int> {};

TEST_P(TtSynthesisProperty, TablesAreWellFormed) {
  sim::Random rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    // Random harmonic-ish task set, utilization <= 0.8.
    std::vector<dse::AnalysisTask> tasks;
    const int n = 2 + static_cast<int>(rng.next_below(6));
    double budget = 0.8;
    for (int i = 0; i < n; ++i) {
      dse::AnalysisTask task;
      task.name = "t" + std::to_string(i);
      task.period = (1LL << rng.next_below(3)) * 10 * sim::kMillisecond;
      task.deadline = task.period;
      const double share =
          std::min(budget, rng.uniform(0.02, 0.3));
      budget -= share;
      task.wcet = std::max<sim::Duration>(
          1000,
          static_cast<sim::Duration>(share *
                                     static_cast<double>(task.period)));
      task.priority = i;
      task.deterministic = true;
      tasks.push_back(task);
    }
    const auto table = dse::synthesize_tt_table(tasks);
    if (!table) continue;  // fragmentation can legitimately fail

    // Invariant 1: windows sorted and non-overlapping.
    for (std::size_t i = 1; i < table->windows.size(); ++i) {
      EXPECT_GE(table->windows[i].offset,
                table->windows[i - 1].offset + table->windows[i - 1].length);
    }
    // Invariant 2: every job of every task has exactly one window in its
    // period instance, within [release, deadline].
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto& task = tasks[t];
      const auto jobs = table->cycle / task.period;
      std::set<sim::Time> releases_covered;
      for (const auto& window : table->windows) {
        if (window.task != t) continue;
        const sim::Time release =
            (window.offset / task.period) * task.period;
        EXPECT_GE(window.offset, release);
        EXPECT_LE(window.offset + window.length, release + task.deadline);
        EXPECT_TRUE(releases_covered.insert(release).second)
            << "double window for one job";
      }
      EXPECT_EQ(releases_covered.size(),
                static_cast<std::size_t>(jobs));
    }
    // Invariant 3: reserved fraction equals task utilization.
    double utilization = 0.0;
    for (const auto& task : tasks) utilization += task.utilization();
    EXPECT_NEAR(table->reserved_fraction(), utilization, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtSynthesisProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- RTA is a sound bound: simulation never exceeds it --------------------------

class RtaSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RtaSoundness, SimulatedResponseNeverExceedsAnalyticBound) {
  sim::Random rng(static_cast<std::uint64_t>(100 + GetParam()));
  // Rate-monotonic random set, utilization <= 0.7.
  std::vector<dse::AnalysisTask> tasks;
  const int n = 3 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n; ++i) {
    dse::AnalysisTask task;
    task.name = "t" + std::to_string(i);
    task.period = (2 + rng.next_below(20)) * sim::kMillisecond;
    task.deadline = task.period;
    task.wcet = static_cast<sim::Duration>(
        rng.uniform(0.05, 0.7 / n) * static_cast<double>(task.period));
    task.deterministic = true;
    tasks.push_back(task);
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const auto& a, const auto& b) { return a.period < b.period; });
  for (int i = 0; i < n; ++i) tasks[static_cast<std::size_t>(i)].priority = i;

  const auto bounds = dse::response_time_analysis(tasks);
  if (!bounds) return;  // not schedulable: nothing to check

  sim::Simulator simulator;
  os::Processor cpu(simulator, "ecu", os::CpuModel{.mips = 1000},
                    os::make_fixed_priority());
  std::vector<os::TaskId> ids;
  for (const auto& task : tasks) {
    os::TaskConfig config;
    config.name = task.name;
    config.task_class = os::TaskClass::kDeterministic;
    config.period = task.period;
    config.instructions =
        static_cast<std::uint64_t>(task.wcet);  // 1000 MIPS: 1 instr == 1 ns
    config.priority = task.priority;
    ids.push_back(cpu.add_task(config));
  }
  cpu.start();
  simulator.run_until(sim::seconds(5));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    // Allow the context-switch overhead the analysis does not model: every
    // preemption costs two 1 us switches, and a busy period can see a
    // couple of dozen higher-priority releases.
    const double allowance = 1000.0 * 2 * 20 * n + 10.0;
    EXPECT_LE(cpu.stats(ids[i]).response_time.max(),
              static_cast<double>((*bounds)[i]) + allowance)
        << tasks[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaSoundness, ::testing::Values(1, 2, 3, 4));

// --- Transport fuzz ---------------------------------------------------------------

class TransportFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TransportFuzz, SurvivesLossAndReorderingExactly) {
  // Media deliver frames intact or not at all (per-frame CRC is the
  // medium's job), so the transport's contract is: under arbitrary frame
  // *loss* and *reordering*, every delivered message is byte-exact with a
  // sent one, and with zero loss every message arrives exactly once.
  sim::Random rng(static_cast<std::uint64_t>(7000 + GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t mtu = 8 + rng.next_below(1500);
    const double loss = rng.chance(0.5) ? 0.0 : rng.uniform(0.0, 0.2);
    std::vector<net::Frame> wire;
    middleware::Transport tx(
        [&](net::Frame frame) { wire.push_back(std::move(frame)); }, mtu);
    middleware::Transport rx([](net::Frame) {}, mtu);
    std::vector<std::vector<std::uint8_t>> received;
    rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> message) {
      received.push_back(std::move(message));
    });

    std::vector<std::vector<std::uint8_t>> sent;
    const int messages = 1 + static_cast<int>(rng.next_below(5));
    for (int m = 0; m < messages; ++m) {
      std::vector<std::uint8_t> payload(rng.next_below(4000));
      for (auto& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
      }
      sent.push_back(payload);
      tx.send(5, 0, 1, payload);
    }
    // Global shuffle: fragments of different messages interleave.
    for (std::size_t i = wire.size(); i > 1; --i) {
      std::swap(wire[i - 1], wire[rng.next_below(i)]);
    }
    for (const auto& frame : wire) {
      if (loss > 0.0 && rng.chance(loss)) continue;
      rx.on_frame(frame);
    }

    for (const auto& message : received) {
      EXPECT_NE(std::find(sent.begin(), sent.end(), message), sent.end());
    }
    if (loss == 0.0) {
      EXPECT_EQ(received.size(), sent.size());
    } else {
      EXPECT_LE(received.size(), sent.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportFuzz, ::testing::Values(1, 2, 3));

// --- CAN arbitration global ordering --------------------------------------------------

TEST(CanArbitrationProperty, SimultaneousFramesDeliverInIdOrder) {
  sim::Random rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    sim::Simulator simulator;
    net::CanBus bus(simulator, "can", {});
    std::vector<std::uint32_t> order;
    bus.attach(99, [&](const net::Frame& frame) {
      order.push_back(bus.arbitration_id(frame));
    });
    const int frames = 2 + static_cast<int>(rng.next_below(20));
    for (int i = 0; i < frames; ++i) {
      net::Frame frame;
      frame.flow_id = static_cast<std::uint32_t>(rng.next_below(100));
      frame.src = 1;
      frame.priority = static_cast<net::Priority>(rng.next_below(8));
      frame.payload.assign(1 + rng.next_below(8), 0x11);
      bus.send(std::move(frame));
    }
    simulator.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(frames));
    // The very first frame grabbed the idle bus before the rest were
    // queued; from then on every arbitration round picks the globally
    // lowest id, so positions 1..n-1 must be sorted.
    EXPECT_TRUE(std::is_sorted(order.begin() + 1, order.end()));
  }
}

// --- Explorer/Verifier contract ---------------------------------------------------------

TEST(ExplorerProperty, FeasibleResultsPassTheVerifier) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    sim::Random rng(seed);
    std::string dsl = "network Net kind=ethernet bitrate=1G\n";
    const int ecus = 2 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < ecus; ++e) {
      dsl += "ecu E" + std::to_string(e) +
             " mips=1000 memory=128M asil=D network=Net\n";
    }
    const int apps = 3 + static_cast<int>(rng.next_below(6));
    for (int a = 0; a < apps; ++a) {
      dsl += "app A" + std::to_string(a) +
             " class=deterministic asil=B memory=8M\n";
      dsl += "  task t period=10ms wcet=" +
             std::to_string(500 + rng.next_below(1500)) + "K priority=" +
             std::to_string(a % 8) + "\n";
    }
    auto sys = model::parse_system(dsl);
    dse::Explorer explorer(sys.model);
    model::Verifier verifier;
    verifier.set_schedulability_hook(dse::make_verifier_hook());
    for (const auto& result :
         {explorer.greedy(), explorer.simulated_annealing(500, seed),
          explorer.genetic(12, 10, seed)}) {
      if (!result.feasible) continue;
      const auto violations =
          verifier.verify_assignment(sys.model, result.assignment);
      EXPECT_FALSE(model::Verifier::has_errors(violations))
          << result.strategy << " claimed feasible but verifier disagrees";
    }
  }
}

// --- Platform lifecycle chaos ---------------------------------------------------------------

TEST(PlatformChaos, RandomLifecycleSequenceKeepsInvariants) {
  auto parsed = model::parse_system(
      "network Net kind=ethernet bitrate=100M\n"
      "ecu A mips=1000 memory=64M asil=D network=Net\n"
      "interface I1 paradigm=event payload=8 period=10ms\n"
      "app App1 class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=500K priority=1\n"
      "  provides I1\n"
      "app App2 class=nondeterministic asil=QM memory=8M\n"
      "  task t period=20ms wcet=2M priority=9\n"
      "app App3 class=deterministic asil=B memory=4M\n"
      "  task t period=20ms wcet=1M priority=2\n"
      "deploy App1 -> A\n");
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig config{.name = "A", .cpu = {.mips = 1000}};
  os::Ecu ecu(simulator, config, &backbone, 1);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  auto& node = dp.add_node(ecu);
  auto factory = [] { return std::make_unique<platform::Application>(); };
  for (const char* app : {"App1", "App2", "App3"}) {
    dp.register_app(app, factory);
  }
  ASSERT_TRUE(dp.install_all());

  sim::Random rng(777);
  const char* names[] = {"App1", "App2", "App3"};
  for (int step = 0; step < 200; ++step) {
    simulator.run_until(simulator.now() + 5 * sim::kMillisecond);
    const char* app = names[rng.next_below(3)];
    switch (rng.next_below(4)) {
      case 0: {
        const model::AppDef* def = parsed.model.app(app);
        std::string reason;
        node.install(*def, factory, &reason);
        break;
      }
      case 1:
        node.start(app);
        break;
      case 2:
        node.stop(app);
        break;
      case 3:
        node.uninstall(app);
        break;
    }
    // Invariant: memory accounting never exceeds physical memory, the
    // deterministic schedule stays consistent (resync never wedges the
    // processor), and App1 (if running) is still schedulable.
    EXPECT_LE(ecu.memory().reserved(), ecu.memory().total());
  }
  simulator.run_until(simulator.now() + sim::seconds(1));
  // Whatever ended up running keeps meeting deadlines (admission control
  // never let an infeasible combination through).
  auto& cpu = ecu.processor();
  for (os::TaskId id : cpu.task_ids()) {
    if (cpu.config(id).task_class == os::TaskClass::kDeterministic &&
        cpu.stats(id).completions > 10) {
      EXPECT_LT(cpu.stats(id).miss_ratio(), 0.02) << cpu.config(id).name;
    }
  }
}

}  // namespace
}  // namespace dynaplat
