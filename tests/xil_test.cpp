// Tests for the XiL framework: plant physics, PID behaviour, MiL vs SiL
// agreement (Sec. 2.4) and fault-injection effects.
#include <gtest/gtest.h>

#include "xil/plant.hpp"
#include "xil/testbench.hpp"

namespace dynaplat::xil {
namespace {

TEST(VehiclePlant, AcceleratesUnderThrottle) {
  VehiclePlant plant;
  for (int i = 0; i < 100; ++i) plant.step(1.0, 0.0, 0.01);
  EXPECT_GT(plant.speed_mps(), 1.0);
}

TEST(VehiclePlant, BrakesToStandstill) {
  VehiclePlant::Params params;
  params.initial_speed_mps = 30.0;
  VehiclePlant plant(params);
  for (int i = 0; i < 2000; ++i) plant.step(0.0, 1.0, 0.01);
  EXPECT_DOUBLE_EQ(plant.speed_mps(), 0.0);
}

TEST(VehiclePlant, TerminalSpeedLimitedByDrag) {
  VehiclePlant plant;
  for (int i = 0; i < 100000; ++i) plant.step(1.0, 0.0, 0.01);
  const double terminal = plant.speed_mps();
  // v_t = sqrt((F - rolling)/drag) = sqrt((4500-180)/0.42) ~ 101 m/s.
  EXPECT_NEAR(terminal, 101.0, 2.0);
}

TEST(VehiclePlant, DistanceAccumulates) {
  VehiclePlant::Params params;
  params.initial_speed_mps = 10.0;
  params.rolling_resistance_n = 0.0;
  params.drag_coefficient = 0.0;
  VehiclePlant plant(params);
  for (int i = 0; i < 100; ++i) plant.step(0.0, 0.0, 0.01);
  EXPECT_NEAR(plant.distance_m(), 10.0, 0.1);
}

TEST(Pid, DrivesErrorToZero) {
  PidController pid({0.5, 0.1, 0.0, -1.0, 1.0});
  double value = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double out = pid.update(10.0 - value, 0.01);
    value += out * 0.5;  // simple first-order plant
  }
  EXPECT_NEAR(value, 10.0, 0.2);
}

TEST(Pid, OutputClamped) {
  PidController pid({100.0, 0.0, 0.0, -1.0, 1.0});
  EXPECT_EQ(pid.update(1000.0, 0.01), 1.0);
  EXPECT_EQ(pid.update(-1000.0, 0.01), -1.0);
}

TEST(LeadVehicle, TracksCommandedSpeedWithLimitedAccel) {
  LeadVehicle lead(20.0);
  lead.command_speed(10.0);
  lead.step(1.0);
  EXPECT_NEAR(lead.speed_mps(), 17.0, 1e-9);  // limited to 3 m/s^2
  for (int i = 0; i < 10; ++i) lead.step(1.0);
  EXPECT_NEAR(lead.speed_mps(), 10.0, 1e-9);
}

TEST(SignalTrace, SettlingTimeDetected) {
  SignalTrace trace;
  for (int i = 0; i <= 100; ++i) {
    const double v = i < 50 ? static_cast<double>(i) : 50.0;
    trace.record(i * sim::kMillisecond, v);
  }
  const auto settled = trace.settling_time(50.0, 0.6);
  ASSERT_TRUE(settled.has_value());
  EXPECT_LE(*settled, 50 * sim::kMillisecond);
  EXPECT_FALSE(trace.settling_time(80.0, 1.0).has_value());
}

TEST(SignalTrace, OvershootMeasured) {
  SignalTrace trace;
  trace.record(0, 0.0);
  trace.record(1, 12.5);
  trace.record(2, 10.0);
  EXPECT_DOUBLE_EQ(trace.overshoot(10.0), 2.5);
}

// --- MiL -------------------------------------------------------------------------

TEST(Mil, CruiseControlSettlesAtTarget) {
  CruiseScenario scenario;
  scenario.target_speed_mps = 25.0;
  const CruiseResult result = run_mil(scenario);
  ASSERT_TRUE(result.settling_time.has_value());
  EXPECT_LT(result.steady_state_error_mps, 0.5);
  EXPECT_LT(result.overshoot_mps, 5.0);
}

TEST(Mil, ReachesDifferentTargets) {
  for (double target : {10.0, 20.0, 30.0}) {
    CruiseScenario scenario;
    scenario.target_speed_mps = target;
    const CruiseResult result = run_mil(scenario);
    EXPECT_NEAR(result.speed.last(), target, 1.0) << "target " << target;
  }
}

// --- SiL -------------------------------------------------------------------------

TEST(Sil, CruiseControlSettlesLikeMil) {
  CruiseScenario scenario;
  scenario.target_speed_mps = 25.0;
  const CruiseResult mil = run_mil(scenario);
  const CruiseResult sil = run_sil(scenario);
  ASSERT_TRUE(mil.settling_time.has_value());
  ASSERT_TRUE(sil.settling_time.has_value());
  // SiL adds communication + scheduling delay: settling within 20% of MiL.
  const double mil_settle = static_cast<double>(*mil.settling_time);
  const double sil_settle = static_cast<double>(*sil.settling_time);
  EXPECT_LT(std::abs(sil_settle - mil_settle) / mil_settle, 0.2);
  EXPECT_LT(sil.steady_state_error_mps, 1.0);
  EXPECT_EQ(sil.deadline_misses, 0u);
}

TEST(Sil, SurvivesModerateFrameLoss) {
  CruiseScenario scenario;
  scenario.frame_loss_rate = 0.05;
  const CruiseResult result = run_sil(scenario);
  ASSERT_TRUE(result.settling_time.has_value());
  EXPECT_GT(result.frames_dropped, 0u);
  EXPECT_LT(result.steady_state_error_mps, 1.5);
}

TEST(Sil, HeavyFrameLossDegradesControl) {
  CruiseScenario nominal;
  CruiseScenario lossy;
  lossy.frame_loss_rate = 0.6;
  const CruiseResult good = run_sil(nominal);
  const CruiseResult bad = run_sil(lossy);
  // Control quality monotonically degrades with loss.
  EXPECT_GE(bad.steady_state_error_mps, good.steady_state_error_mps);
}

TEST(Sil, BackgroundLoadDoesNotBreakControlUnderTtPlatform) {
  CruiseScenario scenario;
  scenario.background_load_instructions = 1'500'000;  // ~37% of a 200 MIPS ECU
  const CruiseResult result = run_sil(scenario);
  ASSERT_TRUE(result.settling_time.has_value());
  EXPECT_EQ(result.deadline_misses, 0u);
}

TEST(Sil, CostExceedsMilCost) {
  // The SiL level simulates middleware, scheduling and frames: it must
  // execute far more simulation events than MiL's bare loop (E11's ratio).
  CruiseScenario scenario;
  scenario.duration = sim::seconds(10);
  const CruiseResult mil = run_mil(scenario);
  const CruiseResult sil = run_sil(scenario);
  EXPECT_GT(sil.events_executed, 5 * mil.events_executed);
}

class SilTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(SilTargetSweep, TracksTarget) {
  CruiseScenario scenario;
  scenario.target_speed_mps = GetParam();
  const CruiseResult result = run_sil(scenario);
  EXPECT_NEAR(result.speed.last(), GetParam(), 1.5);
}

INSTANTIATE_TEST_SUITE_P(Targets, SilTargetSweep,
                         ::testing::Values(10.0, 20.0, 30.0));

}  // namespace
}  // namespace dynaplat::xil
