// Zero-copy data-path edge cases (ISSUE 6 satellites).
//
// Covers the corners the throughput bench cannot see:
//  * PayloadReader hardening — hostile length prefixes near SIZE_MAX and a
//    randomized truncation sweep over multi-slice chains must always throw,
//    never read out of bounds or decode garbage silently.
//  * Transport id-space edges — 16-bit wrap skipping id 0, a sender reusing
//    an id mid-reassembly, acks for ids the sender never sent.
//  * Size edges — zero-length reliable messages, payloads that exactly fill
//    one fragment.
//  * Wire-format invariance — the headroom-prepend fast path must emit the
//    same bytes as the header-block path it optimizes away.
//  * Determinism — the middleware loopback under ScenarioSweep is
//    bit-identical serial vs parallel (the TSan CI job runs this suite to
//    prove arena refcounts never cross threads).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "middleware/payload.hpp"
#include "middleware/transport.hpp"
#include "net/buffer.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace dynaplat {
namespace {

// --- PayloadReader hardening -------------------------------------------------

// Splits `bytes` into a slice chain at pseudo-random boundaries so the
// reader's cross-slice cursor is exercised; `salt` varies the split points.
net::Payload chain_split(const std::vector<std::uint8_t>& bytes,
                         std::uint64_t salt) {
  net::Payload chain;
  std::uint64_t state = salt * 0x9E3779B97F4A7C15ULL + 1;
  std::size_t at = 0;
  while (at < bytes.size()) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t take =
        std::min<std::size_t>(1 + (state >> 33) % 7, bytes.size() - at);
    net::BufferRef block = net::BufferRef::copy_bytes(bytes.data() + at, take);
    chain.append(block, 0, take);
    at += take;
  }
  return chain;
}

TEST(ReaderOverflow, HostileLengthPrefixCannotWrap) {
  // A length prefix of 0xFFFFFFFF with 4 bytes remaining: pos + len would
  // wrap a naive `pos + n > size` check and read far out of bounds. The
  // reader compares against the remaining count instead.
  middleware::PayloadWriter w;
  w.u32(0xFFFFFFFFu);
  w.raw(reinterpret_cast<const std::uint8_t*>("zzzz"), 4);
  const std::vector<std::uint8_t> bytes = w.bytes();

  {
    middleware::PayloadReader r(bytes);
    EXPECT_THROW(r.str(), std::out_of_range);
  }
  {
    middleware::PayloadReader r(bytes);
    EXPECT_THROW(r.blob(), std::out_of_range);
  }
  // Same prefix arriving as a multi-slice chain (reassembled fragments).
  const net::Payload chained = chain_split(bytes, 3);
  ASSERT_GT(chained.slice_count(), 1u);
  middleware::PayloadReader r(chained);
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(ReaderOverflow, TruncationSweepThrowsNeverDecodesGarbage) {
  // Canonical message touching every scalar width plus both length-prefixed
  // forms. Any strict prefix must throw out_of_range somewhere before the
  // final sentinel — silent success on truncated input is the bug.
  middleware::PayloadWriter w;
  w.u8(0xA5);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.14159);
  w.str("the quick brown fox jumps over the lazy dog");
  std::vector<std::uint8_t> big(100);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  w.blob(big);
  w.u32(0xC0FFEEu);  // sentinel: full decode must reach this
  const std::vector<std::uint8_t> full = w.bytes();

  const auto decode = [&](const net::Payload& p) {
    middleware::PayloadReader r(p);
    EXPECT_EQ(r.u8(), 0xA5);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str(), "the quick brown fox jumps over the lazy dog");
    EXPECT_EQ(r.blob(), big);
    EXPECT_EQ(r.u32(), 0xC0FFEEu);
    EXPECT_TRUE(r.exhausted());
  };

  for (std::size_t len = 0; len <= full.size(); ++len) {
    const std::vector<std::uint8_t> prefix(full.begin(), full.begin() + len);
    const net::Payload chain = chain_split(prefix, len);
    if (len == full.size()) {
      decode(chain);
    } else {
      EXPECT_THROW(decode(chain), std::out_of_range) << "prefix len " << len;
    }
  }
}

// --- Transport id-space and size edges ---------------------------------------

// A transport whose outbound frames land in a vector (no medium, no sim) —
// the construction idiom of the existing unit tests.
struct Capture {
  std::vector<net::Frame> sent;
  std::function<void(net::Frame)> sink() {
    return [this](net::Frame f) { sent.push_back(std::move(f)); };
  }
};

std::uint16_t frame_message_id(const net::Frame& frame) {
  return static_cast<std::uint16_t>(frame.payload[0] |
                                    (frame.payload[1] << 8));
}

net::Frame make_fragment(std::uint16_t id, std::uint16_t index,
                         std::uint16_t count,
                         const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(6 + body.size());
  bytes.push_back(static_cast<std::uint8_t>(id));
  bytes.push_back(static_cast<std::uint8_t>(id >> 8));
  bytes.push_back(static_cast<std::uint8_t>(index));
  bytes.push_back(static_cast<std::uint8_t>(index >> 8));
  bytes.push_back(static_cast<std::uint8_t>(count));
  bytes.push_back(static_cast<std::uint8_t>(count >> 8));
  bytes.insert(bytes.end(), body.begin(), body.end());
  net::Frame frame;
  frame.src = 1;
  frame.dst = 2;
  frame.payload = std::move(bytes);
  return frame;
}

TEST(TransportEdgeCases, MessageIdWrapsAndSkipsZero) {
  // The id allocator must never hand out 0 (the "unused" sentinel of the
  // reassembly map) — after 0xFFFF it wraps straight to 1.
  std::uint16_t prev = 0;
  bool wrapped = false;
  bool saw_zero = false;
  middleware::Transport tx(
      [&](net::Frame frame) {
        const std::uint16_t id = frame_message_id(frame);
        if (id == 0) saw_zero = true;
        if (prev == 0xFFFF) {
          wrapped = true;
          EXPECT_EQ(id, 1u) << "wrap must skip id 0";
        }
        prev = id;
      },
      64);
  for (int i = 0; i < 65600; ++i) {
    tx.send(2, 3, 0, net::Payload{});
  }
  EXPECT_TRUE(wrapped);
  EXPECT_FALSE(saw_zero);
  EXPECT_EQ(tx.messages_sent(), 65600u);
}

TEST(TransportEdgeCases, SenderIdReuseMidReassemblyRestarts) {
  // A rebooted sender reuses message id 7 with a different fragment count
  // while the receiver still holds a partial: the stale partial is dropped
  // (counted as a failure) and reassembly restarts for the new message.
  Capture out;
  middleware::Transport rx(out.sink(), 16);
  std::vector<std::vector<std::uint8_t>> delivered;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> message) {
    delivered.push_back(std::move(message));
  });

  rx.on_frame(make_fragment(7, 0, 2, std::vector<std::uint8_t>(10, 'A')));
  EXPECT_EQ(rx.partial_count(), 1u);

  rx.on_frame(make_fragment(7, 0, 3, std::vector<std::uint8_t>(10, 'B')));
  EXPECT_EQ(rx.reassembly_failures(), 1u);
  EXPECT_EQ(rx.partial_count(), 1u);

  rx.on_frame(make_fragment(7, 1, 3, std::vector<std::uint8_t>(10, 'C')));
  rx.on_frame(make_fragment(7, 2, 3, std::vector<std::uint8_t>(2, 'D')));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(rx.partial_count(), 0u);

  std::vector<std::uint8_t> expected(10, 'B');
  expected.insert(expected.end(), 10, 'C');
  expected.insert(expected.end(), 2, 'D');
  EXPECT_EQ(delivered[0], expected);
}

TEST(TransportEdgeCases, AckForUnknownIdIsIgnored) {
  // Late or forged acks (and unknown control codes) must be no-ops: no
  // delivery, no failure count, no partial state.
  Capture out;
  middleware::Transport rx(out.sink(), 16);
  std::size_t delivered = 0;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t>) { ++delivered; });

  rx.on_frame(make_fragment(999 & 0xFFFF, 0, 0, {}));  // ACK, never sent
  rx.on_frame(make_fragment(42, 5, 0, {}));            // unknown control code
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(rx.messages_received(), 0u);
  EXPECT_EQ(rx.reassembly_failures(), 0u);
  EXPECT_EQ(rx.partial_count(), 0u);

  // A frame too short to carry a header is a reassembly failure, not a read
  // past the buffer.
  net::Frame runt;
  runt.src = 1;
  runt.dst = 2;
  runt.payload = {0x01, 0x02};
  rx.on_frame(runt);
  EXPECT_EQ(rx.reassembly_failures(), 1u);
}

TEST(TransportEdgeCases, PayloadExactlyFillsSingleFragment) {
  // chunk = max_frame_payload - header = 26: a 26-byte message is exactly
  // one full frame; 27 bytes tips into two fragments.
  Capture out;
  middleware::Transport tx(out.sink(), 32);
  middleware::Transport rx([](net::Frame) {}, 32);
  std::vector<std::vector<std::uint8_t>> delivered;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> message) {
    delivered.push_back(std::move(message));
  });

  EXPECT_EQ(tx.fragments_for(26), 1u);
  EXPECT_EQ(tx.fragments_for(27), 2u);

  std::vector<std::uint8_t> boundary(26);
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    boundary[i] = static_cast<std::uint8_t>(0x30 + i);
  }
  tx.send(2, 3, 0, boundary);
  ASSERT_EQ(out.sent.size(), 1u);
  EXPECT_EQ(out.sent[0].payload.size(), 32u);  // header + full chunk

  std::vector<std::uint8_t> over(27, 0x7E);
  tx.send(2, 3, 0, over);
  ASSERT_EQ(out.sent.size(), 3u);
  EXPECT_EQ(out.sent[2].payload.size(), 6u + 1u);  // 1 spill byte

  for (net::Frame& frame : out.sent) {
    frame.src = 1;
    rx.on_frame(frame);
  }
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], boundary);
  EXPECT_EQ(delivered[1], over);
  EXPECT_EQ(rx.partial_count(), 0u);
}

// Two reliable transports joined by a synchronous loopback on one simulator
// (the fault_test Wire idiom, minus loss).
struct Loopback {
  explicit Loopback(middleware::TransportConfig config) {
    a = std::make_unique<middleware::Transport>(
        [this](net::Frame frame) {
          frame.src = 1;
          sim.schedule_in(10 * sim::kMicrosecond,
                          [this, frame] { b->on_frame(frame); });
        },
        16, &sim, config);
    b = std::make_unique<middleware::Transport>(
        [this](net::Frame frame) {
          frame.src = 2;
          sim.schedule_in(10 * sim::kMicrosecond,
                          [this, frame] { a->on_frame(frame); });
        },
        16, &sim, config);
  }

  sim::Simulator sim;
  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
};

TEST(TransportEdgeCases, ZeroLengthReliableMessageRoundTrips) {
  // An empty message still makes a valid reliable transmission: the frame
  // carries only header + CRC trailer, the receiver acks, nothing retries.
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 10 * sim::kMillisecond;
  Loopback wire(config);

  std::size_t delivered = 0;
  std::size_t delivered_bytes = 0;
  wire.b->set_chain_handler([&](net::NodeId src, net::Payload message) {
    ++delivered;
    delivered_bytes += message.size();
    EXPECT_EQ(src, 1u);
  });

  wire.a->send(2, 3, 0, net::Payload{});
  wire.sim.run_until(100 * sim::kMillisecond);

  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(delivered_bytes, 0u);
  EXPECT_EQ(wire.b->acks_sent(), 1u);
  EXPECT_EQ(wire.a->pending_reliable(), 0u);
  EXPECT_EQ(wire.a->retries(), 0u);
  EXPECT_EQ(wire.b->crc_failures(), 0u);
}

// --- Wire-format invariance ---------------------------------------------------

TEST(WireFormat, HeadroomPrependMatchesHeaderBlockPath) {
  // The same message sent through the writer's headroom chain (header
  // prepended in place, one-slice frame) and through the legacy vector API
  // (separate header block) must be byte-identical on the wire.
  Capture chain_out;
  middleware::Transport chain_tx(chain_out.sink(), 1500);
  Capture vector_out;
  middleware::Transport vector_tx(vector_out.sink(), 1500);

  std::vector<std::uint8_t> body(48);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i ^ 0x5A);
  }

  middleware::PayloadWriter writer(chain_tx.arena(), body.size());
  writer.raw(body.data(), body.size());
  chain_tx.send(2, 3, 42, writer.take_chain());
  vector_tx.send(2, 3, 42, body);

  ASSERT_EQ(chain_out.sent.size(), 1u);
  ASSERT_EQ(vector_out.sent.size(), 1u);
  // The prepend fast path fired: header and payload share one slice.
  EXPECT_EQ(chain_out.sent[0].payload.slice_count(), 1u);
  EXPECT_GT(vector_out.sent[0].payload.slice_count(), 1u);
  EXPECT_EQ(chain_out.sent[0].payload.to_vector(),
            vector_out.sent[0].payload.to_vector());
  EXPECT_EQ(net::payload_fnv1a(chain_out.sent[0].payload),
            net::payload_fnv1a(vector_out.sent[0].payload));
}

// --- ScenarioSweep determinism (TSan coverage) --------------------------------

// One scenario: a reliable loopback pair with RNG-driven loss and message
// sizes, fingerprinted over every delivered chain and the transports'
// counters. Run serial (threads 0) and parallel, compare bit-for-bit. The
// TSan CI job runs this test to prove arena blocks and refcounts stay
// scenario-local — any cross-thread sharing is a data race it would flag.
std::uint64_t middleware_scenario_fingerprint(sim::ScenarioRun& run) {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 5 * sim::kMillisecond;
  config.max_retries = 4;

  std::uint64_t fp = 0xCBF29CE484222325ULL ^ run.index;
  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
  a = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 1;
        if (run.rng.chance(0.15)) return;  // lossy wire
        run.simulator.schedule_in(10 * sim::kMicrosecond,
                                  [&b, frame] { b->on_frame(frame); });
      },
      64, &run.simulator, config);
  b = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 2;
        if (run.rng.chance(0.15)) return;
        run.simulator.schedule_in(10 * sim::kMicrosecond,
                                  [&a, frame] { a->on_frame(frame); });
      },
      64, &run.simulator, config);
  b->set_chain_handler([&fp](net::NodeId, net::Payload message) {
    fp = net::payload_fnv1a(message, fp);
  });

  middleware::PayloadWriter writer(a->arena());
  for (int i = 0; i < 30; ++i) {
    const std::size_t size = 1 + run.rng.next_below(200);
    writer.hint(size + 8);
    writer.u64(static_cast<std::uint64_t>(i) << 32 | run.index);
    for (std::size_t n = 0; n < size; n += 8) {
      writer.u64(run.rng.next_u64());
    }
    a->send(2, 3, 7, writer.take_chain());
    run.simulator.run_until(run.simulator.now() + 2 * sim::kMillisecond);
  }
  run.simulator.run_until(run.simulator.now() + 500 * sim::kMillisecond);

  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  fp = (fp ^ b->messages_received()) * kPrime;
  fp = (fp ^ a->retries()) * kPrime;
  fp = (fp ^ a->delivery_failures()) * kPrime;
  fp = (fp ^ b->duplicates_suppressed()) * kPrime;
  fp = (fp ^ b->crc_failures()) * kPrime;
  return fp;
}

TEST(MiddlewareSweep, LoopbackBitIdenticalAcrossThreadCounts) {
  std::vector<std::uint64_t> serial;
  std::vector<std::uint64_t> parallel;
  {
    sim::ScenarioSweep sweep({.seed = 2024, .threads = 0});
    serial =
        sweep.run<std::uint64_t>(12, middleware_scenario_fingerprint);
  }
  {
    sim::ScenarioSweep sweep({.seed = 2024, .threads = 3});
    parallel =
        sweep.run<std::uint64_t>(12, middleware_scenario_fingerprint);
  }
  ASSERT_EQ(serial.size(), 12u);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(sim::ScenarioSweep::merge_fingerprints(serial),
            sim::ScenarioSweep::merge_fingerprints(parallel));
}

}  // namespace
}  // namespace dynaplat
