// Unit tests for the OS substrate: schedulers, processor mechanics, memory
// protection and ECU fault injection.
#include <gtest/gtest.h>

#include <memory>

#include "net/can_bus.hpp"
#include "os/ecu.hpp"
#include "os/memory.hpp"
#include "os/processor.hpp"
#include "os/scheduler.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::os {
namespace {

TaskConfig periodic(const std::string& name, sim::Duration period,
                    std::uint64_t instructions, int priority,
                    TaskClass cls = TaskClass::kDeterministic) {
  TaskConfig c;
  c.name = name;
  c.task_class = cls;
  c.period = period;
  c.instructions = instructions;
  c.priority = priority;
  return c;
}

// --- CpuModel ----------------------------------------------------------------

TEST(CpuModel, DurationScalesInverselyWithMips) {
  CpuModel slow{.mips = 100};
  CpuModel fast{.mips = 1000};
  EXPECT_EQ(slow.duration_for(1'000'000), 10 * sim::kMillisecond);
  EXPECT_EQ(fast.duration_for(1'000'000), sim::kMillisecond);
}

TEST(CpuModel, CryptoAcceleratorSpeedsUpCryptoOnly) {
  CpuModel hsm{.mips = 100, .crypto_accelerator = true, .crypto_speedup = 20};
  EXPECT_EQ(hsm.duration_for_crypto(2'000'000),
            hsm.duration_for(2'000'000 / 20));
  EXPECT_EQ(hsm.duration_for(2'000'000), 20 * sim::kMillisecond);
}

// --- Processor with fixed-priority scheduling ---------------------------------

TEST(Processor, PeriodicTaskRunsEveryPeriod) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  int runs = 0;
  const TaskId id = cpu.add_task(
      periodic("ctl", 10 * sim::kMillisecond, 100'000, 1), [&] { ++runs; });
  cpu.start();
  simulator.run_until(100 * sim::kMillisecond);
  // Releases at 0,10,...,90 and also t=100 fires before run_until returns.
  EXPECT_GE(runs, 10);
  EXPECT_LE(runs, 11);
  EXPECT_EQ(cpu.stats(id).deadline_misses, 0u);
}

TEST(Processor, HigherPriorityPreemptsLower) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  // Low-priority hog: 8 ms of work every 20 ms. High-priority task: 1 ms of
  // work every 5 ms with a 2 ms deadline -- only feasible with preemption.
  auto hog = periodic("hog", 20 * sim::kMillisecond, 800'000, 10,
                      TaskClass::kNonDeterministic);
  auto urgent = periodic("urgent", 5 * sim::kMillisecond, 100'000, 1);
  urgent.deadline = 2 * sim::kMillisecond;
  cpu.add_task(hog);
  const TaskId u = cpu.add_task(urgent);
  cpu.start();
  simulator.run_until(sim::seconds(1));
  EXPECT_EQ(cpu.stats(u).deadline_misses, 0u);
  EXPECT_GT(cpu.stats(u).completions, 150u);
}

TEST(Processor, OverloadedTaskMissesDeadlines) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  // 15 ms of work every 10 ms: structurally infeasible.
  const TaskId id =
      cpu.add_task(periodic("over", 10 * sim::kMillisecond, 1'500'000, 1));
  cpu.start();
  simulator.run_until(200 * sim::kMillisecond);
  EXPECT_GT(cpu.stats(id).deadline_misses, 0u);
}

TEST(Processor, ResponseTimeReflectsExecutionTime) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  // 1 ms of work, alone on the CPU: response time == 1 ms (+ nothing else).
  const TaskId id =
      cpu.add_task(periodic("solo", 10 * sim::kMillisecond, 100'000, 1));
  cpu.start();
  simulator.run_until(100 * sim::kMillisecond);
  EXPECT_NEAR(cpu.stats(id).response_time.mean(),
              static_cast<double>(sim::kMillisecond), 1000.0);
}

TEST(Processor, RemoveTaskStopsReleases) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  int runs = 0;
  const TaskId id = cpu.add_task(
      periodic("t", 10 * sim::kMillisecond, 1000, 1), [&] { ++runs; });
  cpu.start();
  simulator.run_until(35 * sim::kMillisecond);
  const int runs_before = runs;
  cpu.remove_task(id);
  simulator.run_until(200 * sim::kMillisecond);
  EXPECT_EQ(runs, runs_before);
  EXPECT_FALSE(cpu.has_task(id));
}

TEST(Processor, AperiodicReleaseRunsOnce) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  int runs = 0;
  TaskConfig c;
  c.name = "aperiodic";
  c.instructions = 1000;
  c.priority = 3;
  const TaskId id = cpu.add_task(c, [&] { ++runs; });
  cpu.start();
  simulator.schedule_at(5 * sim::kMillisecond, [&] { cpu.release(id); });
  simulator.run_until(50 * sim::kMillisecond);
  EXPECT_EQ(runs, 1);
}

TEST(Processor, SubmitRunsOneShotWork) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  cpu.start();
  bool done = false;
  cpu.submit("verify_sig", 500'000, 5, TaskClass::kNonDeterministic,
             [&] { done = true; });
  simulator.run_until(sim::kMillisecond);  // 5 ms of work not yet finished
  EXPECT_FALSE(done);
  simulator.run_until(10 * sim::kMillisecond);
  EXPECT_TRUE(done);
}

TEST(Processor, UtilizationSumsPeriodicLoad) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  cpu.add_task(periodic("a", 10 * sim::kMillisecond, 100'000, 1));  // 0.1
  cpu.add_task(periodic("b", 20 * sim::kMillisecond, 400'000, 2));  // 0.2
  EXPECT_NEAR(cpu.utilization(), 0.3, 1e-9);
}

TEST(Processor, HaltStopsEverything) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  int runs = 0;
  cpu.add_task(periodic("t", sim::kMillisecond, 100, 1), [&] { ++runs; });
  cpu.start();
  simulator.run_until(10 * sim::kMillisecond);
  cpu.halt();
  const int before = runs;
  simulator.run_until(100 * sim::kMillisecond);
  EXPECT_EQ(runs, before);
}

// --- EDF ----------------------------------------------------------------------

TEST(EdfScheduler, SchedulesFullUtilizationWithoutMisses) {
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100}, make_edf());
  // Total utilization 0.99; EDF must not miss, FP (rate-monotonic bound
  // 0.78 for 3 tasks) likely would for adversarial priorities.
  const TaskId a =
      cpu.add_task(periodic("a", 10 * sim::kMillisecond, 330'000, 9));
  const TaskId b =
      cpu.add_task(periodic("b", 15 * sim::kMillisecond, 495'000, 9));
  const TaskId c =
      cpu.add_task(periodic("c", 30 * sim::kMillisecond, 990'000, 9));
  cpu.start();
  simulator.run_until(sim::seconds(3));
  EXPECT_EQ(cpu.stats(a).deadline_misses, 0u);
  EXPECT_EQ(cpu.stats(b).deadline_misses, 0u);
  EXPECT_EQ(cpu.stats(c).deadline_misses, 0u);
}

// --- Time-triggered -----------------------------------------------------------

TEST(TimeTriggered, TaskRunsOnlyInItsWindow) {
  sim::Simulator simulator;
  // 10 ms cycle; task 1 owns [2ms, 4ms).
  auto tt = std::make_unique<TimeTriggeredScheduler>(
      10 * sim::kMillisecond,
      std::vector<TtWindow>{{2 * sim::kMillisecond, 2 * sim::kMillisecond, 1}});
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100}, std::move(tt));
  sim::Time completed_at = 0;
  const TaskId id = cpu.add_task(
      periodic("da", 10 * sim::kMillisecond, 100'000, 0),
      [&] { completed_at = simulator.now(); });
  ASSERT_EQ(id, 1u);  // table above references TaskId 1
  cpu.start();
  simulator.run_until(9 * sim::kMillisecond);
  // Released at t=0 but window opens at 2 ms; 1 ms work -> completes 3 ms.
  EXPECT_EQ(completed_at, 3 * sim::kMillisecond);
}

TEST(TimeTriggered, BackgroundRunsOutsideWindowsAndIsPreempted) {
  sim::Simulator simulator;
  auto tt = std::make_unique<TimeTriggeredScheduler>(
      10 * sim::kMillisecond,
      std::vector<TtWindow>{{0, 2 * sim::kMillisecond, 1}});
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100}, std::move(tt));
  const TaskId da = cpu.add_task(
      periodic("da", 10 * sim::kMillisecond, 150'000, 0));
  ASSERT_EQ(da, 1u);
  // Background NDA with 9 ms of work per 20 ms: must interleave with DA
  // windows and still make progress.
  const TaskId nda = cpu.add_task(periodic(
      "nda", 20 * sim::kMillisecond, 900'000, 8, TaskClass::kNonDeterministic));
  cpu.start();
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(cpu.stats(da).deadline_misses, 0u);
  EXPECT_GT(cpu.stats(nda).completions, 50u);
  // DA's response time is pinned by its window: always completes ~1.5 ms
  // after release regardless of the hog. The only variation allowed is one
  // context switch (10 us at 100 MIPS) when the window preempts the NDA.
  EXPECT_NEAR(cpu.stats(da).response_time.max(),
              cpu.stats(da).response_time.min(), 15'000.0);
}

TEST(TimeTriggered, InstallTableSwitchesSchedule) {
  sim::Simulator simulator;
  auto tt_owner = std::make_unique<TimeTriggeredScheduler>(
      10 * sim::kMillisecond,
      std::vector<TtWindow>{{0, sim::kMillisecond, 1}});
  auto* tt = tt_owner.get();
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                std::move(tt_owner));
  const TaskId id =
      cpu.add_task(periodic("da", 10 * sim::kMillisecond, 50'000, 0));
  ASSERT_EQ(id, 1u);
  cpu.start();
  simulator.run_until(sim::seconds(1));
  const auto completions_before = cpu.stats(id).completions;
  EXPECT_GT(completions_before, 90u);
  // Move the window to later in the cycle; task keeps meeting deadlines.
  simulator.schedule_at(
      simulator.now() + 1, [&] {
        tt->install_table(10 * sim::kMillisecond,
                          {{5 * sim::kMillisecond, sim::kMillisecond, 1}});
      });
  simulator.run_until(sim::seconds(2));
  EXPECT_GT(cpu.stats(id).completions, completions_before + 90);
  EXPECT_EQ(cpu.stats(id).deadline_misses, 0u);
}

// --- Fair (GPOS) baseline ------------------------------------------------------

TEST(FairScheduler, LoadInflatesDeterministicResponseTime) {
  sim::Simulator simulator;
  // Run the same DA task alone vs. against load under the fair scheduler.
  auto run_scenario = [&](bool with_load) {
    sim::Simulator local_sim;
    Processor cpu(local_sim, "ecu0", CpuModel{.mips = 100},
                  make_fair(sim::kMillisecond));
    auto da = periodic("da", 20 * sim::kMillisecond, 200'000, 0);
    const TaskId id = cpu.add_task(da);
    if (with_load) {
      for (int i = 0; i < 4; ++i) {
        cpu.add_task(periodic("load" + std::to_string(i),
                              20 * sim::kMillisecond, 800'000, 8,
                              TaskClass::kNonDeterministic));
      }
    }
    cpu.start();
    local_sim.run_until(sim::seconds(2));
    return cpu.stats(id).response_time.mean();
  };
  EXPECT_GT(run_scenario(true), 2.0 * run_scenario(false));
}

// --- Memory protection ----------------------------------------------------------

TEST(MemoryManager, QuotaEnforcement) {
  MemoryManager mm(1024, true);
  const ProcessId p = mm.create_process("app", 512);
  ASSERT_NE(p, kInvalidProcess);
  EXPECT_TRUE(mm.allocate(p, 400));
  EXPECT_FALSE(mm.allocate(p, 200));  // would exceed quota
  mm.deallocate(p, 100);
  EXPECT_TRUE(mm.allocate(p, 200));
}

TEST(MemoryManager, PhysicalMemoryLimitsProcessCreation) {
  MemoryManager mm(1024, true);
  EXPECT_NE(mm.create_process("a", 600), kInvalidProcess);
  EXPECT_EQ(mm.create_process("b", 600), kInvalidProcess);
  EXPECT_NE(mm.create_process("c", 400), kInvalidProcess);
}

TEST(MemoryManager, MmuFaultsForeignAccess) {
  MemoryManager mm(1024, true);
  const ProcessId a = mm.create_process("a", 100);
  const ProcessId b = mm.create_process("b", 100);
  EXPECT_EQ(mm.access(a, a), AccessResult::kGranted);
  EXPECT_EQ(mm.access(a, b), AccessResult::kFaulted);
  EXPECT_EQ(mm.faults(), 1u);
}

TEST(MemoryManager, WithoutMmuForeignAccessCorruptsSilently) {
  MemoryManager mm(1024, false);
  const ProcessId a = mm.create_process("a", 100);
  const ProcessId b = mm.create_process("b", 100);
  EXPECT_EQ(mm.access(a, b), AccessResult::kSilentCorruption);
  EXPECT_EQ(mm.corruptions(), 1u);
}

TEST(MemoryManager, KernelAccessesEverything) {
  MemoryManager mm(1024, true);
  const ProcessId a = mm.create_process("a", 100);
  EXPECT_EQ(mm.access(kKernelProcess, a), AccessResult::kGranted);
}

TEST(MemoryManager, DestroyReleasesQuota) {
  MemoryManager mm(1024, true);
  const ProcessId a = mm.create_process("a", 1000);
  mm.destroy_process(a);
  EXPECT_EQ(mm.reserved(), 0u);
  EXPECT_NE(mm.create_process("b", 1000), kInvalidProcess);
}

// --- Ecu -------------------------------------------------------------------------

TEST(Ecu, SendStampsSourceNode) {
  sim::Simulator simulator;
  net::CanBus bus(simulator, "can0", {});
  Ecu ecu(simulator, EcuConfig{.name = "ecu0"}, &bus, 3);
  net::NodeId seen_src = 0;
  bus.attach(9, [&](const net::Frame& f) { seen_src = f.src; });
  net::Frame f;
  f.payload.assign(4, 1);
  ecu.send(std::move(f));
  simulator.run();
  EXPECT_EQ(seen_src, 3u);
}

TEST(Ecu, FailedEcuNeitherSendsNorReceives) {
  sim::Simulator simulator;
  net::CanBus bus(simulator, "can0", {});
  Ecu a(simulator, EcuConfig{.name = "a"}, &bus, 1);
  Ecu b(simulator, EcuConfig{.name = "b"}, &bus, 2);
  int b_received = 0;
  b.set_receive_handler([&](const net::Frame&) { ++b_received; });
  b.fail();
  net::Frame f;
  f.payload.assign(2, 0);
  a.send(std::move(f));
  simulator.run();
  EXPECT_EQ(b_received, 0);
  // And a failed sender emits nothing.
  a.fail();
  net::Frame g;
  g.payload.assign(2, 0);
  a.send(std::move(g));
  simulator.run();
  EXPECT_EQ(bus.frames_delivered(), 1u);  // only the first frame
}

TEST(Ecu, RecoverRestoresOperation) {
  sim::Simulator simulator;
  net::CanBus bus(simulator, "can0", {});
  Ecu ecu(simulator, EcuConfig{.name = "a"}, &bus, 1);
  int received = 0;
  ecu.set_receive_handler([&](const net::Frame&) { ++received; });
  ecu.fail();
  ecu.recover();
  bus.attach(2, [](const net::Frame&) {});
  net::Frame f;
  f.src = 2;
  f.payload.assign(2, 0);
  bus.send(std::move(f));
  simulator.run();
  EXPECT_EQ(received, 1);
}

TEST(Ecu, GeneralPurposeOsUsesFairScheduler) {
  sim::Simulator simulator;
  Ecu ecu(simulator,
          EcuConfig{.name = "gp", .os = OsKind::kGeneralPurpose}, nullptr, 0);
  EXPECT_STREQ(ecu.processor().scheduler().policy_name(), "fair-rr");
}

// --- Property sweep: FP schedulability under increasing utilization -----------

class FpUtilizationSweep : public ::testing::TestWithParam<int> {};

TEST_P(FpUtilizationSweep, RateMonotonicMeetsDeadlinesBelowBound) {
  // n harmonic tasks at total utilization u <= ln(2) are always schedulable
  // under rate-monotonic priorities; verify by simulation.
  const double u_percent = GetParam();
  sim::Simulator simulator;
  Processor cpu(simulator, "ecu0", CpuModel{.mips = 100},
                make_fixed_priority());
  const int n = 4;
  std::vector<TaskId> ids;
  for (int i = 0; i < n; ++i) {
    const sim::Duration period = (5 << i) * sim::kMillisecond;
    const double share = (u_percent / 100.0) / n;
    const auto instructions = static_cast<std::uint64_t>(
        share * static_cast<double>(period) / 1e9 * 100e6);
    ids.push_back(cpu.add_task(
        periodic("t" + std::to_string(i), period, instructions, i)));
  }
  cpu.start();
  simulator.run_until(sim::seconds(2));
  for (TaskId id : ids) {
    EXPECT_EQ(cpu.stats(id).deadline_misses, 0u)
        << "task " << id << " at u=" << u_percent << "%";
  }
}

INSTANTIATE_TEST_SUITE_P(BelowLiuLaylandBound, FpUtilizationSweep,
                         ::testing::Values(10, 30, 50, 65));

}  // namespace
}  // namespace dynaplat::os
