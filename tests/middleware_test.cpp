// Unit + integration tests for the service-oriented middleware: payload
// codec, transport segmentation, discovery, and the three communication
// paradigms of Sec. 2.1 over a simulated Ethernet backbone.
#include <gtest/gtest.h>

#include <memory>

#include "middleware/payload.hpp"
#include "middleware/runtime.hpp"
#include "middleware/transport.hpp"
#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::middleware {
namespace {

// --- Payload codec ------------------------------------------------------------

TEST(Payload, RoundTripsAllTypes) {
  PayloadWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.blob({1, 2, 3});
  const auto bytes = w.bytes();
  PayloadReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Payload, TruncatedReadThrows) {
  PayloadWriter w;
  w.u16(7);
  const auto bytes = w.bytes();
  PayloadReader r(bytes);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Payload, MalformedStringLengthThrows) {
  PayloadWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  const auto bytes = w.bytes();
  PayloadReader r(bytes);
  EXPECT_THROW(r.str(), std::out_of_range);
}

// --- Message header -------------------------------------------------------------

TEST(Message, HeaderRoundTrip) {
  MessageHeader h;
  h.type = MsgType::kRequest;
  h.service = 0x1234;
  h.element = 0x0042;
  h.session = 99;
  h.sender = 7;
  h.auth_tag = 0xA1B2C3D4E5F60718ull;
  const std::vector<std::uint8_t> body{9, 8, 7};
  const auto wire = h.encode(body);
  MessageHeader out;
  std::vector<std::uint8_t> out_body;
  ASSERT_TRUE(MessageHeader::decode(wire, out, out_body));
  EXPECT_EQ(out.type, MsgType::kRequest);
  EXPECT_EQ(out.service, 0x1234);
  EXPECT_EQ(out.element, 0x0042);
  EXPECT_EQ(out.session, 99u);
  EXPECT_EQ(out.sender, 7u);
  EXPECT_EQ(out.auth_tag, 0xA1B2C3D4E5F60718ull);
  EXPECT_EQ(out_body, body);
}

TEST(Message, DecodeRejectsShortOrBadType) {
  MessageHeader h;
  std::vector<std::uint8_t> body;
  EXPECT_FALSE(MessageHeader::decode({1, 2, 3}, h, body));
  std::vector<std::uint8_t> bad(MessageHeader::kWireSize, 0);
  bad[0] = 200;  // invalid MsgType
  EXPECT_FALSE(MessageHeader::decode(bad, h, body));
}

// --- Transport segmentation ------------------------------------------------------

TEST(Transport, SingleFragmentFastPath) {
  std::vector<net::Frame> sent;
  Transport tx([&](net::Frame f) { sent.push_back(std::move(f)); }, 100);
  Transport rx([](net::Frame) {}, 100);
  std::vector<std::uint8_t> received;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> m) {
    received = std::move(m);
  });
  tx.send(5, 0, 1, {1, 2, 3});
  ASSERT_EQ(sent.size(), 1u);
  rx.on_frame(sent[0]);
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Transport, FragmentsAndReassemblesLargeMessage) {
  std::vector<net::Frame> sent;
  Transport tx([&](net::Frame f) { sent.push_back(std::move(f)); }, 64);
  Transport rx([](net::Frame) {}, 64);
  std::vector<std::uint8_t> message(1000);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> received;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> m) {
    received = std::move(m);
  });
  tx.send(5, 0, 1, message);
  EXPECT_EQ(sent.size(), tx.fragments_for(1000));
  EXPECT_GT(sent.size(), 1u);
  for (const auto& frame : sent) rx.on_frame(frame);
  EXPECT_EQ(received, message);
}

TEST(Transport, OutOfOrderFragmentsStillReassemble) {
  std::vector<net::Frame> sent;
  Transport tx([&](net::Frame f) { sent.push_back(std::move(f)); }, 32);
  Transport rx([](net::Frame) {}, 32);
  std::vector<std::uint8_t> message(200, 0x5A);
  int completed = 0;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> m) {
    ++completed;
    EXPECT_EQ(m, message);
  });
  tx.send(5, 0, 1, message);
  ASSERT_GT(sent.size(), 2u);
  // Deliver in reverse order.
  for (auto it = sent.rbegin(); it != sent.rend(); ++it) rx.on_frame(*it);
  EXPECT_EQ(completed, 1);
}

TEST(Transport, CanSizedFramesWork) {
  // 8-byte CAN frames leave 2 payload bytes per fragment.
  std::vector<net::Frame> sent;
  Transport tx([&](net::Frame f) { sent.push_back(std::move(f)); }, 8);
  Transport rx([](net::Frame) {}, 8);
  std::vector<std::uint8_t> message{10, 20, 30, 40, 50};
  std::vector<std::uint8_t> received;
  rx.set_handler([&](net::NodeId, std::vector<std::uint8_t> m) {
    received = std::move(m);
  });
  tx.send(5, 0, 1, message);
  EXPECT_EQ(sent.size(), 3u);  // ceil(5/2)
  for (const auto& f : sent) {
    EXPECT_LE(f.payload.size(), 8u);
    rx.on_frame(f);
  }
  EXPECT_EQ(received, message);
}

TEST(Transport, CorruptFragmentCountsAsFailure) {
  Transport rx([](net::Frame) {}, 64);
  net::Frame junk;
  junk.payload = {1, 2};  // shorter than fragment header
  rx.on_frame(junk);
  EXPECT_EQ(rx.reassembly_failures(), 1u);
}

// --- ServiceRuntime over a simulated backbone -------------------------------------

class RuntimeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    medium_ = std::make_unique<net::EthernetSwitch>(sim_, "eth0",
                                                    net::EthernetConfig{});
    for (int i = 0; i < 3; ++i) {
      os::EcuConfig config;
      config.name = "ecu" + std::to_string(i);
      config.cpu.mips = 1000;
      config.seed = 100 + static_cast<std::uint64_t>(i);
      ecus_.push_back(std::make_unique<os::Ecu>(
          sim_, config, medium_.get(), static_cast<net::NodeId>(i + 1)));
      ecus_.back()->processor().start();
      runtimes_.push_back(std::make_unique<ServiceRuntime>(*ecus_.back()));
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<net::EthernetSwitch> medium_;
  std::vector<std::unique_ptr<os::Ecu>> ecus_;
  std::vector<std::unique_ptr<ServiceRuntime>> runtimes_;
};

TEST_F(RuntimeFixture, OfferPropagatesToAllNodes) {
  runtimes_[0]->offer(42, 3);
  sim_.run_until(10 * sim::kMillisecond);
  for (const auto& rt : runtimes_) {
    const auto provider = rt->provider_of(42);
    ASSERT_TRUE(provider.has_value());
    EXPECT_EQ(*provider, runtimes_[0]->node());
    EXPECT_EQ(rt->provider_version(42).value_or(0), 3u);
  }
}

TEST_F(RuntimeFixture, EventParadigmDeliversToSubscribers) {
  runtimes_[0]->offer(7);
  std::vector<std::uint8_t> got1, got2;
  runtimes_[1]->subscribe(7, 1, [&](std::vector<std::uint8_t> d, net::NodeId) {
    got1 = std::move(d);
  });
  runtimes_[2]->subscribe(7, 1, [&](std::vector<std::uint8_t> d, net::NodeId) {
    got2 = std::move(d);
  });
  sim_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(7, 1, {0xCA, 0xFE});
  sim_.run_until(20 * sim::kMillisecond);
  EXPECT_EQ(got1, (std::vector<std::uint8_t>{0xCA, 0xFE}));
  EXPECT_EQ(got2, (std::vector<std::uint8_t>{0xCA, 0xFE}));
}

TEST_F(RuntimeFixture, SubscribeBeforeOfferBindsDynamically) {
  // Consumer subscribes first; provider appears later (dynamic platform:
  // app installed at runtime). The parked subscription must flush.
  int received = 0;
  runtimes_[1]->subscribe(9, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  sim_.run_until(5 * sim::kMillisecond);
  runtimes_[0]->offer(9);
  sim_.run_until(15 * sim::kMillisecond);
  runtimes_[0]->publish(9, 1, {1});
  sim_.run_until(25 * sim::kMillisecond);
  EXPECT_EQ(received, 1);
}

TEST_F(RuntimeFixture, UnsubscribeStopsDelivery) {
  runtimes_[0]->offer(7);
  int received = 0;
  runtimes_[1]->subscribe(7, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  sim_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(7, 1, {1});
  sim_.run_until(20 * sim::kMillisecond);
  runtimes_[1]->unsubscribe(7, 1);
  sim_.run_until(30 * sim::kMillisecond);
  runtimes_[0]->publish(7, 1, {2});
  sim_.run_until(40 * sim::kMillisecond);
  EXPECT_EQ(received, 1);
}

TEST_F(RuntimeFixture, MessageParadigmRpcRoundTrip) {
  runtimes_[0]->offer(11);
  runtimes_[0]->provide_method(
      11, 2, [](const std::vector<std::uint8_t>& request) {
        // Echo doubled values.
        std::vector<std::uint8_t> response;
        for (auto b : request) response.push_back(static_cast<std::uint8_t>(b * 2));
        return response;
      });
  bool ok = false;
  std::vector<std::uint8_t> response;
  runtimes_[2]->call(11, 2, {1, 2, 3},
                     [&](bool success, std::vector<std::uint8_t> r) {
                       ok = success;
                       response = std::move(r);
                     });
  sim_.run_until(50 * sim::kMillisecond);
  EXPECT_TRUE(ok);
  EXPECT_EQ(response, (std::vector<std::uint8_t>{2, 4, 6}));
}

TEST_F(RuntimeFixture, RpcToUnknownMethodFails) {
  runtimes_[0]->offer(11);
  bool called = false, ok = true;
  runtimes_[1]->call(11, 99, {1},
                     [&](bool success, std::vector<std::uint8_t>) {
                       called = true;
                       ok = success;
                     });
  sim_.run_until(50 * sim::kMillisecond);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(RuntimeFixture, RpcToAbsentServiceTimesOut) {
  bool called = false, ok = true;
  runtimes_[1]->call(77, 1, {},
                     [&](bool success, std::vector<std::uint8_t>) {
                       called = true;
                       ok = success;
                     });
  sim_.run_until(sim::seconds(1));
  // Find timeout expires, parked call dropped and counted.
  EXPECT_GE(runtimes_[1]->failed_calls(), 1u);
  (void)called;
  (void)ok;
}

TEST_F(RuntimeFixture, LocalRpcStaysOnEcu) {
  runtimes_[0]->offer(11);
  runtimes_[0]->provide_method(
      11, 2, [](const std::vector<std::uint8_t>&) {
        return std::vector<std::uint8_t>{42};
      });
  sim_.run_until(5 * sim::kMillisecond);  // let the Offer reach the wire
  const auto sent_before = runtimes_[0]->messages_sent();
  bool ok = false;
  runtimes_[0]->call(11, 2, {}, [&](bool success, std::vector<std::uint8_t>) {
    ok = success;
  });
  sim_.run_until(20 * sim::kMillisecond);
  EXPECT_TRUE(ok);
  // Only the initial Offer went to the wire; the call itself did not.
  EXPECT_EQ(runtimes_[0]->messages_sent(), sent_before);
}

TEST_F(RuntimeFixture, StreamParadigmSequencesAndCountsLosses) {
  runtimes_[0]->offer(13);
  std::vector<std::uint32_t> sequences;
  runtimes_[1]->subscribe_stream(13, 4,
                                 [&](std::uint32_t seq, std::vector<std::uint8_t>) {
                                   sequences.push_back(seq);
                                 });
  sim_.run_until(10 * sim::kMillisecond);
  for (int i = 0; i < 5; ++i) {
    runtimes_[0]->stream_send(13, 4, std::vector<std::uint8_t>(256, 1));
  }
  sim_.run_until(100 * sim::kMillisecond);
  ASSERT_EQ(sequences.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(sequences[i], i);
  EXPECT_EQ(runtimes_[1]->stream_losses(13, 4), 0u);
}

TEST_F(RuntimeFixture, InboundFilterRejectsMessages) {
  runtimes_[0]->offer(7);
  int received = 0;
  runtimes_[1]->subscribe(7, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  sim_.run_until(10 * sim::kMillisecond);
  // Install a filter that rejects all notifications.
  runtimes_[1]->set_inbound_filter(
      [](const MessageHeader& h, const std::vector<std::uint8_t>&) {
        return h.type != MsgType::kNotify;
      });
  runtimes_[0]->publish(7, 1, {1});
  sim_.run_until(30 * sim::kMillisecond);
  EXPECT_EQ(received, 0);
  EXPECT_GE(runtimes_[1]->rejected_messages(), 1u);
}

TEST_F(RuntimeFixture, OutboundTaggerStampsAuthTag) {
  runtimes_[0]->offer(7);
  runtimes_[0]->set_outbound_tagger(
      [](net::NodeId, const MessageHeader&,
         const std::vector<std::uint8_t>&) { return 0xFEEDFACEu; });
  std::uint64_t seen_tag = 0;
  runtimes_[1]->set_inbound_filter(
      [&](const MessageHeader& h, const std::vector<std::uint8_t>&) {
        if (h.type == MsgType::kNotify) seen_tag = h.auth_tag;
        return true;
      });
  runtimes_[1]->subscribe(7, 1,
                          [](std::vector<std::uint8_t>, net::NodeId) {});
  sim_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(7, 1, {1});
  sim_.run_until(30 * sim::kMillisecond);
  EXPECT_EQ(seen_tag, 0xFEEDFACEu);
}

TEST_F(RuntimeFixture, FailedEcuStopsCommunicating) {
  runtimes_[0]->offer(7);
  int received = 0;
  runtimes_[1]->subscribe(7, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  sim_.run_until(10 * sim::kMillisecond);
  ecus_[0]->fail();
  runtimes_[0]->publish(7, 1, {1});
  sim_.run_until(50 * sim::kMillisecond);
  EXPECT_EQ(received, 0);
}

// Parameterized: all three paradigms deliver across payload sizes.
class PayloadSizeSweep : public RuntimeFixture,
                         public ::testing::WithParamInterface<std::size_t> {};

TEST_P(PayloadSizeSweep, EventDeliversAnySize) {
  const std::size_t size = GetParam();
  runtimes_[0]->offer(21);
  std::size_t got = 0;
  runtimes_[1]->subscribe(21, 1, [&](std::vector<std::uint8_t> d, net::NodeId) {
    got = d.size();
  });
  sim_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(21, 1, std::vector<std::uint8_t>(size, 0x7E));
  sim_.run_until(200 * sim::kMillisecond);
  EXPECT_EQ(got, size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizeSweep,
                         ::testing::Values(1, 8, 100, 1400, 1500, 4096,
                                           16384));

}  // namespace
}  // namespace dynaplat::middleware

// --- Field paradigm (appended) --------------------------------------------------

namespace dynaplat::middleware {
namespace {

class FieldFixture : public RuntimeFixture {};

TEST_F(FieldFixture, GetReadsInitialValue) {
  runtimes_[0]->offer(30);
  runtimes_[0]->provide_field(30, 1, {0x11, 0x22});
  bool ok = false;
  std::vector<std::uint8_t> value;
  runtimes_[1]->field_get(30, 1, [&](bool success, std::vector<std::uint8_t> v) {
    ok = success;
    value = std::move(v);
  });
  sim_.run_until(100 * sim::kMillisecond);
  EXPECT_TRUE(ok);
  EXPECT_EQ(value, (std::vector<std::uint8_t>{0x11, 0x22}));
}

TEST_F(FieldFixture, SetUpdatesProviderAndNotifiesSubscribers) {
  runtimes_[0]->offer(30);
  runtimes_[0]->provide_field(30, 1, {0});
  std::vector<std::uint8_t> observed;
  int notifications = 0;
  runtimes_[2]->subscribe_field(30, 1,
                                [&](std::vector<std::uint8_t> v, net::NodeId) {
                                  observed = std::move(v);
                                  ++notifications;
                                });
  sim_.run_until(100 * sim::kMillisecond);
  EXPECT_EQ(notifications, 1);  // initial seed read
  bool set_ok = false;
  runtimes_[1]->field_set(30, 1, {0x77},
                          [&](bool success, std::vector<std::uint8_t>) {
                            set_ok = success;
                          });
  sim_.run_until(300 * sim::kMillisecond);
  EXPECT_TRUE(set_ok);
  EXPECT_EQ(runtimes_[0]->field_value(30, 1).value_or(std::vector<std::uint8_t>{}),
            (std::vector<std::uint8_t>{0x77}));
  EXPECT_EQ(notifications, 2);
  EXPECT_EQ(observed, (std::vector<std::uint8_t>{0x77}));
}

TEST_F(FieldFixture, GetOnAbsentFieldFails) {
  runtimes_[0]->offer(30);
  bool called = false, ok = true;
  runtimes_[1]->field_get(30, 9, [&](bool success, std::vector<std::uint8_t>) {
    called = true;
    ok = success;
  });
  sim_.run_until(300 * sim::kMillisecond);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace dynaplat::middleware
