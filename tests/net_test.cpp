// Unit tests for the network media models: CAN arbitration, Ethernet
// priority queuing, TSN gating and FlexRay segments.
#include <gtest/gtest.h>

#include <vector>

#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "net/flexray.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::net {
namespace {

Frame make_frame(std::uint32_t flow, NodeId src, NodeId dst, Priority prio,
                 std::size_t bytes) {
  Frame f;
  f.flow_id = flow;
  f.src = src;
  f.dst = dst;
  f.priority = prio;
  f.payload.assign(bytes, 0xAB);
  return f;
}

// --- CAN ---------------------------------------------------------------------

TEST(CanBus, FrameDurationMatchesBitModel) {
  sim::Simulator simulator;
  CanBus bus(simulator, "can0", CanBusConfig{500'000, 0x80});
  // 8-byte frame: 44 + 64 data bits + stuff((34+64-1)/4 = 24) + 3 ifs
  // = 135 bits at 500 kbit/s = 270 us.
  EXPECT_EQ(bus.frame_duration(8), 270'000);
  // 0-byte frame: 44 + 8 stuff + 3 = 55 bits = 110 us.
  EXPECT_EQ(bus.frame_duration(0), 110'000);
}

TEST(CanBus, DeliversBroadcastToAllExceptSender) {
  sim::Simulator simulator;
  CanBus bus(simulator, "can0", {});
  int node1_rx = 0, node2_rx = 0, sender_rx = 0;
  bus.attach(0, [&](const Frame&) { ++sender_rx; });
  bus.attach(1, [&](const Frame&) { ++node1_rx; });
  bus.attach(2, [&](const Frame&) { ++node2_rx; });
  bus.send(make_frame(1, 0, kBroadcast, 0, 8));
  simulator.run();
  EXPECT_EQ(node1_rx, 1);
  EXPECT_EQ(node2_rx, 1);
  EXPECT_EQ(sender_rx, 0);
}

TEST(CanBus, LowerIdWinsArbitration) {
  sim::Simulator simulator;
  CanBus bus(simulator, "can0", {});
  std::vector<std::uint32_t> order;
  bus.attach(9, [&](const Frame& f) { order.push_back(f.flow_id); });
  // Occupy the bus, then enqueue high- and low-priority frames; the
  // low-priority one was submitted first but must lose arbitration.
  bus.send(make_frame(50, 1, kBroadcast, 3, 8));
  bus.send(make_frame(60, 2, kBroadcast, 7, 8));  // low prio, sent first
  bus.send(make_frame(70, 3, kBroadcast, 0, 8));  // high prio, sent second
  simulator.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 50u);
  EXPECT_EQ(order[1], 70u);  // priority 0 beat priority 7
  EXPECT_EQ(order[2], 60u);
}

TEST(CanBus, NonPreemptiveBlockingDelaysUrgentFrameByOneFrame) {
  sim::Simulator simulator;
  CanBus bus(simulator, "can0", {});
  sim::Time urgent_delivered = 0;
  bus.attach(9, [&](const Frame& f) {
    if (f.flow_id == 2) urgent_delivered = simulator.now();
  });
  bus.send(make_frame(1, 1, kBroadcast, 7, 8));  // starts transmitting
  simulator.schedule_at(1000, [&] {
    bus.send(make_frame(2, 2, kBroadcast, 0, 8));  // urgent, must wait
  });
  simulator.run();
  // Urgent frame waits for the in-flight frame (270us) then transmits.
  EXPECT_EQ(urgent_delivered, 270'000 + 270'000);
}

TEST(CanBus, PerFlowFifoOrderPreserved) {
  sim::Simulator simulator;
  CanBus bus(simulator, "can0", {});
  std::vector<std::uint64_t> seqs;
  bus.attach(9, [&](const Frame& f) { seqs.push_back(f.seq); });
  for (int i = 0; i < 5; ++i) bus.send(make_frame(7, 1, kBroadcast, 2, 4));
  simulator.run();
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_LT(seqs[i - 1], seqs[i]);
}

TEST(CanBusFd, CarriesUpTo64BytesFasterThanClassic) {
  sim::Simulator simulator;
  CanBusConfig fd_config;
  fd_config.fd = true;
  fd_config.data_bitrate_bps = 2'000'000;
  CanBus fd(simulator, "canfd", fd_config);
  CanBus classic(simulator, "can", CanBusConfig{});
  EXPECT_EQ(fd.max_payload(), 64u);
  // An 8-byte FD frame beats the classic frame (data phase at 4x rate).
  EXPECT_LT(fd.frame_duration(8), classic.frame_duration(8));
  // 64 bytes in one FD frame beat 8 classic frames.
  EXPECT_LT(fd.frame_duration(64), 8 * classic.frame_duration(8));
}

TEST(CanBusFd, DeliversLargeFrames) {
  sim::Simulator simulator;
  CanBusConfig config;
  config.fd = true;
  CanBus bus(simulator, "canfd", config);
  std::size_t got = 0;
  bus.attach(9, [&](const Frame& f) { got = f.payload.size(); });
  bus.send(make_frame(1, 1, kBroadcast, 0, 64));
  simulator.run();
  EXPECT_EQ(got, 64u);
}

TEST(CanBus, LatencyStatsArePopulated) {
  sim::Simulator simulator;
  CanBus bus(simulator, "can0", {});
  bus.attach(9, [](const Frame&) {});
  bus.send(make_frame(1, 1, kBroadcast, 0, 8));
  simulator.run();
  EXPECT_EQ(bus.frames_delivered(), 1u);
  EXPECT_EQ(bus.latency_stats().count(), 1u);
  EXPECT_EQ(bus.latency_stats().mean(), 270'000.0);
}

// --- Ethernet ----------------------------------------------------------------

TEST(Ethernet, UnicastReachesOnlyDestination) {
  sim::Simulator simulator;
  EthernetSwitch sw(simulator, "eth0", {});
  int rx1 = 0, rx2 = 0;
  sw.attach(1, [&](const Frame&) { ++rx1; });
  sw.attach(2, [&](const Frame&) { ++rx2; });
  sw.attach(3, [](const Frame&) {});
  sw.send(make_frame(1, 3, 1, 0, 100));
  simulator.run();
  EXPECT_EQ(rx1, 1);
  EXPECT_EQ(rx2, 0);
}

TEST(Ethernet, LatencyIncludesTwoHopsAndProcessing) {
  sim::Simulator simulator;
  EthernetConfig config;
  config.link_bps = 100'000'000;
  config.processing_delay = 2'000;
  config.propagation_delay = 100;
  EthernetSwitch sw(simulator, "eth0", config);
  sim::Time delivered = 0;
  sw.attach(1, [&](const Frame&) { delivered = simulator.now(); });
  sw.attach(2, [](const Frame&) {});
  sw.send(make_frame(1, 2, 1, 0, 100));
  simulator.run();
  // On wire: (100+22+20) bytes * 8 = 1136 bits at 100 Mbit/s = 11.36 us per
  // hop; two hops + processing + 2x propagation.
  const sim::Duration hop = sw.frame_duration(100);
  EXPECT_EQ(delivered, 2 * hop + config.processing_delay +
                           2 * config.propagation_delay);
}

TEST(Ethernet, StrictPriorityServesUrgentFirst) {
  sim::Simulator simulator;
  EthernetConfig config;
  config.link_bps = 10'000'000;  // slow link to force queuing
  EthernetSwitch sw(simulator, "eth0", config);
  std::vector<Priority> order;
  sw.attach(1, [&](const Frame& f) { order.push_back(f.priority); });
  sw.attach(2, [](const Frame&) {});
  sw.attach(3, [](const Frame&) {});
  // Node 2 floods bulk frames; node 3 sends one urgent frame. Ingress links
  // are separate, so all arrive at the egress port around the same time.
  for (int i = 0; i < 5; ++i) sw.send(make_frame(10, 2, 1, 7, 1400));
  sw.send(make_frame(20, 3, 1, 0, 64));
  simulator.run();
  ASSERT_EQ(order.size(), 6u);
  // The urgent frame overtakes all queued bulk frames except at most the one
  // already serializing on the egress link.
  std::size_t urgent_pos = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 0) urgent_pos = i;
  }
  EXPECT_LE(urgent_pos, 1u);
}

TEST(Ethernet, EgressQueueOverflowDrops) {
  sim::Simulator simulator;
  EthernetConfig config;
  config.link_bps = 10'000'000;
  config.queue_capacity = 4;
  EthernetSwitch sw(simulator, "eth0", config);
  sw.attach(1, [](const Frame&) {});
  sw.attach(2, [](const Frame&) {});
  sw.attach(3, [](const Frame&) {});
  // Two ingress links feed one egress link at 2x its drain rate: the egress
  // queue must overflow.
  for (int i = 0; i < 50; ++i) {
    sw.send(make_frame(1, 2, 1, 7, 1400));
    sw.send(make_frame(2, 3, 1, 7, 1400));
  }
  simulator.run();
  EXPECT_GT(sw.egress_drops(), 0u);
  EXPECT_LT(sw.frames_delivered(), 100u);
}

TEST(Ethernet, TsnGateBlocksLowPriorityDuringTtWindow) {
  sim::Simulator simulator;
  EthernetConfig config;
  config.link_bps = 100'000'000;
  EthernetSwitch sw(simulator, "eth0", config);
  // 1 ms cycle, first 200 us exclusive to priority 0.
  sw.set_gate_control(1, GateControlList::tt_window(sim::kMillisecond,
                                                    200 * sim::kMicrosecond,
                                                    0));
  sim::Time bulk_delivered = 0;
  sw.attach(1, [&](const Frame& f) {
    if (f.priority == 7) bulk_delivered = simulator.now();
  });
  sw.attach(2, [](const Frame&) {});
  // A bulk frame arriving during the TT window must wait for the window end.
  sw.send(make_frame(1, 2, 1, 7, 100));
  simulator.run();
  EXPECT_GE(bulk_delivered, 200 * sim::kMicrosecond);
}

TEST(Ethernet, TsnTtFrameSailsThroughItsWindow) {
  sim::Simulator simulator;
  EthernetSwitch sw(simulator, "eth0", {});
  sw.set_gate_control(1, GateControlList::tt_window(sim::kMillisecond,
                                                    200 * sim::kMicrosecond,
                                                    0));
  sim::Time delivered = 0;
  sw.attach(1, [&](const Frame&) { delivered = simulator.now(); });
  sw.attach(2, [](const Frame&) {});
  sw.send(make_frame(1, 2, 1, 0, 64));
  simulator.run();
  // Delivered within the first TT window.
  EXPECT_LT(delivered, 200 * sim::kMicrosecond);
}

// --- FlexRay -----------------------------------------------------------------

TEST(FlexRay, StaticSlotDeliversAtSlotBoundary) {
  sim::Simulator simulator;
  FlexRayConfig config;
  config.static_slots = 4;
  config.static_slot_duration = 100 * sim::kMicrosecond;
  config.minislots = 10;
  config.minislot_duration = 10 * sim::kMicrosecond;
  FlexRayBus bus(simulator, "fr0", config);
  bus.assign_static_slot(2, 77);  // flow 77 owns slot 2
  sim::Time delivered = 0;
  bus.attach(1, [&](const Frame&) { delivered = simulator.now(); });
  bus.attach(2, [](const Frame&) {});
  bus.send(make_frame(77, 2, kBroadcast, 0, 16));
  simulator.run();
  // First cycle starts at t=0 (send at t=0); slot 2 ends at 300 us.
  EXPECT_EQ(delivered, 300 * sim::kMicrosecond);
}

TEST(FlexRay, StaticLatencyIndependentOfDynamicLoad) {
  sim::Simulator simulator;
  FlexRayConfig config;
  FlexRayBus bus(simulator, "fr0", config);
  bus.assign_static_slot(0, 5);
  sim::Time st_delivered = 0;
  bus.attach(1, [&](const Frame& f) {
    if (f.flow_id == 5) st_delivered = simulator.now();
  });
  bus.attach(2, [](const Frame&) {});
  // Saturate the dynamic segment.
  for (int i = 0; i < 100; ++i) {
    bus.send(make_frame(1000 + static_cast<std::uint32_t>(i), 2, kBroadcast,
                        7, 200));
  }
  bus.send(make_frame(5, 2, kBroadcast, 0, 16));
  simulator.run();
  EXPECT_EQ(st_delivered, config.static_slot_duration);  // end of slot 0
}

TEST(FlexRay, DynamicSegmentArbitratesByPriority) {
  sim::Simulator simulator;
  FlexRayConfig config;
  config.minislots = 4;  // room for few frames per cycle
  FlexRayBus bus(simulator, "fr0", config);
  std::vector<std::uint32_t> order;
  bus.attach(1, [&](const Frame& f) { order.push_back(f.flow_id); });
  bus.attach(2, [](const Frame&) {});
  bus.send(make_frame(100, 2, kBroadcast, 6, 8));
  bus.send(make_frame(200, 2, kBroadcast, 1, 8));
  simulator.run();
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 200u);  // higher priority first despite later send
}

TEST(FlexRay, OversizedDynamicFrameWaitsForNextCycle) {
  sim::Simulator simulator;
  FlexRayConfig config;
  config.minislots = 2;
  config.minislot_duration = 10 * sim::kMicrosecond;
  FlexRayBus bus(simulator, "fr0", config);
  int delivered = 0;
  bus.attach(1, [&](const Frame&) { ++delivered; });
  bus.attach(2, [](const Frame&) {});
  // Each 200-byte frame at 10 Mbit/s takes 168 us > 2 minislots; it can
  // never fit and must not be delivered (bounded starvation surfaces as a
  // stuck queue rather than infinite events).
  bus.send(make_frame(1, 2, kBroadcast, 5, 8));  // small frame fits
  simulator.run_until(10 * sim::kMillisecond);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace dynaplat::net
