// Unit tests for the discrete-event simulation kernel, RNG and statistics.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

namespace dynaplat::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(30, [&] { order.push_back(3); });
  simulator.schedule_at(10, [&] { order.push_back(1); });
  simulator.schedule_at(20, [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
}

TEST(Simulator, SameTimestampFiresInScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(10, [&] { order.push_back(1); });
  simulator.schedule_at(10, [&] { order.push_back(2); });
  simulator.schedule_at(10, [&] { order.push_back(3); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator simulator;
  Time fired_at = -1;
  simulator.schedule_at(100, [&] {
    simulator.schedule_in(50, [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(simulator.cancel(id));
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(simulator.cancel(id));  // second cancel is a no-op
}

TEST(Simulator, RecurrenceFiresPeriodically) {
  Simulator simulator;
  int count = 0;
  const EventId id = simulator.schedule_every(5, 10, [&] { ++count; });
  simulator.run_until(45);
  EXPECT_EQ(count, 5);  // t = 5, 15, 25, 35, 45
  simulator.cancel(id);
  simulator.run_until(100);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, RecurrenceCanCancelItself) {
  Simulator simulator;
  int count = 0;
  EventId id;
  id = simulator.schedule_every(1, 1, [&] {
    if (++count == 3) simulator.cancel(id);
  });
  simulator.run_until(100);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockToBound) {
  Simulator simulator;
  simulator.schedule_at(10, [] {});
  simulator.run_until(500);
  EXPECT_EQ(simulator.now(), 500);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator simulator;
  bool late_fired = false;
  simulator.schedule_at(1000, [&] { late_fired = true; });
  simulator.run_until(500);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(simulator.pending(), 1u);
  simulator.run();
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator simulator;
  int count = 0;
  simulator.schedule_every(1, 1, [&] {
    if (++count == 10) simulator.stop();
  });
  simulator.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsExecutedCountsFiredOnly) {
  Simulator simulator;
  simulator.schedule_at(1, [] {});
  const EventId cancelled = simulator.schedule_at(2, [] {});
  simulator.cancel(cancelled);
  simulator.run();
  EXPECT_EQ(simulator.events_executed(), 1u);
}

// --- Event-order determinism regression ------------------------------------
//
// Golden FNV-1a fingerprint over the (time, firing-index) total order of a
// mixed scenario: two periodics, one-shots, cancel-inside-own-callback (both
// the one-shot and the recurrence flavour), cancellation of a pending event
// from another callback, same-timestamp FIFO ties, and the run_until clock
// edge cases (re-run at the same bound, bound with no events, event exactly
// at the bound, stop() inside run_until). The constant below was captured
// from the pre-slab tombstone kernel; any kernel change that alters the
// firing order, the cancel return values, pending() accounting or the
// run_until clock semantics changes the hash and fails this test.
namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

std::uint64_t run_fingerprint_scenario() {
  Fnv1a fp;
  Simulator s;
  auto mark = [&](std::uint64_t tag) {
    fp.mix(tag);
    fp.mix(static_cast<std::uint64_t>(s.now()));
    fp.mix(s.events_executed());
    fp.mix(s.pending());
  };
  auto mark_cancel = [&](bool cancelled) { fp.mix(cancelled ? 0xC1 : 0xC0); };

  // Periodic A fires at 5, 12, 19; cancelled externally at t=21.
  const EventId a = s.schedule_every(5, 7, [&] { mark(1); });
  // Periodic B fires at 3, 8, 13, 18 and cancels itself mid-fire on the 4th.
  int b_count = 0;
  EventId b;
  b = s.schedule_every(3, 5, [&] {
    mark(2);
    if (++b_count == 4) mark_cancel(s.cancel(b));
  });
  // One-shot C at t=20 is cancelled before firing by the t=10 event.
  const EventId c = s.schedule_at(20, [&] { mark(3); });
  // One-shot at t=10 schedules a same-timestamp one-shot (FIFO tie) and
  // cancels C.
  s.schedule_at(10, [&] {
    mark(4);
    s.schedule_at(10, [&] { mark(5); });
    mark_cancel(s.cancel(c));
  });
  // One-shot D cancels itself while executing (no-op: already dequeued).
  EventId d;
  d = s.schedule_at(12, [&] {
    mark(6);
    mark_cancel(s.cancel(d));
  });
  // Periodic E fires at 4, 10; cancelled from another callback at t=15.
  const EventId e = s.schedule_every(4, 6, [&] { mark(7); });
  s.schedule_at(15, [&] {
    mark(8);
    mark_cancel(s.cancel(e));
  });
  s.schedule_at(21, [&] {
    mark(12);
    mark_cancel(s.cancel(a));
  });

  s.run_until(10);
  mark(100);
  s.run_until(10);  // re-run at the same bound: no-op, clock stays
  mark(101);
  s.run_until(11);  // bound with no events: clock still advances
  mark(102);
  s.schedule_at(22, [&] { mark(9); });
  s.run_until(22);  // event exactly at the bound fires
  mark(103);
  s.schedule_at(24, [&] {
    mark(10);
    s.stop();
  });
  s.schedule_at(26, [&] { mark(11); });
  s.run_until(40);  // stop() fires at 24; clock advances to the bound anyway
  mark(104);
  s.run();  // drains the leftover t=26 event
  mark(105);
  return fp.h;
}

}  // namespace

TEST(Simulator, GoldenEventOrderFingerprint) {
  // Captured from the pre-change kernel (priority_queue + tombstones); the
  // slab/indexed-heap kernel must preserve it bit for bit.
  constexpr std::uint64_t kGolden = 0xc2dcf1ddca96c36bull;
  EXPECT_EQ(run_fingerprint_scenario(), kGolden);
}

TEST(Simulator, FingerprintScenarioIsReproducible) {
  EXPECT_EQ(run_fingerprint_scenario(), run_fingerprint_scenario());
}

// --- Slab / generation-handle behaviour ------------------------------------

TEST(Simulator, StaleHandleAfterSlotReuseIsSafe) {
  Simulator simulator;
  int fired = 0;
  const EventId first = simulator.schedule_at(10, [&] { ++fired; });
  ASSERT_TRUE(simulator.cancel(first));
  // The freed slot is reused by the next event; the stale handle must not
  // cancel the new occupant.
  const EventId second = simulator.schedule_at(20, [&] { ++fired; });
  EXPECT_FALSE(simulator.cancel(first));
  EXPECT_FALSE(simulator.cancel(first));  // idempotent
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(simulator.cancel(second));  // already fired
}

TEST(Simulator, HandleOfFiredEventGoesStale) {
  Simulator simulator;
  const EventId id = simulator.schedule_at(5, [] {});
  simulator.run();
  EXPECT_FALSE(simulator.cancel(id));
}

TEST(Simulator, CancelHeavyWorkloadDoesNotGrowQueueOrSlab) {
  // The acked-retry-timer pattern: schedule a timeout, cancel it almost
  // immediately, repeat. The tombstone kernel grew its priority_queue
  // linearly here; the indexed heap must stay flat.
  Simulator simulator;
  for (int round = 0; round < 100000; ++round) {
    const EventId timer =
        simulator.schedule_in(1000000, [] { FAIL() << "timer leaked"; });
    ASSERT_TRUE(simulator.cancel(timer));
    EXPECT_EQ(simulator.pending(), 0u);
  }
  // One chunk of slab capacity serves the whole workload via the free list.
  EXPECT_LE(simulator.slab_capacity(), 256u);
}

TEST(Simulator, LargeCaptureCallbackFallsBackToHeapCorrectly) {
  Simulator simulator;
  std::array<std::uint64_t, 16> payload{};  // 128 bytes: exceeds inline SBO
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i + 1;
  std::uint64_t sum = 0;
  static_assert(!InlineFunction::fits_inline<decltype([payload, &sum] {})>());
  simulator.schedule_at(1, [payload, &sum] {
    for (std::uint64_t v : payload) sum += v;
  });
  simulator.run();
  EXPECT_EQ(sum, 136u);
}

TEST(Simulator, RecurrenceRearmsWithoutCopyingCallback) {
  // A move-only capture proves the kernel never copies the callable: the
  // old kernel copied it on every firing and would not compile this.
  Simulator simulator;
  int count = 0;
  auto token = std::make_unique<int>(42);  // move-only capture
  EventId tick;
  tick = simulator.schedule_every(
      10, 10, [held = std::move(token), &count, &simulator, &tick] {
        if (++count == 3) simulator.cancel(tick);
      });
  simulator.run();
  EXPECT_EQ(count, 3);
}

// --- ScenarioSweep ----------------------------------------------------------

namespace {

// A small event-driven scenario whose fingerprint depends on the RNG stream
// and the kernel's firing order; used to A/B serial vs parallel sweeps.
std::uint64_t sweep_scenario_fingerprint(ScenarioRun& run) {
  Fnv1a fp;
  fp.mix(run.index);
  for (int burst = 0; burst < 20; ++burst) {
    const Time at = run.simulator.now() + 1 +
                    static_cast<Time>(run.rng.next_below(1000));
    const EventId timer = run.simulator.schedule_at(
        at + 500, [&fp] { fp.mix(0xDEAD); });
    run.simulator.schedule_at(at, [&fp, &run, timer] {
      fp.mix(static_cast<std::uint64_t>(run.simulator.now()));
      if (run.rng.chance(0.5)) {
        fp.mix(run.simulator.cancel(timer) ? 1 : 0);
      }
    });
    run.simulator.run_until(at + 1000);
  }
  fp.mix(run.simulator.events_executed());
  return fp.h;
}

}  // namespace

TEST(ScenarioSweep, BitIdenticalAcrossThreadCounts) {
  std::vector<std::uint64_t> serial;
  std::vector<std::uint64_t> parallel;
  {
    ScenarioSweep sweep({.seed = 99, .threads = 0});
    serial = sweep.run<std::uint64_t>(32, sweep_scenario_fingerprint);
  }
  {
    ScenarioSweep sweep({.seed = 99, .threads = 4});
    EXPECT_EQ(sweep.threads(), 4u);
    parallel = sweep.run<std::uint64_t>(32, sweep_scenario_fingerprint);
  }
  ASSERT_EQ(serial.size(), 32u);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(ScenarioSweep::merge_fingerprints(serial),
            ScenarioSweep::merge_fingerprints(parallel));
}

TEST(ScenarioSweep, StreamsAreIndependentOfSweepWidth) {
  // Scenario i's outcome must not depend on how many scenarios run beside
  // it (RNG streams are derived per index, not drawn from a shared source).
  ScenarioSweep narrow({.seed = 7, .threads = 2});
  ScenarioSweep wide({.seed = 7, .threads = 2});
  const auto few = narrow.run<std::uint64_t>(4, sweep_scenario_fingerprint);
  const auto many = wide.run<std::uint64_t>(16, sweep_scenario_fingerprint);
  for (std::size_t i = 0; i < few.size(); ++i) EXPECT_EQ(few[i], many[i]);
}

TEST(ScenarioSweep, MergeFingerprintsIsOrderSensitive) {
  const std::vector<std::uint64_t> a{1, 2, 3};
  const std::vector<std::uint64_t> b{3, 2, 1};
  EXPECT_NE(ScenarioSweep::merge_fingerprints(a),
            ScenarioSweep::merge_fingerprints(b));
  EXPECT_EQ(ScenarioSweep::merge_fingerprints(a),
            ScenarioSweep::merge_fingerprints(a));
}

TEST(Random, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformIntStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, Uniform01StaysInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Random, ExponentialMeanApproximatelyCorrect) {
  Random rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Random, NormalMomentsApproximatelyCorrect) {
  Random rng(13);
  Stats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Random, ForkProducesIndependentStream) {
  Random a(42);
  Random b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  Stats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.percentile(50), 0.0);
}

TEST(Stats, BasicMoments) {
  Stats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.01);
}

TEST(Stats, PercentilesAreMonotone) {
  Stats stats;
  Random rng(3);
  for (int i = 0; i < 1000; ++i) stats.add(rng.uniform(0, 100));
  double prev = stats.percentile(0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = stats.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Stats, PercentileOfUniformMatchesValue) {
  Stats stats;
  for (int i = 0; i <= 100; ++i) stats.add(static_cast<double>(i));
  EXPECT_NEAR(stats.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(stats.percentile(90), 90.0, 1.0);
}

TEST(Histogram, CountsFallInCorrectBuckets) {
  Histogram h = Histogram::linear(0, 100, 10);
  h.add(5);    // bucket 1
  h.add(15);   // bucket 2
  h.add(-1);   // underflow
  h.add(150);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_EQ(h.count_at(h.size() - 1), 1u);
}

TEST(Trace, RecordsAndCounts) {
  Trace trace;
  trace.record(10, TraceCategory::kTask, "ecu0/brake", "deadline_miss", 3);
  trace.record(20, TraceCategory::kTask, "ecu0/brake", "complete");
  trace.record(30, TraceCategory::kFault, "ecu0", "ecu_failed");
  EXPECT_EQ(trace.count(TraceCategory::kTask, "deadline_miss"), 1u);
  EXPECT_EQ(trace.count(TraceCategory::kTask, "complete"), 1u);
  const auto faults = trace.filter([](const TraceRecord& r) {
    return r.category == TraceCategory::kFault;
  });
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].source, "ecu0");
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace;
  trace.set_enabled(false);
  trace.record(10, TraceCategory::kTask, "x", "y");
  EXPECT_TRUE(trace.records().empty());
}

}  // namespace
}  // namespace dynaplat::sim
