// Unit tests for the discrete-event simulation kernel, RNG and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace dynaplat::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(30, [&] { order.push_back(3); });
  simulator.schedule_at(10, [&] { order.push_back(1); });
  simulator.schedule_at(20, [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
}

TEST(Simulator, SameTimestampFiresInScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(10, [&] { order.push_back(1); });
  simulator.schedule_at(10, [&] { order.push_back(2); });
  simulator.schedule_at(10, [&] { order.push_back(3); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator simulator;
  Time fired_at = -1;
  simulator.schedule_at(100, [&] {
    simulator.schedule_in(50, [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(simulator.cancel(id));
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(simulator.cancel(id));  // second cancel is a no-op
}

TEST(Simulator, RecurrenceFiresPeriodically) {
  Simulator simulator;
  int count = 0;
  const EventId id = simulator.schedule_every(5, 10, [&] { ++count; });
  simulator.run_until(45);
  EXPECT_EQ(count, 5);  // t = 5, 15, 25, 35, 45
  simulator.cancel(id);
  simulator.run_until(100);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, RecurrenceCanCancelItself) {
  Simulator simulator;
  int count = 0;
  EventId id;
  id = simulator.schedule_every(1, 1, [&] {
    if (++count == 3) simulator.cancel(id);
  });
  simulator.run_until(100);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockToBound) {
  Simulator simulator;
  simulator.schedule_at(10, [] {});
  simulator.run_until(500);
  EXPECT_EQ(simulator.now(), 500);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator simulator;
  bool late_fired = false;
  simulator.schedule_at(1000, [&] { late_fired = true; });
  simulator.run_until(500);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(simulator.pending(), 1u);
  simulator.run();
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator simulator;
  int count = 0;
  simulator.schedule_every(1, 1, [&] {
    if (++count == 10) simulator.stop();
  });
  simulator.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsExecutedCountsFiredOnly) {
  Simulator simulator;
  simulator.schedule_at(1, [] {});
  const EventId cancelled = simulator.schedule_at(2, [] {});
  simulator.cancel(cancelled);
  simulator.run();
  EXPECT_EQ(simulator.events_executed(), 1u);
}

TEST(Random, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformIntStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, Uniform01StaysInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Random, ExponentialMeanApproximatelyCorrect) {
  Random rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Random, NormalMomentsApproximatelyCorrect) {
  Random rng(13);
  Stats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Random, ForkProducesIndependentStream) {
  Random a(42);
  Random b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  Stats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.percentile(50), 0.0);
}

TEST(Stats, BasicMoments) {
  Stats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.01);
}

TEST(Stats, PercentilesAreMonotone) {
  Stats stats;
  Random rng(3);
  for (int i = 0; i < 1000; ++i) stats.add(rng.uniform(0, 100));
  double prev = stats.percentile(0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = stats.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Stats, PercentileOfUniformMatchesValue) {
  Stats stats;
  for (int i = 0; i <= 100; ++i) stats.add(static_cast<double>(i));
  EXPECT_NEAR(stats.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(stats.percentile(90), 90.0, 1.0);
}

TEST(Histogram, CountsFallInCorrectBuckets) {
  Histogram h = Histogram::linear(0, 100, 10);
  h.add(5);    // bucket 1
  h.add(15);   // bucket 2
  h.add(-1);   // underflow
  h.add(150);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_EQ(h.count_at(h.size() - 1), 1u);
}

TEST(Trace, RecordsAndCounts) {
  Trace trace;
  trace.record(10, TraceCategory::kTask, "ecu0/brake", "deadline_miss", 3);
  trace.record(20, TraceCategory::kTask, "ecu0/brake", "complete");
  trace.record(30, TraceCategory::kFault, "ecu0", "ecu_failed");
  EXPECT_EQ(trace.count(TraceCategory::kTask, "deadline_miss"), 1u);
  EXPECT_EQ(trace.count(TraceCategory::kTask, "complete"), 1u);
  const auto faults = trace.filter([](const TraceRecord& r) {
    return r.category == TraceCategory::kFault;
  });
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].source, "ecu0");
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace;
  trace.set_enabled(false);
  trace.record(10, TraceCategory::kTask, "x", "y");
  EXPECT_TRUE(trace.records().empty());
}

}  // namespace
}  // namespace dynaplat::sim
