// Unit tests for the crypto substrate: SHA-256/HMAC vectors, bignum algebra,
// RSA sign/verify round trips and the ChaCha20 DRBG.
#include <gtest/gtest.h>

#include <string>

#include "crypto/bignum.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "sim/random.hpp"

namespace dynaplat::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) ------------------------------

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(
      to_hex(Sha256::digest(std::string())),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(
      to_hex(Sha256::digest(std::string("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessageVector) {
  EXPECT_EQ(
      to_hex(Sha256::digest(std::string(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAsVector) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(
      to_hex(h.finish()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(&c, 1);
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::digest(msg)));
}

TEST(Sha256, BoundarySizesDiffer) {
  // Exercise the padding edge cases at 55/56/64-byte messages.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string a(len, 'x');
    const std::string b(len, 'y');
    EXPECT_NE(to_hex(Sha256::digest(a)), to_hex(Sha256::digest(b)));
  }
}

// --- HMAC-SHA256 (RFC 4231 test cases) --------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string data = "Hi There";
  EXPECT_EQ(
      to_hex(hmac_sha256(key, data.data(), data.size())),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key_str = "Jefe";
  const std::vector<std::uint8_t> key(key_str.begin(), key_str.end());
  const std::string data = "what do ya want for nothing?";
  EXPECT_EQ(
      to_hex(hmac_sha256(key, data.data(), data.size())),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data =
      "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(
      to_hex(hmac_sha256(key, data.data(), data.size())),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualIsConstantTimeEquality) {
  const std::vector<std::uint8_t> key{1, 2, 3};
  const std::vector<std::uint8_t> data{4, 5, 6};
  const Digest256 a = hmac_sha256(key, data);
  Digest256 b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// --- BigNum ------------------------------------------------------------------

TEST(BigNum, HexRoundTrip) {
  const std::string hex = "123456789abcdef0fedcba9876543210";
  EXPECT_EQ(BigNum::from_hex(hex).to_hex(), hex);
}

TEST(BigNum, AdditionCarriesAcrossLimbs) {
  const BigNum a = BigNum::from_hex("ffffffffffffffff");
  const BigNum b(1);
  EXPECT_EQ((a + b).to_hex(), "10000000000000000");
}

TEST(BigNum, SubtractionBorrows) {
  const BigNum a = BigNum::from_hex("10000000000000000");
  const BigNum b(1);
  EXPECT_EQ((a - b).to_hex(), "ffffffffffffffff");
}

TEST(BigNum, MultiplicationKnownProduct) {
  const BigNum a = BigNum::from_hex("1234567890abcdef");
  const BigNum b = BigNum::from_hex("fedcba0987654321");
  EXPECT_EQ((a * b).to_hex(), "121fa000a3723a57c24a442fe55618cf");
}

TEST(BigNum, DivisionAndRemainderIdentity) {
  sim::Random rng(99);
  for (int i = 0; i < 50; ++i) {
    const BigNum a =
        BigNum::random_bits(256, [&rng] { return rng.next_u64(); });
    const BigNum b =
        BigNum::random_bits(100, [&rng] { return rng.next_u64(); });
    const BigNum q = a / b;
    const BigNum r = a % b;
    EXPECT_TRUE(r < b);
    EXPECT_TRUE(q * b + r == a) << "failed at iteration " << i;
  }
}

TEST(BigNum, DivisionBySingleLimb) {
  const BigNum a = BigNum::from_hex("100000000000000000");  // 2^68
  EXPECT_EQ((a / BigNum(16)).to_hex(), "10000000000000000");
  EXPECT_TRUE((a % BigNum(16)).is_zero());
}

TEST(BigNum, ShiftRoundTrip) {
  const BigNum a = BigNum::from_hex("deadbeefcafebabe");
  EXPECT_EQ(a.shifted_left(17).shifted_right(17).to_hex(), a.to_hex());
}

TEST(BigNum, ModPowSmallKnownValues) {
  // 4^13 mod 497 = 445 (classic example).
  EXPECT_EQ(BigNum(4).mod_pow(BigNum(13), BigNum(497)).to_hex(),
            BigNum(445).to_hex());
}

TEST(BigNum, ModPowFermat) {
  // a^(p-1) = 1 mod p for prime p = 1000003 and gcd(a,p)=1.
  const BigNum p(1000003);
  for (std::uint64_t a : {2ull, 3ull, 65537ull}) {
    EXPECT_TRUE(BigNum(a).mod_pow(p - BigNum(1), p) == BigNum(1));
  }
}

TEST(BigNum, ModInverse) {
  const BigNum m(1000003);
  const BigNum a(12345);
  const BigNum inv = a.mod_inverse(m);
  EXPECT_TRUE((a * inv) % m == BigNum(1));
}

TEST(BigNum, ModInverseOfNonCoprimeIsZero) {
  EXPECT_TRUE(BigNum(6).mod_inverse(BigNum(9)).is_zero());
}

TEST(BigNum, GcdKnownValues) {
  EXPECT_TRUE(BigNum::gcd(BigNum(48), BigNum(18)) == BigNum(6));
  EXPECT_TRUE(BigNum::gcd(BigNum(17), BigNum(5)) == BigNum(1));
}

TEST(BigNum, ByteRoundTripWithPadding) {
  const BigNum a = BigNum::from_hex("abcd");
  const auto bytes = a.to_bytes(8);
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[6], 0xab);
  EXPECT_EQ(bytes[7], 0xcd);
  EXPECT_EQ(BigNum::from_bytes(bytes).to_hex(), "abcd");
}

// --- Primality / RSA ---------------------------------------------------------

TEST(Primality, KnownPrimesPass) {
  sim::Random rng(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7919ull, 1000003ull,
                          2147483647ull /* 2^31-1, Mersenne prime */}) {
    EXPECT_TRUE(is_probable_prime(BigNum(p), rng)) << p;
  }
}

TEST(Primality, KnownCompositesFail) {
  sim::Random rng(1);
  for (std::uint64_t n : {1ull, 4ull, 561ull /* Carmichael */, 7917ull,
                          1000001ull, 4294967297ull /* F5 = 641*6700417 */}) {
    EXPECT_FALSE(is_probable_prime(BigNum(n), rng)) << n;
  }
}

TEST(Rsa, SignVerifyRoundTrip) {
  sim::Random rng(2024);
  const RsaKeyPair kp = RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{'h', 'e', 'l', 'l', 'o'};
  const auto sig = rsa_sign(kp.priv, msg);
  EXPECT_EQ(sig.size(), kp.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig));
}

TEST(Rsa, TamperedMessageFailsVerification) {
  sim::Random rng(2025);
  const RsaKeyPair kp = RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  auto sig = rsa_sign(kp.priv, msg);
  std::vector<std::uint8_t> tampered = msg;
  tampered[0] ^= 0xFF;
  EXPECT_FALSE(rsa_verify(kp.pub, tampered, sig));
}

TEST(Rsa, TamperedSignatureFailsVerification) {
  sim::Random rng(2026);
  const RsaKeyPair kp = RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{9, 9, 9};
  auto sig = rsa_sign(kp.priv, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig));
}

TEST(Rsa, WrongKeyFailsVerification) {
  sim::Random rng(2027);
  const RsaKeyPair kp1 = RsaKeyPair::generate(512, rng);
  const RsaKeyPair kp2 = RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{42};
  const auto sig = rsa_sign(kp1.priv, msg);
  EXPECT_FALSE(rsa_verify(kp2.pub, msg, sig));
}

TEST(Rsa, DeterministicKeygenForSameSeed) {
  sim::Random rng1(7), rng2(7);
  const RsaKeyPair a = RsaKeyPair::generate(256, rng1);
  const RsaKeyPair b = RsaKeyPair::generate(256, rng2);
  EXPECT_EQ(a.pub.n.to_hex(), b.pub.n.to_hex());
  EXPECT_EQ(a.priv.d.to_hex(), b.priv.d.to_hex());
}

class RsaKeySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaKeySizes, RoundTripAcrossModulusSizes) {
  sim::Random rng(31337 + GetParam());
  const RsaKeyPair kp = RsaKeyPair::generate(GetParam(), rng);
  EXPECT_GE(kp.pub.n.bit_length(), GetParam() - 1);
  const std::vector<std::uint8_t> msg{0xde, 0xad, 0xbe, 0xef};
  EXPECT_TRUE(rsa_verify(kp.pub, msg, rsa_sign(kp.priv, msg)));
}

INSTANTIATE_TEST_SUITE_P(SmallToMedium, RsaKeySizes,
                         ::testing::Values(512, 640, 768));

// --- ChaCha20 DRBG -----------------------------------------------------------

TEST(ChaCha20Drbg, DeterministicForSameSeed) {
  ChaCha20Drbg a(123), b(123);
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(ChaCha20Drbg, DifferentSeedsDiverge) {
  ChaCha20Drbg a(1), b(2);
  EXPECT_NE(a.generate(64), b.generate(64));
}

TEST(ChaCha20Drbg, StreamsAcrossBlockBoundaries) {
  ChaCha20Drbg a(55);
  ChaCha20Drbg b(55);
  // Reading 7 bytes at a time must equal one big read.
  const auto big = a.generate(70);
  std::vector<std::uint8_t> pieced;
  while (pieced.size() < 70) {
    const auto chunk = b.generate(std::min<std::size_t>(7, 70 - pieced.size()));
    pieced.insert(pieced.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(big, pieced);
}

TEST(ChaCha20Drbg, OutputLooksBalanced) {
  ChaCha20Drbg drbg(7);
  const auto bytes = drbg.generate(1 << 16);
  std::size_t ones = 0;
  for (auto b : bytes) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double fraction =
      static_cast<double>(ones) / (static_cast<double>(bytes.size()) * 8);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

}  // namespace
}  // namespace dynaplat::crypto
