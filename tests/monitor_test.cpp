// Unit tests for the runtime monitor (Sec. 3.4): contract violations are
// detected, reported to the sink and recorded with flight-recorder context.
#include <gtest/gtest.h>

#include "monitor/runtime_monitor.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::monitor {
namespace {

struct Fixture {
  sim::Simulator simulator;
  sim::Trace trace;
  os::EcuConfig config{.name = "ecu0", .cpu = {.mips = 100}};
  os::Ecu ecu{simulator, config, nullptr, 0, &trace};
};

os::TaskConfig periodic(const std::string& name, sim::Duration period,
                        std::uint64_t instructions, int priority) {
  os::TaskConfig c;
  c.name = name;
  c.task_class = os::TaskClass::kDeterministic;
  c.period = period;
  c.instructions = instructions;
  c.priority = priority;
  return c;
}

TEST(RuntimeMonitor, HealthyTaskRaisesNoFaults) {
  Fixture f;
  const os::TaskId id = f.ecu.processor().add_task(
      periodic("ok", 10 * sim::kMillisecond, 100'000, 1));
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "ok";
  contract.period = 10 * sim::kMillisecond;
  contract.deadline = 10 * sim::kMillisecond;
  monitor.watch(contract);
  monitor.start();
  f.simulator.run_until(sim::seconds(1));
  EXPECT_TRUE(monitor.faults().empty());
  EXPECT_GT(monitor.samples_taken(), 50u);
}

TEST(RuntimeMonitor, DetectsDeadlineMisses) {
  Fixture f;
  // 15 ms of work every 10 ms: structurally infeasible.
  const os::TaskId id = f.ecu.processor().add_task(
      periodic("over", 10 * sim::kMillisecond, 1'500'000, 1));
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "over";
  contract.period = 10 * sim::kMillisecond;
  monitor.watch(contract);
  monitor.start();
  f.simulator.run_until(sim::seconds(1));
  bool miss_fault = false;
  for (const auto& fault : monitor.faults()) {
    miss_fault |= fault.kind == "deadline_miss";
  }
  EXPECT_TRUE(miss_fault);
}

TEST(RuntimeMonitor, DetectsExcessJitter) {
  Fixture f;
  auto config = periodic("jittery", 10 * sim::kMillisecond, 500'000, 1);
  config.execution_jitter = 0.8;  // +-80% execution time variation
  const os::TaskId id = f.ecu.processor().add_task(config);
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "jittery";
  contract.period = 10 * sim::kMillisecond;
  contract.max_response_jitter = sim::kMillisecond;  // far below actual
  monitor.watch(contract);
  monitor.start();
  f.simulator.run_until(sim::seconds(1));
  bool jitter_fault = false;
  for (const auto& fault : monitor.faults()) {
    jitter_fault |= fault.kind == "jitter";
  }
  EXPECT_TRUE(jitter_fault);
}

TEST(RuntimeMonitor, ReportsThroughSink) {
  Fixture f;
  const os::TaskId id = f.ecu.processor().add_task(
      periodic("over", 10 * sim::kMillisecond, 1'500'000, 1));
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "over";
  contract.period = 10 * sim::kMillisecond;
  monitor.watch(contract);
  int reported = 0;
  monitor.set_report_sink([&](const FaultRecord&) { ++reported; });
  monitor.start();
  f.simulator.run_until(500 * sim::kMillisecond);
  EXPECT_GT(reported, 0);
  EXPECT_EQ(static_cast<std::size_t>(reported), monitor.faults().size());
}

TEST(RuntimeMonitor, FaultCarriesFlightRecorderContext) {
  Fixture f;
  const os::TaskId id = f.ecu.processor().add_task(
      periodic("over", 10 * sim::kMillisecond, 1'500'000, 1));
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "over";
  contract.period = 10 * sim::kMillisecond;
  monitor.watch(contract);
  monitor.start();
  f.simulator.run_until(500 * sim::kMillisecond);
  ASSERT_FALSE(monitor.faults().empty());
  // The trace was active, so pre-fault context must be attached.
  EXPECT_FALSE(monitor.faults().front().context.empty());
}

TEST(RuntimeMonitor, StopPausesSampling) {
  Fixture f;
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  monitor.start();
  f.simulator.run_until(100 * sim::kMillisecond);
  const auto samples = monitor.samples_taken();
  monitor.stop();
  f.simulator.run_until(sim::seconds(1));
  EXPECT_EQ(monitor.samples_taken(), samples);
}

TEST(RuntimeMonitor, MonitoringConsumesCpu) {
  // Overhead is real: samples are CPU work items (E10's cost).
  Fixture f;
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = 1;  // nonexistent task: sampling still runs
  contract.name = "ghost";
  monitor.watch(contract);
  monitor.start();
  const auto before = f.ecu.processor().instructions_retired();
  f.simulator.run_until(sim::seconds(1));
  EXPECT_GT(f.ecu.processor().instructions_retired(), before);
}

TEST(RuntimeMonitor, CertificationReportListsWatchedTasks) {
  Fixture f;
  const os::TaskId id = f.ecu.processor().add_task(
      periodic("brake", 10 * sim::kMillisecond, 100'000, 1));
  f.ecu.processor().start();
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "brake";
  contract.period = 10 * sim::kMillisecond;
  monitor.watch(contract);
  monitor.start();
  f.simulator.run_until(sim::seconds(1));
  const std::string report = monitor.certification_report();
  EXPECT_NE(report.find("brake"), std::string::npos);
  EXPECT_NE(report.find("ecu0"), std::string::npos);
}

TEST(RuntimeMonitor, MemoryCeilingFault) {
  Fixture f;
  f.ecu.processor().start();
  const os::ProcessId process = f.ecu.memory().create_process("app", 1 << 20);
  ASSERT_TRUE(f.ecu.memory().allocate(process, 900 * 1024));
  const os::TaskId id = f.ecu.processor().add_task(
      periodic("leaky", 10 * sim::kMillisecond, 1'000, 1));
  RuntimeMonitor monitor(f.ecu);
  Contract contract;
  contract.task = id;
  contract.name = "leaky";
  contract.period = 10 * sim::kMillisecond;
  contract.process = process;
  contract.max_memory_bytes = 512 * 1024;
  monitor.watch(contract);
  monitor.start();
  f.simulator.run_until(100 * sim::kMillisecond);
  bool memory_fault = false;
  for (const auto& fault : monitor.faults()) {
    memory_fault |= fault.kind == "memory";
  }
  EXPECT_TRUE(memory_fault);
}

}  // namespace
}  // namespace dynaplat::monitor
