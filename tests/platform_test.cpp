// Integration tests for the dynamic platform: lifecycle, mixed-criticality
// isolation, staged updates (Sec. 3.2), redundancy failover (Sec. 3.3).
#include <gtest/gtest.h>

#include <memory>

#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"
#include "platform/update.hpp"

namespace dynaplat::platform {
namespace {

// A counter app: its periodic task increments internal state and publishes
// it when active. State transfer = the counter value.
class CounterApp final : public Application {
 public:
  void on_start(const AppContext& context) override {
    Application::on_start(context);
  }
  void on_task(const std::string&) override {
    ++counter_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(counter_);
    if (!context_.def->provides.empty()) {
      context_.comm->publish(context_.service_id(context_.def->provides[0]),
                             1, writer.take(),
                             context_.priority_of(context_.def->provides[0]));
    }
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(counter_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    try {
      middleware::PayloadReader reader(state);
      counter_ = reader.u64();
    } catch (const std::out_of_range&) {
    }
  }
  std::uint64_t counter() const { return counter_; }

 private:
  std::uint64_t counter_ = 0;
};

class NullApp final : public Application {};

struct World {
  explicit World(const std::string& dsl, PlatformConfig platform_config = {},
                 NodeConfig node_config = {}) {
    parsed = model::parse_system(dsl);
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    net::NodeId next_node = 1;
    for (const auto& ecu_def : parsed.model.ecus()) {
      os::EcuConfig config;
      config.name = ecu_def.name;
      config.cpu.mips = ecu_def.mips;
      config.memory_bytes = ecu_def.memory_bytes;
      config.has_mmu = ecu_def.has_mmu;
      ecus.push_back(std::make_unique<os::Ecu>(simulator, config,
                                               backbone.get(), next_node++,
                                               &trace));
    }
    platform = std::make_unique<DynamicPlatform>(
        simulator, parsed.model, parsed.deployment, platform_config);
    for (auto& ecu : ecus) platform->add_node(*ecu, node_config);
  }

  os::Ecu& ecu(const std::string& name) {
    for (auto& e : ecus) {
      if (e->name() == name) return *e;
    }
    throw std::out_of_range(name);
  }

  sim::Simulator simulator;
  sim::Trace trace;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::unique_ptr<DynamicPlatform> platform;
};

const char* kTwoEcuSystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
interface Tick paradigm=event payload=8 period=10ms
app Producer class=deterministic asil=B memory=4M
  task work period=10ms wcet=100K priority=1
  provides Tick
app Consumer class=nondeterministic asil=QM memory=4M
  task poll period=50ms wcet=50K priority=8
  consumes Tick
deploy Producer -> A
deploy Consumer -> B
)";

TEST(DynamicPlatform, InstallAllStartsDeployedApps) {
  World world(kTwoEcuSystem);
  world.platform->register_app("Producer",
                               [] { return std::make_unique<CounterApp>(); });
  world.platform->register_app("Consumer",
                               [] { return std::make_unique<NullApp>(); });
  std::string reason;
  ASSERT_TRUE(world.platform->install_all(&reason)) << reason;
  EXPECT_TRUE(world.platform->node("A")->hosts("Producer"));
  EXPECT_TRUE(world.platform->node("B")->hosts("Consumer"));
  world.simulator.run_until(sim::seconds(1));
  const AppInstance* producer =
      world.platform->node("A")->instance("Producer");
  ASSERT_NE(producer, nullptr);
  EXPECT_GT(static_cast<const CounterApp*>(producer->app.get())->counter(),
            90u);
}

TEST(DynamicPlatform, VerificationGateBlocksBadDeployment) {
  // Producer is ASIL B but ECU A is only certified QM.
  World world(
      "network Net kind=ethernet\n"
      "ecu A mips=1000 memory=64M asil=QM network=Net\n"
      "app P class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=100K priority=1\n"
      "deploy P -> A\n");
  world.platform->register_app("P",
                               [] { return std::make_unique<NullApp>(); });
  std::string reason;
  EXPECT_FALSE(world.platform->install_all(&reason));
  EXPECT_NE(reason.find("asil"), std::string::npos);
}

TEST(DynamicPlatform, EventsFlowAcrossEcus) {
  World world(kTwoEcuSystem);
  world.platform->register_app("Producer",
                               [] { return std::make_unique<CounterApp>(); });
  world.platform->register_app("Consumer",
                               [] { return std::make_unique<NullApp>(); });
  ASSERT_TRUE(world.platform->install_all());
  // An external observer subscribes on node B.
  int received = 0;
  world.platform->node("B")->comm().subscribe(
      world.platform->service_id("Tick"), 1,
      [&](std::vector<std::uint8_t>, net::NodeId) { ++received; });
  world.simulator.run_until(sim::seconds(1));
  EXPECT_GT(received, 50);
}

TEST(DynamicPlatform, AdmissionControlRejectsOverload) {
  World world(
      "network Net kind=ethernet\n"
      "ecu A mips=100 memory=64M asil=D network=Net\n"
      "app Fat class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=900K priority=1\n"  // u = 0.9
      "deploy Fat -> A\n");
  world.platform->register_app("Fat",
                               [] { return std::make_unique<NullApp>(); });
  ASSERT_TRUE(world.platform->install_all());
  // A second app pushing utilization over 1.0 must be rejected at install.
  model::AppDef more;
  more.name = "More";
  more.app_class = model::AppClass::kDeterministic;
  more.memory_bytes = 1 << 20;
  model::TaskDef task;
  task.name = "t";
  task.period = 10 * sim::kMillisecond;
  task.instructions = 500'000;  // another 0.5 utilization
  task.priority = 2;
  more.tasks.push_back(task);
  std::string reason;
  EXPECT_FALSE(world.platform->node("A")->install(
      more, [] { return std::make_unique<NullApp>(); }, &reason));
  EXPECT_NE(reason.find("rejected"), std::string::npos);
}

TEST(DynamicPlatform, MemoryQuotaRejectsInstall) {
  World world(
      "network Net kind=ethernet\n"
      "ecu A mips=1000 memory=8M asil=D network=Net\n"
      "app Slim class=nondeterministic asil=QM memory=6M\n"
      "deploy Slim -> A\n");
  world.platform->register_app("Slim",
                               [] { return std::make_unique<NullApp>(); });
  ASSERT_TRUE(world.platform->install_all());
  model::AppDef big;
  big.name = "Big";
  big.memory_bytes = 6 << 20;  // only ~2M left
  std::string reason;
  EXPECT_FALSE(world.platform->node("A")->install(
      big, [] { return std::make_unique<NullApp>(); }, &reason));
  EXPECT_NE(reason.find("memory"), std::string::npos);
}

TEST(DynamicPlatform, TimeTriggeredNodeIsolatesDaFromNdaLoad) {
  // DA control task + NDA hog on one ECU under platform TT enforcement:
  // the DA must keep its deadlines (E1's platform-on case).
  World world(
      "network Net kind=ethernet\n"
      "ecu A mips=100 memory=64M asil=D network=Net\n"
      "interface Out paradigm=event payload=8 period=10ms\n"
      "app Ctl class=deterministic asil=C memory=4M\n"
      "  task loop period=10ms wcet=200K priority=1\n"
      "  provides Out\n"
      "app Hog class=nondeterministic asil=QM memory=4M\n"
      "  task burn period=20ms wcet=1500K priority=9\n"
      "deploy Ctl -> A\ndeploy Hog -> A\n");
  world.platform->register_app("Ctl",
                               [] { return std::make_unique<CounterApp>(); });
  world.platform->register_app("Hog",
                               [] { return std::make_unique<NullApp>(); });
  std::string reason;
  ASSERT_TRUE(world.platform->install_all(&reason)) << reason;
  world.simulator.run_until(sim::seconds(2));
  auto& cpu = world.ecu("A").processor();
  std::uint64_t da_misses = 0;
  for (os::TaskId id : cpu.task_ids()) {
    if (cpu.config(id).task_class == os::TaskClass::kDeterministic) {
      da_misses += cpu.stats(id).deadline_misses;
    }
  }
  EXPECT_EQ(da_misses, 0u);
}

TEST(DynamicPlatform, PersistenceSurvivesAppRestart) {
  World world(kTwoEcuSystem);
  world.platform->register_app("Producer",
                               [] { return std::make_unique<CounterApp>(); });
  world.platform->register_app("Consumer",
                               [] { return std::make_unique<NullApp>(); });
  ASSERT_TRUE(world.platform->install_all());
  auto* node = world.platform->node("A");
  node->persist("calibration", {9, 9, 9});
  node->uninstall("Producer");
  const auto value = node->recall("calibration");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, (std::vector<std::uint8_t>{9, 9, 9}));
}

// --- Staged updates (Sec. 3.2) -------------------------------------------------

struct UpdateWorld : World {
  UpdateWorld() : World(kTwoEcuSystem) {
    platform->register_app("Producer",
                           [] { return std::make_unique<CounterApp>(); });
    platform->register_app("Consumer",
                           [] { return std::make_unique<NullApp>(); });
    EXPECT_TRUE(platform->install_all());
    simulator.run_until(200 * sim::kMillisecond);
  }

  model::AppDef v2_def() {
    model::AppDef def = *parsed.model.app("Producer");
    def.version = 2;
    return def;
  }
};

TEST(StagedUpdate, CompletesAllFourPhasesWithoutGap) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  UpdateReport report;
  updates.staged_update(*world.platform->node("A"), "Producer",
                        world.v2_def(),
                        [] { return std::make_unique<CounterApp>(); },
                        UpdateConfig{}, [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  EXPECT_TRUE(report.success) << report.reason;
  EXPECT_EQ(report.phase_reached, 4);
  EXPECT_EQ(report.ownership_gap, 0);
  EXPECT_EQ(report.serving_label, "Producer#v2");
  // Old instance is gone, new one is running and active.
  auto* node = world.platform->node("A");
  EXPECT_FALSE(node->hosts("Producer"));
  const AppInstance* inst = node->instance("Producer#v2");
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->app->active());
}

TEST(StagedUpdate, StateCarriesAcrossVersions) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  auto* node = world.platform->node("A");
  const auto* old_inst = node->instance("Producer");
  ASSERT_NE(old_inst, nullptr);
  UpdateReport report;
  updates.staged_update(*node, "Producer", world.v2_def(),
                        [] { return std::make_unique<CounterApp>(); },
                        UpdateConfig{}, [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  ASSERT_TRUE(report.success);
  const auto* new_inst = node->instance("Producer#v2");
  ASSERT_NE(new_inst, nullptr);
  // The counter kept counting across the version change: it is at least
  // the count the old instance had accumulated before the update (~20+
  // at 10ms period over 200ms warmup).
  EXPECT_GT(static_cast<const CounterApp*>(new_inst->app.get())->counter(),
            100u);
}

TEST(StagedUpdate, SubscribersKeepReceivingThroughUpdate) {
  UpdateWorld world;
  int received = 0;
  world.platform->node("B")->comm().subscribe(
      world.platform->service_id("Tick"), 1,
      [&](std::vector<std::uint8_t>, net::NodeId) { ++received; });
  world.simulator.run_until(400 * sim::kMillisecond);
  const int before = received;
  EXPECT_GT(before, 0);
  UpdateManager updates(*world.platform);
  UpdateReport report;
  updates.staged_update(*world.platform->node("A"), "Producer",
                        world.v2_def(),
                        [] { return std::make_unique<CounterApp>(); },
                        UpdateConfig{}, [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  ASSERT_TRUE(report.success);
  // Ticks continued: at ~100/s, a >100ms outage would show as a deficit.
  EXPECT_GT(received, before + 100);
}

TEST(StagedUpdate, RollsBackWhenShadowMissesDeadlines) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  // v2 is subtly broken: its declared WCET (4 ms at 1000 MIPS) passes
  // admission, but +-90% execution jitter overruns the synthesized TT
  // windows, so the shadow misses deadlines during warm-up.
  model::AppDef broken = world.v2_def();
  broken.tasks[0].instructions = 4'000'000;
  broken.tasks[0].execution_jitter = 0.9;
  UpdateReport report;
  updates.staged_update(*world.platform->node("A"), "Producer", broken,
                        [] { return std::make_unique<CounterApp>(); },
                        UpdateConfig{}, [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  EXPECT_FALSE(report.success);
  // Old version still serving.
  auto* node = world.platform->node("A");
  const AppInstance* old_inst = node->instance("Producer");
  ASSERT_NE(old_inst, nullptr);
  EXPECT_TRUE(old_inst->app->active());
  EXPECT_FALSE(node->hosts("Producer#v2"));
}

// Force the staged protocol to abort at every phase in turn: whatever the
// phase, the rollback must leave the original instance serving (active,
// zero ownership gap) with no shadow left behind on the node.
class StagedUpdateRollback : public ::testing::TestWithParam<int> {};

TEST_P(StagedUpdateRollback, InjectedPhaseFailureRevertsCleanly) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  UpdateConfig config;
  config.inject_failure_phase = GetParam();
  UpdateReport report;
  updates.staged_update(*world.platform->node("A"), "Producer",
                        world.v2_def(),
                        [] { return std::make_unique<CounterApp>(); },
                        config, [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.reason.find("injected"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.phase_reached, GetParam());
  EXPECT_EQ(report.serving_label, "Producer");
  EXPECT_EQ(report.ownership_gap, 0);
  auto* node = world.platform->node("A");
  const AppInstance* old_inst = node->instance("Producer");
  ASSERT_NE(old_inst, nullptr);
  EXPECT_TRUE(old_inst->running);
  EXPECT_TRUE(old_inst->app->active());
  // No shadow leak: the v2 instance is fully gone.
  EXPECT_FALSE(node->hosts("Producer#v2"));
  EXPECT_EQ(node->instance_labels().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllPhases, StagedUpdateRollback,
                         ::testing::Values(1, 2, 3, 4));

TEST(StagedMigration, MovesInstanceAcrossNodesWithoutGap) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  auto* a = world.platform->node("A");
  const auto* origin = a->instance("Producer");
  ASSERT_NE(origin, nullptr);
  const std::uint64_t counted_before =
      static_cast<const CounterApp*>(origin->app.get())->counter();
  UpdateReport report;
  updates.staged_migration(*a, "Producer", *world.platform->node("B"),
                           UpdateConfig{},
                           [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  ASSERT_TRUE(report.success) << report.reason;
  EXPECT_EQ(report.strategy, "staged_migration");
  EXPECT_EQ(report.ownership_gap, 0);
  EXPECT_FALSE(a->hosts("Producer"));
  const AppInstance* moved = world.platform->node("B")->instance("Producer");
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(moved->running);
  EXPECT_TRUE(moved->app->active());
  // State travelled with the instance and kept advancing.
  EXPECT_GT(static_cast<const CounterApp*>(moved->app.get())->counter(),
            counted_before);
}

TEST(StagedMigration, InjectedFailureLeavesOriginServing) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  for (int phase = 1; phase <= 4; ++phase) {
    UpdateConfig config;
    config.inject_failure_phase = phase;
    UpdateReport report;
    updates.staged_migration(*world.platform->node("A"), "Producer",
                             *world.platform->node("B"), config,
                             [&](UpdateReport r) { report = r; });
    world.simulator.run_until(world.simulator.now() + sim::seconds(2));
    EXPECT_FALSE(report.success) << "phase " << phase;
    EXPECT_EQ(report.ownership_gap, 0) << "phase " << phase;
    const AppInstance* origin =
        world.platform->node("A")->instance("Producer");
    ASSERT_NE(origin, nullptr) << "phase " << phase;
    EXPECT_TRUE(origin->app->active()) << "phase " << phase;
    EXPECT_FALSE(world.platform->node("B")->hosts("Producer"))
        << "phase " << phase;
  }
}

TEST(StopRestartUpdate, IncursOwnershipGap) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  UpdateReport report;
  updates.stop_restart_update(*world.platform->node("A"), "Producer",
                              world.v2_def(),
                              [] { return std::make_unique<CounterApp>(); },
                              UpdateConfig{},
                              [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  ASSERT_TRUE(report.success) << report.reason;
  EXPECT_GT(report.ownership_gap, 0);
}

TEST(CentralSwitchUpdate, GapEqualsClockError) {
  UpdateWorld world;
  UpdateManager updates(*world.platform);
  UpdateConfig config;
  config.clock_error = 30 * sim::kMillisecond;
  UpdateReport report;
  updates.central_switch_update(*world.platform->node("A"), "Producer",
                                world.v2_def(),
                                [] { return std::make_unique<CounterApp>(); },
                                config, [&](UpdateReport r) { report = r; });
  world.simulator.run_until(sim::seconds(2));
  ASSERT_TRUE(report.success) << report.reason;
  EXPECT_EQ(report.ownership_gap, 30 * sim::kMillisecond);
}

// --- Redundancy (Sec. 3.3) -------------------------------------------------------

const char* kRedundantSystem = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
interface Cmd paradigm=event payload=8 period=10ms
app Pilot class=deterministic asil=D memory=4M replicas=2
  task drive period=10ms wcet=100K priority=1
  provides Cmd
deploy Pilot -> A | B | C
)";

struct RedundantWorld : World {
  RedundantWorld() : World(kRedundantSystem) {
    platform->register_app("Pilot",
                           [] { return std::make_unique<CounterApp>(); });
    EXPECT_TRUE(platform->install_all());
  }
};

TEST(Redundancy, ReplicasInstalledPrimaryActive) {
  RedundantWorld world;
  const AppInstance* primary = world.platform->node("A")->instance("Pilot");
  const AppInstance* standby = world.platform->node("B")->instance("Pilot");
  ASSERT_NE(primary, nullptr);
  ASSERT_NE(standby, nullptr);
  EXPECT_TRUE(primary->app->active());
  EXPECT_FALSE(standby->app->active());
}

TEST(Redundancy, FailoverPromotesStandby) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  world.simulator.run_until(500 * sim::kMillisecond);
  EXPECT_EQ(redundancy.current_primary(), "A");
  world.ecu("A").fail();
  world.simulator.run_until(sim::seconds(1));
  EXPECT_EQ(redundancy.current_primary(), "B");
  ASSERT_EQ(redundancy.failovers().size(), 1u);
  // Failover within a handful of heartbeat periods.
  EXPECT_LT(redundancy.failovers()[0].outage, 200 * sim::kMillisecond);
}

TEST(Redundancy, ServiceContinuesAfterFailover) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  int received = 0;
  world.platform->node("C")->comm().subscribe(
      world.platform->service_id("Cmd"), 1,
      [&](std::vector<std::uint8_t>, net::NodeId) { ++received; });
  world.simulator.run_until(500 * sim::kMillisecond);
  world.ecu("A").fail();
  world.simulator.run_until(sim::seconds(1));
  const int at_failover = received;
  world.simulator.run_until(sim::seconds(2));
  // Publications resumed from the promoted standby on B.
  EXPECT_GT(received, at_failover + 50);
}

TEST(Redundancy, StateShippedToStandby) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  world.simulator.run_until(sim::seconds(1));
  const auto* standby = world.platform->node("B")->instance("Pilot");
  ASSERT_NE(standby, nullptr);
  // The standby's counter tracks the primary's via heartbeat state sync
  // (primary runs at 100 ticks/s; standby restores snapshots).
  EXPECT_GT(static_cast<const CounterApp*>(standby->app.get())->counter(),
            50u);
}

TEST(Redundancy, NoFalseFailoverWhenPrimaryHealthy) {
  RedundantWorld world;
  RedundancyManager redundancy(*world.platform, "Pilot");
  redundancy.engage();
  world.simulator.run_until(sim::seconds(3));
  EXPECT_TRUE(redundancy.failovers().empty());
  EXPECT_EQ(redundancy.current_primary(), "A");
}

}  // namespace
}  // namespace dynaplat::platform
