// Fleet backend robustness (ISSUE 9): FleetScheduleService admission /
// shedding / backpressure / cross-vehicle cache / failure modes, the
// vehicle-side BackendClient circuit breaker + fallback ladder, the
// jittered reliable-transport retransmit backoff, the bounded diagnostics
// uplink queue, and fleet-scale outage survival under ScenarioSweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "backend/client.hpp"
#include "backend/fleet.hpp"
#include "backend/service.hpp"
#include "fault/campaign.hpp"
#include "fault/invariants.hpp"
#include "middleware/transport.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/diagnostics.hpp"
#include "platform/platform.hpp"
#include "platform/recovery.hpp"
#include "sim/sweep.hpp"

namespace dynaplat {
namespace {

using backend::BackendClient;
using backend::BackendOutcome;
using backend::BreakerState;
using backend::ClientConfig;
using backend::Criticality;
using backend::FleetConfig;
using backend::FleetDriver;
using backend::FleetScheduleService;
using backend::ResponseStatus;
using backend::ServiceConfig;
using backend::SynthesisRequest;
using backend::SynthesisResponse;

dse::AnalysisTask analysis_task(const std::string& name, sim::Duration period,
                                sim::Duration wcet, int priority) {
  dse::AnalysisTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.priority = priority;
  t.deterministic = true;
  return t;
}

std::vector<dse::AnalysisTask> feasible_set() {
  return {analysis_task("a", 10 * sim::kMillisecond, sim::kMillisecond, 1),
          analysis_task("b", 20 * sim::kMillisecond, 2 * sim::kMillisecond, 2)};
}

std::vector<dse::AnalysisTask> infeasible_set() {
  return {analysis_task("x", 10 * sim::kMillisecond, 6 * sim::kMillisecond, 1),
          analysis_task("y", 10 * sim::kMillisecond, 6 * sim::kMillisecond, 2)};
}

// --- FleetScheduleService -----------------------------------------------------

TEST(FleetBackend, SubmitDeliversFeasibleArtifactAfterSimLatency) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator, {});
  SynthesisRequest request;
  request.criticality = Criticality::kResync;
  request.tasks = feasible_set();
  SynthesisResponse seen;
  sim::Time delivered_at = 0;
  service.submit(request, [&](const SynthesisResponse& response) {
    seen = response;
    delivered_at = simulator.now();
  });
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(seen.status, ResponseStatus::kOk);
  EXPECT_TRUE(seen.artifact.feasible);
  EXPECT_TRUE(seen.artifact.validated);
  EXPECT_FALSE(seen.cache_hit);
  // At least the round trip plus the service-time floor elapsed.
  EXPECT_GE(delivered_at, service.config().uplink_rtt +
                              service.config().min_service_time);
  EXPECT_EQ(service.completed(), 1u);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(FleetBackend, CrossVehicleCacheSharesOneSynthesis) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator, {});
  SynthesisRequest request;
  request.tasks = feasible_set();
  int ok = 0;
  int hits = 0;
  for (std::uint32_t session = 0; session < 5; ++session) {
    request.session = session;
    service.submit(request, [&](const SynthesisResponse& response) {
      if (response.status == ResponseStatus::kOk) ++ok;
      if (response.cache_hit) ++hits;
    });
  }
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(hits, 4);  // one miss synthesizes, four sessions share it
  EXPECT_EQ(service.synthesis_runs(), 1u);
  EXPECT_EQ(service.cache_entries(), 1u);
}

TEST(FleetBackend, SaturatedQueueShedsRoutineAndPreemptsForRecovery) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.queue_capacity = 2;
  config.backpressure_watermark = 2;  // never backpressure below full
  config.recovery_reserve = 0;        // force the preemption path
  config.workers = 1;
  config.min_service_time = 10 * sim::kMillisecond;
  FleetScheduleService service(simulator, config);

  std::vector<ResponseStatus> ota_status(3, ResponseStatus::kUnreachable);
  SynthesisRequest ota;
  ota.criticality = Criticality::kOta;
  ota.tasks = feasible_set();
  for (int i = 0; i < 3; ++i) {
    service.submit(ota, [&ota_status, i](const SynthesisResponse& response) {
      ota_status[static_cast<std::size_t>(i)] = response.status;
    });
  }
  SynthesisRequest recovery;
  recovery.criticality = Criticality::kRecovery;
  recovery.tasks = feasible_set();
  ResponseStatus recovery_status = ResponseStatus::kUnreachable;
  service.submit(recovery, [&](const SynthesisResponse& response) {
    recovery_status = response.status;
  });
  simulator.run_until(sim::seconds(2));

  // OTA 1 ran, OTA 3 was shed at the full queue, OTA 2 was preempted (its
  // worker reservation reclaimed) so the recovery remap got its slot.
  EXPECT_EQ(ota_status[0], ResponseStatus::kOk);
  EXPECT_EQ(ota_status[2], ResponseStatus::kShed);
  EXPECT_EQ(ota_status[1], ResponseStatus::kShed);
  EXPECT_EQ(recovery_status, ResponseStatus::kOk);
  EXPECT_EQ(service.preempted(), 1u);
  EXPECT_GE(service.shed(Criticality::kOta), 2u);
  EXPECT_EQ(service.shed(Criticality::kRecovery), 0u);
}

// Regression: shed/backpressure verdicts ride the downlink for uplink_rtt
// before the vehicle sees them. Those in-flight rejection notices must not
// count toward admission depth, or a saturated backend rejects new work on
// the strength of its own reject traffic — a self-sustaining congestion
// state the fleet bench used to collapse into at 10k sessions.
TEST(FleetBackend, RejectTrafficCarriesNoAdmissionWeight) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.queue_capacity = 1;
  config.backpressure_watermark = 1;
  config.recovery_reserve = 1;
  config.workers = 1;
  config.min_service_time = 100 * sim::kMillisecond;
  config.uplink_rtt = 10 * sim::kMillisecond;
  FleetScheduleService service(simulator, config);

  // A recovery occupies the single real queue slot (not preemptible).
  SynthesisRequest recovery;
  recovery.criticality = Criticality::kRecovery;
  recovery.tasks = feasible_set();
  ResponseStatus first_status = ResponseStatus::kUnreachable;
  service.submit(recovery, [&](const SynthesisResponse& response) {
    first_status = response.status;
  });

  // Flood with routine work: every request is rejected and each verdict
  // is now in flight on the downlink for 10 ms.
  SynthesisRequest ota;
  ota.criticality = Criticality::kOta;
  ota.tasks = feasible_set();
  for (int i = 0; i < 8; ++i) {
    service.submit(ota, [](const SynthesisResponse&) {});
  }
  EXPECT_EQ(service.shed(Criticality::kOta), 8u);
  EXPECT_EQ(service.queue_depth(), 1u);  // rejects carry no weight

  // While those 8 verdicts are still undelivered, a second recovery must
  // still find the reserve slot.
  ResponseStatus second_status = ResponseStatus::kUnreachable;
  service.submit(recovery, [&](const SynthesisResponse& response) {
    second_status = response.status;
  });
  simulator.run_until(sim::seconds(1));

  EXPECT_EQ(first_status, ResponseStatus::kOk);
  EXPECT_EQ(second_status, ResponseStatus::kOk);
  EXPECT_EQ(service.shed(Criticality::kRecovery), 0u);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(FleetBackend, BackpressureDefersRoutineWithGrowingHint) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.queue_capacity = 16;
  config.backpressure_watermark = 2;
  config.workers = 1;
  config.min_service_time = 10 * sim::kMillisecond;
  FleetScheduleService service(simulator, config);

  SynthesisRequest ota;
  ota.criticality = Criticality::kOta;
  ota.tasks = feasible_set();
  std::vector<SynthesisResponse> rejected;
  for (int i = 0; i < 2; ++i) {
    service.submit(ota, [](const SynthesisResponse&) {});
  }
  SynthesisRequest resync = ota;
  resync.criticality = Criticality::kResync;
  ResponseStatus resync_status = ResponseStatus::kUnreachable;
  service.submit(resync, [&](const SynthesisResponse& response) {
    resync_status = response.status;
  });
  // Above the watermark: routine work is deferred, not queued.
  for (int i = 0; i < 2; ++i) {
    service.submit(ota, [&](const SynthesisResponse& response) {
      rejected.push_back(response);
    });
  }
  simulator.run_until(sim::seconds(2));

  ASSERT_EQ(rejected.size(), 2u);
  EXPECT_EQ(rejected[0].status, ResponseStatus::kRetryAfter);
  EXPECT_EQ(rejected[1].status, ResponseStatus::kRetryAfter);
  EXPECT_GT(rejected[0].retry_after, 0);
  EXPECT_GE(rejected[1].retry_after, rejected[0].retry_after);
  EXPECT_GE(service.backpressured(), 2u);
  // The watermark only gates kOta: the resync took a normal slot.
  EXPECT_EQ(resync_status, ResponseStatus::kOk);
}

TEST(FleetBackend, CrashLosesOutstandingAndPartitionDropsResponses) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator, {});
  SynthesisRequest request;
  request.tasks = feasible_set();

  int callbacks = 0;
  service.submit(request, [&](const SynthesisResponse&) { ++callbacks; });
  simulator.schedule_at(sim::kMillisecond, [&] { service.crash(); });
  simulator.run_until(sim::seconds(1));
  // Crash cancelled the outstanding completion: the client's timeout is
  // the only signal, exactly like a dead backend in the field.
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.crashes(), 1u);

  // While crashed, submissions are silently lost.
  service.submit(request, [&](const SynthesisResponse&) { ++callbacks; });
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(callbacks, 0);
  EXPECT_GE(service.lost_unreachable(), 1u);

  // Partition: the request is accepted-side invisible; an in-flight
  // response is dropped at delivery time.
  service.restart();
  service.submit(request, [&](const SynthesisResponse&) { ++callbacks; });
  simulator.schedule_at(simulator.now() + sim::kMillisecond,
                        [&] { service.set_partitioned(true); });
  simulator.run_until(sim::seconds(3));
  EXPECT_EQ(callbacks, 0);
  EXPECT_GE(service.responses_dropped(), 1u);
  service.set_partitioned(false);
}

// --- ScheduleServer error paths ----------------------------------------------

TEST(ScheduleServerErrors, InfeasibleUnderConcurrentCallers) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator, {});
  SynthesisRequest request;
  request.tasks = infeasible_set();
  int infeasible = 0;
  std::set<std::string> reasons;
  for (std::uint32_t session = 0; session < 8; ++session) {
    request.session = session;
    service.submit(request, [&](const SynthesisResponse& response) {
      if (response.status == ResponseStatus::kInfeasible) ++infeasible;
      EXPECT_FALSE(response.artifact.feasible);
      reasons.insert(response.artifact.reason);
    });
  }
  simulator.run_until(sim::seconds(2));
  // Every concurrent caller gets the same deterministic verdict, and the
  // negative result is memoized like any other artifact.
  EXPECT_EQ(infeasible, 8);
  EXPECT_EQ(reasons.size(), 1u);
  EXPECT_EQ(service.synthesis_runs(), 1u);
}

TEST(ScheduleServerErrors, CacheHitMatchesFreshRecompute) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator, {});
  SynthesisRequest request;
  request.tasks = feasible_set();
  const SynthesisResponse first = service.query(request);
  const SynthesisResponse second = service.query(request);
  ASSERT_EQ(first.status, ResponseStatus::kOk);
  ASSERT_EQ(second.status, ResponseStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);

  const dse::ScheduleServer reference;
  const auto fresh = reference.synthesize(request.tasks, request.ecu_mips);
  for (const auto* artifact : {&first.artifact, &second.artifact}) {
    EXPECT_EQ(artifact->feasible, fresh.feasible);
    EXPECT_EQ(artifact->validated, fresh.validated);
    EXPECT_EQ(artifact->synthesis_instructions, fresh.synthesis_instructions);
    ASSERT_EQ(artifact->table.windows.size(), fresh.table.windows.size());
    for (std::size_t i = 0; i < fresh.table.windows.size(); ++i) {
      EXPECT_EQ(artifact->table.windows[i].offset,
                fresh.table.windows[i].offset);
      EXPECT_EQ(artifact->table.windows[i].length,
                fresh.table.windows[i].length);
      EXPECT_EQ(artifact->table.windows[i].task, fresh.table.windows[i].task);
    }
  }
}

// Recovery keeps working when the backend vanishes mid-flight: the DA
// placement check in RecoveryOrchestrator::try_place falls through the
// client's fallback ladder (ECU-local admission) instead of stranding the
// displaced apps.
TEST(ScheduleServerErrors, RecoveryProceedsWhenBackendVanishesMidFlight) {
  sim::Simulator simulator;
  auto parsed = model::parse_system(R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
app Brake class=deterministic asil=D memory=4M
  task ctl period=10ms wcet=200K priority=1
app Maps class=nondeterministic asil=QM memory=4M
  task tiles period=50ms wcet=250K priority=9
deploy Brake -> A
deploy Maps -> A
)");
  net::EthernetSwitch backbone(simulator, "eth", {});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId next_node = 1;
  for (const auto& ecu_def : parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.memory_bytes = ecu_def.memory_bytes;
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             next_node++));
  }
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  for (auto& ecu : ecus) dp.add_node(*ecu);
  for (const auto& app : parsed.model.apps()) {
    dp.register_app(app.name,
                    [] { return std::make_unique<platform::Application>(); });
  }
  ASSERT_TRUE(dp.install_all());

  FleetScheduleService service(simulator);
  BackendClient& client = dp.connect_backend(service);
  platform::RecoveryConfig recovery_config;
  recovery_config.check_period = 50 * sim::kMillisecond;
  recovery_config.commit_soak = 100 * sim::kMillisecond;
  platform::RecoveryOrchestrator orchestrator(dp, recovery_config);
  orchestrator.engage();

  fault::FaultCampaign campaign(simulator);
  campaign.add_ecu(*ecus[0]);
  fault::FaultEvent crash;
  crash.at = 300 * sim::kMillisecond;
  crash.kind = fault::FaultKind::kEcuCrash;
  crash.target = "A";
  campaign.schedule(crash);
  campaign.arm();
  // The backend dies just before the vehicle needs it most.
  simulator.schedule_at(250 * sim::kMillisecond, [&] { service.crash(); });
  simulator.run_until(sim::seconds(3));

  ASSERT_FALSE(orchestrator.plans().empty());
  EXPECT_EQ(orchestrator.plans().front().status,
            platform::PlanStatus::kCommitted)
      << orchestrator.plans().front().reason;
  EXPECT_TRUE(orchestrator.stranded().empty());
  // The plan went through the degraded rung, not a fresh backend artifact.
  EXPECT_GE(client.local_admissions() + client.stale_served(), 1u);
}

// --- BackendClient circuit breaker -------------------------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresThenFastFails) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  service.crash();
  ClientConfig config;
  config.breaker_threshold = 3;
  config.local_fallback = true;
  BackendClient client(simulator, config);
  client.connect(&service);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.breaker(), BreakerState::kClosed);
    const BackendOutcome outcome =
        client.synthesize(feasible_set(), 1'000, Criticality::kResync);
    // Dead backend, empty cache: the ECU-local fast path keeps us safe.
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.locally_admitted);
    EXPECT_EQ(outcome.source, BackendOutcome::Source::kLocalFallback);
  }
  EXPECT_EQ(client.breaker(), BreakerState::kOpen);
  EXPECT_EQ(client.breaker_opens(), 1u);

  const std::uint64_t before = service.lost_unreachable();
  (void)client.synthesize(feasible_set(), 1'000, Criticality::kResync);
  // OPEN short-circuits: no query even reached the (dead) service.
  EXPECT_EQ(service.lost_unreachable(), before);
  EXPECT_GE(client.breaker_fast_fails(), 1u);
}

TEST(CircuitBreaker, ReconnectRevalidatesStaleArtifactsBeforeClosing) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  ClientConfig config;
  config.breaker_threshold = 2;
  config.breaker_open_for = 100 * sim::kMillisecond;
  BackendClient client(simulator, config);
  client.connect(&service);

  std::vector<std::pair<BreakerState, BreakerState>> transitions;
  client.add_listener([&](BreakerState prev, BreakerState next) {
    transitions.emplace_back(prev, next);
  });

  // Warm the vehicle-local cache while the backend is up.
  const BackendOutcome warm =
      client.synthesize(feasible_set(), 1'000, Criticality::kResync);
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.source, BackendOutcome::Source::kBackend);
  EXPECT_EQ(client.cached_artifacts(), 1u);

  service.crash();
  for (int i = 0; i < 2; ++i) {
    const BackendOutcome outcome =
        client.synthesize(feasible_set(), 1'000, Criticality::kResync);
    // Same topology: served stale from the local cache, still safe.
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.stale);
    EXPECT_EQ(outcome.source, BackendOutcome::Source::kCache);
  }
  EXPECT_EQ(client.breaker(), BreakerState::kOpen);
  EXPECT_GE(client.stale_served(), 2u);

  // Heal, wait out the open window, probe: HALF_OPEN -> CLOSED with the
  // stale-served entry re-validated against the live backend first.
  service.restart();
  bool probed = false;
  simulator.schedule_at(simulator.now() + 200 * sim::kMillisecond, [&] {
    const BackendOutcome outcome =
        client.synthesize(feasible_set(), 1'000, Criticality::kResync);
    probed = outcome.ok;
  });
  simulator.run_until(simulator.now() + sim::seconds(1));
  EXPECT_TRUE(probed);
  EXPECT_EQ(client.breaker(), BreakerState::kClosed);
  EXPECT_GE(client.revalidated(), 1u);
  ASSERT_GE(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].second, BreakerState::kOpen);
  EXPECT_EQ(transitions[1].second, BreakerState::kHalfOpen);
  EXPECT_EQ(transitions.back().second, BreakerState::kClosed);
}

TEST(CircuitBreaker, FallbackLadderEndsAtExplicitNone) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  service.crash();
  ClientConfig config;
  config.local_fallback = false;  // ablation: no last rung
  BackendClient client(simulator, config);
  client.connect(&service);
  const BackendOutcome outcome =
      client.synthesize(feasible_set(), 1'000, Criticality::kRecovery);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.source, BackendOutcome::Source::kNone);
  EXPECT_GE(client.exhausted(), 1u);
}

TEST(CircuitBreaker, AsyncRetriesAreCappedJitteredAndDeterministic) {
  const auto run_once = [](std::uint64_t stream) {
    sim::Simulator simulator;
    FleetScheduleService service(simulator);
    service.crash();
    ClientConfig config;
    config.request_timeout = 20 * sim::kMillisecond;
    config.max_attempts = 3;
    config.backoff_base = 10 * sim::kMillisecond;
    config.breaker_threshold = 100;  // keep the breaker out of this test
    config.jitter_stream = stream;
    BackendClient client(simulator, config);
    client.connect(&service);
    SynthesisRequest request;
    request.tasks = feasible_set();
    int finished = 0;
    sim::Time finished_at = 0;
    BackendOutcome last;
    client.request(request, [&](const BackendOutcome& outcome) {
      ++finished;
      finished_at = simulator.now();
      last = outcome;
    });
    simulator.run_until(sim::seconds(5));
    EXPECT_EQ(finished, 1);  // the callback fires exactly once
    EXPECT_EQ(client.attempts(), 3u);
    EXPECT_EQ(client.timeouts(), 3u);
    EXPECT_TRUE(last.locally_admitted);
    return finished_at;
  };
  const sim::Time a = run_once(7);
  const sim::Time b = run_once(7);
  const sim::Time c = run_once(8);
  EXPECT_EQ(a, b);  // same jitter stream: bit-identical schedule
  EXPECT_NE(a, c);  // distinct streams: decorrelated retry times
}

// --- Transport retransmit jitter ----------------------------------------------

// Records every frame-send instant of a reliable transport aimed at a black
// hole (no receiver, no acks): index 0 is the original send, the rest are
// retransmissions at the (jittered) backoff schedule.
std::vector<sim::Time> retransmit_times(sim::Simulator& simulator,
                                        middleware::TransportConfig config) {
  auto times = std::make_shared<std::vector<sim::Time>>();
  auto transport = std::make_shared<middleware::Transport>(
      [times, &simulator](net::Frame) { times->push_back(simulator.now()); },
      64, &simulator, config);
  std::vector<std::uint8_t> message(16, 0xAB);
  transport->send(2, 1, 0, message);
  simulator.run_until(simulator.now() + sim::seconds(10));
  return *times;
}

TEST(TransportJitter, RetransmitsDesynchronizeAcrossPeers) {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 20 * sim::kMillisecond;
  config.max_retries = 4;
  config.retry_jitter = 0.1;

  sim::Simulator sim_a;
  config.jitter_stream = 1;
  const std::vector<sim::Time> peer_a = retransmit_times(sim_a, config);
  sim::Simulator sim_b;
  config.jitter_stream = 2;
  const std::vector<sim::Time> peer_b = retransmit_times(sim_b, config);
  sim::Simulator sim_a2;
  config.jitter_stream = 1;
  const std::vector<sim::Time> peer_a2 = retransmit_times(sim_a2, config);

  ASSERT_EQ(peer_a.size(), 5u);  // original + 4 retries
  ASSERT_EQ(peer_b.size(), 5u);
  // Same stream: bit-reproducible. Distinct streams: every retransmit
  // lands at a different instant — the lockstep retry storm is gone.
  EXPECT_EQ(peer_a, peer_a2);
  for (std::size_t i = 1; i < peer_a.size(); ++i) {
    EXPECT_NE(peer_a[i], peer_b[i]) << "retry " << i << " still in lockstep";
  }
}

TEST(TransportJitter, ZeroJitterPreservesExactLegacyTiming) {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 20 * sim::kMillisecond;
  config.backoff_factor = 2.0;
  config.max_backoff = 200 * sim::kMillisecond;
  config.max_retries = 3;
  config.retry_jitter = 0.0;
  sim::Simulator simulator;
  const std::vector<sim::Time> times = retransmit_times(simulator, config);
  ASSERT_EQ(times.size(), 4u);
  // Pure exponential off ack_timeout: 20ms, +40ms, +80ms.
  EXPECT_EQ(times[1] - times[0], 20 * sim::kMillisecond);
  EXPECT_EQ(times[2] - times[1], 40 * sim::kMillisecond);
  EXPECT_EQ(times[3] - times[2], 80 * sim::kMillisecond);
}

TEST(TransportJitter, JitterStaysWithinConfiguredBand) {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 20 * sim::kMillisecond;
  config.max_retries = 5;
  config.retry_jitter = 0.25;
  config.max_backoff = 1000 * sim::kMillisecond;
  sim::Simulator simulator;
  const std::vector<sim::Time> times = retransmit_times(simulator, config);
  ASSERT_EQ(times.size(), 6u);
  sim::Duration base = config.ack_timeout;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const sim::Duration gap = times[i] - times[i - 1];
    const auto lo = static_cast<sim::Duration>(
        static_cast<double>(base) * (1.0 - config.retry_jitter));
    const auto hi = static_cast<sim::Duration>(
        static_cast<double>(base) * (1.0 + config.retry_jitter));
    EXPECT_GE(gap, lo) << "retry " << i;
    EXPECT_LE(gap, hi + 1) << "retry " << i;
    base = std::min<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(base) *
                                   config.backoff_factor),
        config.max_backoff);
  }
}

// --- Diagnostics uplink queue bound --------------------------------------------

TEST(DiagnosticsQueue, MultiHourOfflineBacklogIsBoundedDropOldest) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  auto parsed = model::parse_system(
      "network Net kind=ethernet\n"
      "ecu A mips=100 memory=64M asil=D network=Net\n"
      "app Over class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=900K priority=1\n"
      "deploy Over -> A\n");
  const_cast<model::AppDef*>(parsed.model.app("Over"))
      ->tasks[0]
      .execution_jitter = 0.5;
  os::EcuConfig config{.name = "A", .cpu = {.mips = 100}};
  os::Ecu ecu(simulator, config, &backbone, 1);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  platform::NodeConfig node_config;
  node_config.time_triggered = false;
  node_config.admission_control = false;
  auto& node = dp.add_node(ecu, node_config);
  dp.register_app("Over",
                  [] { return std::make_unique<platform::Application>(); });
  ASSERT_TRUE(dp.install_all());

  platform::DiagnosticsService diagnostics(dp);
  diagnostics.attach(node);
  diagnostics.set_uplink_queue_limit(4);
  int uplinked = 0;
  diagnostics.set_uplink([&](const monitor::FaultRecord&) { ++uplinked; });
  diagnostics.set_online(false);

  simulator.run_until(sim::seconds(5));
  ASSERT_GT(diagnostics.all_faults().size(), 4u);
  // The backlog is capped; everything beyond the cap was counted, not kept.
  EXPECT_EQ(diagnostics.queued_for_uplink(), 4u);
  EXPECT_EQ(diagnostics.dropped_uplink(),
            diagnostics.all_faults().size() - 4u);

  diagnostics.set_online(true);
  EXPECT_EQ(uplinked, 4);
  EXPECT_EQ(diagnostics.queued_for_uplink(), 0u);
}

// --- Fleet-scale outage survival ----------------------------------------------

FleetConfig small_fleet(std::uint64_t seed) {
  FleetConfig config;
  config.sessions = 96;
  config.topology_classes = 8;
  config.seed = seed;
  config.horizon = 8 * sim::kSecond;
  config.ota_period = 1 * sim::kSecond;
  config.wave_at = 1 * sim::kSecond;
  config.wave_fraction = 0.5;
  config.wave_stagger = 300 * sim::kMillisecond;
  config.recovery_retry = 200 * sim::kMillisecond;
  config.client.request_timeout = 50 * sim::kMillisecond;
  config.client.backoff_base = 25 * sim::kMillisecond;
  config.client.breaker_open_for = 250 * sim::kMillisecond;
  return config;
}

TEST(FleetBackend, FullOutageLeavesNoVehicleStrandedUnsafe) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  // The outage spans the fault wave: every recovery request of the wave
  // meets a dead backend first.
  FleetConfig config = small_fleet(11);
  config.outage_at = 900 * sim::kMillisecond;
  config.outage_duration = 2 * sim::kSecond;
  FleetDriver driver(simulator, service, config);
  driver.run();

  // Vehicles degraded through the fallback ladder instead of stranding.
  EXPECT_GT(driver.fallback_cache() + driver.fallback_local(), 0u);
  EXPECT_EQ(driver.fallback_none(), 0u);
  EXPECT_GT(driver.client_breaker_opens(), 0u);
  EXPECT_GT(driver.recoveries_completed(), 0u);
  // Vehicles that served stale artifacts re-validated them when their
  // breaker closed after the heal.
  EXPECT_GT(driver.revalidated(), 0u);

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, 2 * sim::kSecond);
  checker.require_fleet_recovery_bounded(driver, 4 * sim::kSecond);
  const auto report = checker.run();
  EXPECT_TRUE(report.passed) << report.summary();
}

TEST(FleetSweep, FleetRunsBitIdenticalAcrossThreadCounts) {
  const auto scenario = [](sim::ScenarioRun& run) {
    FleetConfig config = small_fleet(100 + run.index);
    config.sessions = 32;
    config.horizon = 4 * sim::kSecond;
    config.outage_at = 800 * sim::kMillisecond;
    config.outage_duration = 1 * sim::kSecond;
    config.outage_is_partition = (run.index % 2) == 1;
    FleetScheduleService service(run.simulator);
    FleetDriver driver(run.simulator, service, config);
    driver.run();
    return driver.fingerprint();
  };
  std::vector<std::uint64_t> serial;
  std::vector<std::uint64_t> parallel;
  {
    sim::ScenarioSweep sweep({.seed = 77, .threads = 0});
    serial = sweep.run<std::uint64_t>(6, scenario);
  }
  {
    sim::ScenarioSweep sweep({.seed = 77, .threads = 3});
    parallel = sweep.run<std::uint64_t>(6, scenario);
  }
  ASSERT_EQ(serial.size(), 6u);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(sim::ScenarioSweep::merge_fingerprints(serial),
            sim::ScenarioSweep::merge_fingerprints(parallel));
}

// --- FaultCampaign backend targets ---------------------------------------------

TEST(FleetBackend, CampaignDrivesBackendFailureModes) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  service.set_name("backend");
  fault::FaultCampaign campaign(simulator);
  campaign.add_backend(service);

  fault::FaultEvent crash;
  crash.at = 10 * sim::kMillisecond;
  crash.kind = fault::FaultKind::kBackendCrash;
  crash.target = "backend";
  campaign.schedule(crash);
  fault::FaultEvent restart = crash;
  restart.at = 20 * sim::kMillisecond;
  restart.kind = fault::FaultKind::kBackendRestart;
  campaign.schedule(restart);
  fault::FaultEvent partition = crash;
  partition.at = 30 * sim::kMillisecond;
  partition.kind = fault::FaultKind::kUplinkPartition;
  campaign.schedule(partition);
  fault::FaultEvent heal = crash;
  heal.at = 40 * sim::kMillisecond;
  heal.kind = fault::FaultKind::kUplinkHeal;
  campaign.schedule(heal);
  fault::FaultEvent slow = crash;
  slow.at = 50 * sim::kMillisecond;
  slow.kind = fault::FaultKind::kBackendSlow;
  slow.magnitude = 4.0;
  campaign.schedule(slow);
  campaign.arm();

  simulator.schedule_at(15 * sim::kMillisecond,
                        [&] { EXPECT_TRUE(service.crashed()); });
  simulator.schedule_at(25 * sim::kMillisecond,
                        [&] { EXPECT_FALSE(service.crashed()); });
  simulator.schedule_at(35 * sim::kMillisecond,
                        [&] { EXPECT_TRUE(service.partitioned()); });
  simulator.schedule_at(45 * sim::kMillisecond,
                        [&] { EXPECT_FALSE(service.partitioned()); });
  simulator.run_until(100 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(service.slow_factor(), 4.0);
  EXPECT_EQ(campaign.injected().size(), 5u);
}

// --- Request batching / coalescing (ISSUE 10) ---------------------------------

TEST(FleetBatching, CohortSharesOneDequeueAndResponse) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.batching = true;
  FleetScheduleService service(simulator, config);
  SynthesisRequest request;
  request.criticality = Criticality::kResync;
  request.tasks = feasible_set();
  int ok = 0;
  for (std::uint32_t session = 0; session < 8; ++session) {
    request.session = session;
    service.submit(request, [&](const SynthesisResponse& response) {
      if (response.status == ResponseStatus::kOk) ++ok;
    });
  }
  simulator.run_until(sim::seconds(2));
  // One worker dequeue answered the whole stampede cohort.
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(service.dequeues(), 1u);
  EXPECT_EQ(service.batches(), 1u);
  EXPECT_EQ(service.coalesced(), 7u);
  EXPECT_EQ(service.completed(), 8u);
  EXPECT_EQ(service.synthesis_runs(), 1u);
  // Cohort of 8 lands in log2 bucket 3: (4, 8].
  EXPECT_EQ(service.batch_size_histogram()[3], 1u);
}

TEST(FleetBatching, AdmissionChargesCohortsNotMembers) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.batching = true;
  config.queue_capacity = 1;
  config.backpressure_watermark = 1;
  config.recovery_reserve = 0;
  config.workers = 1;
  FleetScheduleService service(simulator, config);
  SynthesisRequest request;
  request.criticality = Criticality::kResync;
  request.tasks = feasible_set();
  int ok = 0;
  // Six identical requests ride one queue slot...
  for (std::uint32_t session = 0; session < 6; ++session) {
    request.session = session;
    service.submit(request, [&](const SynthesisResponse& response) {
      if (response.status == ResponseStatus::kOk) ++ok;
    });
  }
  EXPECT_EQ(service.queue_depth(), 1u);
  // ...while a distinct topology needs a second slot and is shed.
  SynthesisRequest other;
  other.criticality = Criticality::kResync;
  other.tasks = infeasible_set();
  ResponseStatus other_status = ResponseStatus::kOk;
  service.submit(other, [&](const SynthesisResponse& response) {
    other_status = response.status;
  });
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(service.coalesced(), 5u);
  EXPECT_EQ(other_status, ResponseStatus::kShed);
  EXPECT_EQ(service.shed_total(), 1u);
}

TEST(FleetBatching, RecoveryJoinerShieldsCohortFromPreemption) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.batching = true;
  config.queue_capacity = 1;
  config.backpressure_watermark = 1;
  config.recovery_reserve = 0;
  config.workers = 1;
  FleetScheduleService service(simulator, config);
  // A routine leader whose cohort picks up a recovery joiner: the cohort's
  // criticality is the minimum (most critical) of its members, so the
  // preemption scan must no longer see it as a routine victim.
  SynthesisRequest leader;
  leader.criticality = Criticality::kOta;
  leader.tasks = feasible_set();
  int cohort_ok = 0;
  service.submit(leader, [&](const SynthesisResponse& response) {
    if (response.status == ResponseStatus::kOk) ++cohort_ok;
  });
  SynthesisRequest joiner;
  joiner.criticality = Criticality::kRecovery;
  joiner.tasks = feasible_set();
  service.submit(joiner, [&](const SynthesisResponse& response) {
    if (response.status == ResponseStatus::kOk) ++cohort_ok;
  });
  SynthesisRequest rival;
  rival.criticality = Criticality::kRecovery;
  rival.tasks = infeasible_set();
  ResponseStatus rival_status = ResponseStatus::kOk;
  service.submit(rival, [&](const SynthesisResponse& response) {
    rival_status = response.status;
  });
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(cohort_ok, 2);
  EXPECT_EQ(service.preempted(), 0u);
  // The rival recovery found a full queue and no routine victim.
  EXPECT_EQ(rival_status, ResponseStatus::kShed);
}

TEST(FleetBatching, CrashLosesEveryCohortMember) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.batching = true;
  FleetScheduleService service(simulator, config);
  SynthesisRequest request;
  request.criticality = Criticality::kResync;
  request.tasks = feasible_set();
  int delivered = 0;
  for (std::uint32_t session = 0; session < 4; ++session) {
    request.session = session;
    service.submit(request,
                   [&](const SynthesisResponse&) { ++delivered; });
  }
  // Crash before service starts (start = submit + rtt/2 = 5 ms).
  simulator.schedule_at(sim::kMillisecond, [&] { service.crash(); });
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(service.lost_unreachable(), 4u);
}

// --- Memo-cache collision + eviction (ISSUE 10 satellites) --------------------

TEST(FleetCache, ForcedKeyCollisionResynthesizesInsteadOfWrongArtifact) {
  sim::Simulator simulator;
  ServiceConfig config;
  // Force every topology onto one key: only the secondary signature can
  // tell the cached artifact belongs to a different task set.
  config.key_fn = [](const std::vector<dse::AnalysisTask>&, std::uint64_t) {
    return std::uint64_t{42};
  };
  FleetScheduleService service(simulator, config);
  SynthesisRequest first;
  first.tasks = feasible_set();
  SynthesisRequest second;
  second.tasks = infeasible_set();

  EXPECT_EQ(service.query(first).status, ResponseStatus::kOk);
  EXPECT_EQ(service.cache_collisions(), 0u);
  // Same key, different topology: refused as a hit, re-synthesized, and
  // the verdict matches the actual task set (infeasible, not the cached
  // feasible artifact).
  EXPECT_EQ(service.query(second).status, ResponseStatus::kInfeasible);
  EXPECT_EQ(service.cache_collisions(), 1u);
  EXPECT_EQ(service.synthesis_runs(), 2u);
  // The overwrite is last-writer-wins in place: flipping back collides
  // again rather than serving the other topology's artifact.
  EXPECT_EQ(service.query(first).status, ResponseStatus::kOk);
  EXPECT_EQ(service.cache_collisions(), 2u);
  EXPECT_EQ(service.synthesis_runs(), 3u);
  EXPECT_EQ(service.cache_entries(), 1u);
}

TEST(FleetCache, EvictionUnderTopologyChurn) {
  sim::Simulator simulator;
  ServiceConfig config;
  config.cache_shards = 1;
  config.cache_capacity = 2;
  FleetScheduleService service(simulator, config);
  const auto churn_set = [](int salt) {
    return std::vector<dse::AnalysisTask>{
        analysis_task("churn" + std::to_string(salt), 10 * sim::kMillisecond,
                      (500 + 100 * salt) * sim::kMicrosecond, 1)};
  };
  SynthesisRequest request;
  for (int salt = 0; salt < 4; ++salt) {
    request.tasks = churn_set(salt);
    EXPECT_EQ(service.query(request).status, ResponseStatus::kOk);
  }
  // Capacity 2, four distinct topologies: two drop-oldest evictions.
  EXPECT_EQ(service.cache_evictions(), 2u);
  EXPECT_EQ(service.cache_entries(), 2u);
  EXPECT_EQ(service.synthesis_runs(), 4u);
  // The evicted topology is a miss again.
  request.tasks = churn_set(0);
  EXPECT_EQ(service.query(request).status, ResponseStatus::kOk);
  EXPECT_EQ(service.synthesis_runs(), 5u);
}

// --- Compressed fleet driver (ISSUE 10) ---------------------------------------

TEST(FleetDriverScale, WheelDriverMatchesHeapDriverBitExact) {
  const auto run_arm = [](bool wheel) {
    sim::Simulator simulator;
    FleetScheduleService service(simulator);
    FleetConfig config = small_fleet(21);
    config.sessions = 48;
    config.horizon = 6 * sim::kSecond;
    config.wave_at = 1'500 * sim::kMillisecond;
    config.outage_at = 1'400 * sim::kMillisecond;
    config.outage_duration = 1 * sim::kSecond;
    config.use_timer_wheel = wheel;
    FleetDriver driver(simulator, service, config);
    driver.run();
    return driver.fingerprint();
  };
  // The wheel is an implementation detail: same fleet, same fingerprint.
  EXPECT_EQ(run_arm(true), run_arm(false));
}

TEST(FleetDriverScale, RerunRebuildsSessionsWithoutDanglingTimers) {
  // Regression: the driver once captured raw Session pointers in wave and
  // retry lambdas; a second run() rebuilt the session vector and left the
  // old timers dangling. Index + epoch captures make re-running safe (ASan
  // guards the old failure mode).
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  FleetConfig config = small_fleet(31);
  config.sessions = 48;
  config.horizon = 5 * sim::kSecond;
  FleetDriver driver(simulator, service, config);
  driver.run();
  const std::uint64_t first_recoveries = driver.recoveries_completed();
  EXPECT_GT(first_recoveries, 0u);
  EXPECT_EQ(driver.unsafe_now(), 0u);
  driver.run();
  // The second run replays the same scenario shape later in sim time.
  EXPECT_GT(driver.recoveries_completed(), first_recoveries);
  EXPECT_EQ(driver.unsafe_now(), 0u);
  EXPECT_EQ(driver.recoveries_outstanding(), 0u);
}

TEST(FleetDriverScale, TwoRegionFailoverSurvivesRegionOutage) {
  sim::Simulator simulator;
  FleetScheduleService region0(simulator);
  FleetScheduleService region1(simulator);
  region0.set_name("region0");
  region1.set_name("region1");
  FleetConfig config = small_fleet(41);
  config.sessions = 60;
  // Region 0 dies across the wave; its sessions' breakers open and the
  // engine fails attempts over to region 1.
  config.outage_at = 900 * sim::kMillisecond;
  config.outage_duration = 2 * sim::kSecond;
  FleetDriver driver(simulator, {&region0, &region1}, config);
  driver.run();

  EXPECT_EQ(driver.regions(), 2u);
  EXPECT_GT(driver.failovers(), 0u);
  // The sibling's memo cache was cold for region-0 topologies: it had to
  // synthesize, not just serve hits.
  EXPECT_GT(region1.synthesis_runs(), 0u);
  // Failover recovers vehicles with *fresh* artifacts even mid-outage: no
  // vehicle was stranded and nothing fell through the ladder.
  EXPECT_EQ(driver.fallback_none(), 0u);
  EXPECT_GT(driver.recoveries_completed(), 0u);
  fault::InvariantChecker checker;
  checker.require_no_stranded_vehicles(driver, 2 * sim::kSecond);
  checker.require_fleet_recovery_bounded(driver, 4 * sim::kSecond);
  const auto report = checker.run();
  EXPECT_TRUE(report.passed) << report.summary();
}

TEST(FleetDriverScale, TopologyDriftFragmentsKeySpace) {
  sim::Simulator simulator;
  FleetScheduleService service(simulator);
  FleetConfig config = small_fleet(51);
  config.sessions = 40;
  config.topology_classes = 4;
  config.topology_drift_fraction = 0.5;
  config.wave_fraction = 0.0;  // routine load only
  config.horizon = 4 * sim::kSecond;
  FleetDriver driver(simulator, service, config);
  driver.run();
  // Drifted vehicles became singleton classes beyond the 4 base classes,
  // and each distinct key cost its own synthesis.
  EXPECT_GT(driver.topology_class_count(), 4u);
  EXPECT_LE(driver.topology_class_count(), 44u);
  EXPECT_GT(service.synthesis_runs(), 4u);
  EXPECT_EQ(driver.unsafe_now(), 0u);
}

}  // namespace
}  // namespace dynaplat
