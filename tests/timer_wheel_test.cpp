// Hierarchical timing wheel: exact-instant firing, insertion-order ties,
// cascade correctness, O(1) cancel semantics, and bit-identical fire
// sequences against the kernel heap on a randomized workload.
#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using dynaplat::sim::Duration;
using dynaplat::sim::EventId;
using dynaplat::sim::InlineFunction;
using dynaplat::sim::kMillisecond;
using dynaplat::sim::kSecond;
using dynaplat::sim::Random;
using dynaplat::sim::Simulator;
using dynaplat::sim::Time;
using dynaplat::sim::TimerWheel;

using Log = std::vector<std::pair<Time, int>>;

TEST(TimerWheel, FiresAtExactInstantsNotSlotBoundaries) {
  Simulator sim;
  TimerWheel wheel(sim, {.granularity = kMillisecond, .slots = 8,
                         .levels = 3});
  Log log;
  // Deliberately off-grid instants, including one far beyond level-1
  // coverage (8ms * 8 = 64ms) so it must cascade down.
  const Time instants[] = {137, 3 * kMillisecond + 41, 70 * kMillisecond + 9,
                           250 * kMillisecond + 1};
  int tag = 0;
  for (Time t : instants) {
    const int id = tag++;
    wheel.schedule_at(t, [&log, &sim, id] { log.push_back({sim.now(), id}); });
  }
  sim.run_until(kSecond);
  ASSERT_EQ(log.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(log[i].first, instants[i]) << "timer " << i;
    EXPECT_EQ(log[i].second, i);
  }
  EXPECT_GT(wheel.cascaded(), 0u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, SameInstantFiresInInsertionOrderAndCoalesces) {
  Simulator sim;
  TimerWheel wheel(sim, {});
  Log log;
  const Time at = 5 * kMillisecond;
  for (int i = 0; i < 100; ++i) {
    wheel.schedule_at(at, [&log, &sim, i] { log.push_back({sim.now(), i}); });
  }
  sim.run_until(kSecond);
  ASSERT_EQ(log.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(log[i].first, at);
    EXPECT_EQ(log[i].second, i);
  }
  // The whole batch rode one kernel event.
  EXPECT_EQ(wheel.instant_events(), 1u);
  EXPECT_EQ(wheel.max_coalesced(), 100u);
}

TEST(TimerWheel, CancelIsGenerationChecked) {
  Simulator sim;
  TimerWheel wheel(sim, {});
  int fired = 0;
  auto id = wheel.schedule_at(2 * kMillisecond, [&fired] { ++fired; });
  auto kept = wheel.schedule_at(3 * kMillisecond, [&fired] { ++fired; });
  EXPECT_EQ(wheel.pending(), 2u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // double cancel no-ops
  EXPECT_EQ(wheel.pending(), 1u);
  sim.run_until(kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.cancel(kept));  // already fired
  EXPECT_FALSE(wheel.cancel(TimerWheel::TimerId{}));
}

TEST(TimerWheel, CancelledSlotReuseInvalidatesStaleId) {
  Simulator sim;
  TimerWheel wheel(sim, {});
  int fired = 0;
  auto stale = wheel.schedule_at(kMillisecond, [&fired] { ++fired; });
  wheel.cancel(stale);
  sim.run_until(2 * kMillisecond);  // instant fires empty, slot reclaimed
  auto fresh = wheel.schedule_at(10 * kMillisecond, [&fired] { ++fired; });
  // The stale handle must not cancel the reused slot's new timer.
  EXPECT_FALSE(wheel.cancel(stale));
  sim.run_until(kSecond);
  EXPECT_EQ(fired, 1);
  (void)fresh;
}

TEST(TimerWheel, PeriodicReArmsAndCancelsFromOwnCallback) {
  Simulator sim;
  TimerWheel wheel(sim, {});
  int fires = 0;
  TimerWheel::TimerId id;
  id = wheel.schedule_every(10 * kMillisecond, 25 * kMillisecond,
                            [&fires, &wheel, &id] {
                              if (++fires == 3) wheel.cancel(id);
                            });
  sim.run_until(kSecond);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, PeriodicSpanningCascadeKeepsExactPhase) {
  Simulator sim;
  TimerWheel wheel(sim, {.granularity = kMillisecond, .slots = 4,
                         .levels = 3});
  Log log;
  // Period far beyond level-1 coverage (4ms * 4 = 16ms): every re-arm lands
  // in a far slot and must cascade back to the exact phase instant.
  wheel.schedule_every(7 * kMillisecond + 123, 50 * kMillisecond,
                       [&log, &sim] { log.push_back({sim.now(), 0}); });
  sim.run_until(kSecond);
  ASSERT_GE(log.size(), 19u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].first,
              7 * kMillisecond + 123 +
                  static_cast<Time>(i) * 50 * kMillisecond);
  }
}

TEST(TimerWheel, PastDueClampsToNow) {
  Simulator sim;
  sim.run_until(10 * kMillisecond);
  TimerWheel wheel(sim, {});
  Log log;
  wheel.schedule_at(kMillisecond, [&log, &sim] { log.push_back({sim.now(), 0}); });
  wheel.schedule_in(-5, [&log, &sim] { log.push_back({sim.now(), 1}); });
  sim.run_until(kSecond);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 10 * kMillisecond);
  EXPECT_EQ(log[1].first, 10 * kMillisecond);
}

// Randomized workload driven twice — once on the kernel heap, once on the
// wheel — must produce the identical (instant, tag) fire sequence. All
// timers live in one population, so even exact-tie instants must order
// identically (insertion sequence on both sides). Exercises one-shots out
// to cascade range, chained arms from inside callbacks, immediate and
// deferred cancels, and periodics cancelled mid-flight.
template <typename Api>
Log run_random_workload(Simulator& sim, Api& api) {
  Log log;
  auto rng = Random::stream(0xA11CE, 7);
  std::vector<typename Api::Id> cancellable;
  for (int i = 0; i < 400; ++i) {
    const int tag = i;
    const Time at = rng.uniform_int(0, 700 * kMillisecond);
    if (i % 7 == 3) {
      // Chained: the callback arms a follow-up whose delay is a pure
      // function of the tag, so both arms derive the same instant.
      api.at(at, [&log, &sim, &api, tag] {
        log.push_back({sim.now(), tag});
        auto follow = Random::stream(0xF0110, static_cast<std::uint64_t>(tag));
        api.at(sim.now() + follow.uniform_int(1, 80 * kMillisecond),
               [&log, &sim, tag] { log.push_back({sim.now(), 10'000 + tag}); });
      });
    } else {
      cancellable.push_back(api.at(
          at, [&log, &sim, tag] { log.push_back({sim.now(), tag}); }));
    }
  }
  // Immediate cancels of a deterministic subset.
  for (std::size_t i = 0; i < cancellable.size(); i += 5) {
    api.cancel(cancellable[i]);
  }
  // A few periodics cancelled from their own callbacks after k fires.
  static constexpr int kPeriodics = 8;
  auto counts = std::make_shared<std::array<int, kPeriodics>>();
  counts->fill(0);
  auto ids = std::make_shared<std::array<typename Api::Id, kPeriodics>>();
  for (int p = 0; p < kPeriodics; ++p) {
    const Time first = rng.uniform_int(0, 50 * kMillisecond);
    const Duration period = rng.uniform_int(3, 40) * kMillisecond + p;
    (*ids)[p] = api.every(first, period,
                          [&log, &sim, &api, counts, ids, p] {
                            log.push_back({sim.now(), 20'000 + p});
                            if (++(*counts)[p] == 4 + p % 3) {
                              api.cancel((*ids)[p]);
                            }
                          });
  }
  sim.run_until(2 * kSecond);
  return log;
}

struct HeapApi {
  Simulator& sim;
  using Id = EventId;
  Id at(Time t, InlineFunction fn) { return sim.schedule_at(t, std::move(fn)); }
  Id every(Time t, Duration p, InlineFunction fn) {
    return sim.schedule_every(t, p, std::move(fn));
  }
  bool cancel(Id id) { return sim.cancel(id); }
};

struct WheelApi {
  TimerWheel& wheel;
  using Id = TimerWheel::TimerId;
  Id at(Time t, InlineFunction fn) {
    return wheel.schedule_at(t, std::move(fn));
  }
  Id every(Time t, Duration p, InlineFunction fn) {
    return wheel.schedule_every(t, p, std::move(fn));
  }
  bool cancel(Id id) { return wheel.cancel(id); }
};

TEST(TimerWheel, RandomWorkloadMatchesHeapFireSequence) {
  Log heap_log;
  {
    Simulator sim;
    HeapApi api{sim};
    heap_log = run_random_workload(sim, api);
  }
  Log wheel_log;
  {
    Simulator sim;
    TimerWheel wheel(sim, {.granularity = kMillisecond, .slots = 32,
                           .levels = 3});
    WheelApi api{wheel};
    wheel_log = run_random_workload(sim, api);
  }
  ASSERT_FALSE(heap_log.empty());
  ASSERT_EQ(heap_log.size(), wheel_log.size());
  for (std::size_t i = 0; i < heap_log.size(); ++i) {
    EXPECT_EQ(heap_log[i], wheel_log[i]) << "divergence at fire " << i;
  }
}

TEST(TimerWheel, DestructionCancelsKernelEvents) {
  Simulator sim;
  int fired = 0;
  {
    TimerWheel wheel(sim, {});
    wheel.schedule_at(5 * kMillisecond, [&fired] { ++fired; });
    wheel.schedule_every(kMillisecond, kMillisecond, [&fired] { ++fired; });
  }
  // No wheel left: its instant events and cascade recurrences must be gone.
  sim.run_until(kSecond);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
