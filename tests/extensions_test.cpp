// Tests for the extension features: gateway routing between heterogeneous
// media, local clocks + sync, the vehicle diagnostics service, distributed
// update paths, redundant update masters and the ACC XiL scenario.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "net/router.hpp"
#include "obs/json.hpp"
#include "os/clock.hpp"
#include "platform/clock_sync.hpp"
#include "platform/diagnostics.hpp"
#include "platform/update.hpp"
#include "security/update_master.hpp"
#include "xil/testbench.hpp"

#include "model/parser.hpp"

namespace dynaplat {
namespace {

// --- Router ---------------------------------------------------------------------

TEST(Router, ForwardsMatchingFlowsBetweenCanAndEthernet) {
  sim::Simulator simulator;
  net::CanBus can(simulator, "can0", {});
  net::EthernetSwitch eth(simulator, "eth0", {});
  net::Router gateway(can, 10, eth, 10);
  gateway.route_a_to_b({.flow_min = 100,
                        .flow_max = 199,
                        .destination = 1,
                        .remap_priority = net::Priority{0}});
  int eth_rx = 0;
  net::Priority seen_priority = 7;
  eth.attach(1, [&](const net::Frame& frame) {
    ++eth_rx;
    seen_priority = frame.priority;
  });
  can.attach(2, [](const net::Frame&) {});
  // Matching CAN broadcast -> forwarded to Ethernet node 1.
  net::Frame frame;
  frame.flow_id = 150;
  frame.src = 2;
  frame.priority = 3;
  frame.payload.assign(8, 0xAA);
  can.send(std::move(frame));
  simulator.run();
  EXPECT_EQ(eth_rx, 1);
  EXPECT_EQ(seen_priority, 0);  // remapped
  EXPECT_EQ(gateway.frames_forwarded(), 1u);
}

TEST(Router, FiltersNonMatchingFlows) {
  sim::Simulator simulator;
  net::CanBus can(simulator, "can0", {});
  net::EthernetSwitch eth(simulator, "eth0", {});
  net::Router gateway(can, 10, eth, 10);
  gateway.route_a_to_b({.flow_min = 100, .flow_max = 199, .destination = 1});
  eth.attach(1, [](const net::Frame&) {});
  can.attach(2, [](const net::Frame&) {});
  net::Frame frame;
  frame.flow_id = 50;  // outside the range
  frame.src = 2;
  frame.payload.assign(4, 0);
  can.send(std::move(frame));
  simulator.run();
  EXPECT_EQ(gateway.frames_forwarded(), 0u);
  EXPECT_EQ(gateway.frames_filtered(), 1u);
}

TEST(Router, OversizeFramesAreDroppedNotFragmented) {
  sim::Simulator simulator;
  net::EthernetSwitch eth(simulator, "eth0", {});
  net::CanBus can(simulator, "can0", {});
  net::Router gateway(eth, 10, can, 10);
  gateway.route_a_to_b({.destination = net::kBroadcast});
  eth.attach(2, [](const net::Frame&) {});
  can.attach(3, [](const net::Frame&) {});
  net::Frame frame;
  frame.flow_id = 1;
  frame.src = 2;
  frame.dst = 10;
  frame.payload.assign(100, 0);  // > CAN's 8 bytes
  eth.send(std::move(frame));
  simulator.run();
  EXPECT_EQ(gateway.frames_oversize(), 1u);
  EXPECT_EQ(can.frames_delivered(), 0u);
}

TEST(Router, BidirectionalRouting) {
  sim::Simulator simulator;
  net::CanBus can(simulator, "can0", {});
  net::EthernetSwitch eth(simulator, "eth0", {});
  net::Router gateway(can, 10, eth, 10);
  gateway.route_a_to_b({.destination = 1});
  gateway.route_b_to_a({.destination = net::kBroadcast});
  int can_rx = 0, eth_rx = 0;
  can.attach(2, [&](const net::Frame&) { ++can_rx; });
  eth.attach(1, [&](const net::Frame&) { ++eth_rx; });
  net::Frame from_can;
  from_can.flow_id = 1;
  from_can.src = 2;
  from_can.payload.assign(4, 0);
  can.send(std::move(from_can));
  net::Frame from_eth;
  from_eth.flow_id = 2;
  from_eth.src = 1;
  from_eth.dst = 10;
  from_eth.payload.assign(8, 0);
  eth.send(std::move(from_eth));
  simulator.run();
  EXPECT_EQ(eth_rx, 1);
  EXPECT_EQ(can_rx, 1);
}

TEST(Router, WorkSubmitterDelaysForwarding) {
  sim::Simulator simulator;
  net::CanBus can(simulator, "can0", {});
  net::EthernetSwitch eth(simulator, "eth0", {});
  // Gateway CPU adds 5 ms per frame.
  net::Router gateway(can, 10, eth, 10,
                      [&simulator](std::function<void()> work) {
                        simulator.schedule_in(5 * sim::kMillisecond,
                                              std::move(work));
                      });
  gateway.route_a_to_b({.destination = 1});
  sim::Time delivered = 0;
  eth.attach(1, [&](const net::Frame&) { delivered = simulator.now(); });
  can.attach(2, [](const net::Frame&) {});
  net::Frame frame;
  frame.flow_id = 1;
  frame.src = 2;
  frame.payload.assign(8, 0);
  can.send(std::move(frame));
  simulator.run();
  EXPECT_GT(delivered, 5 * sim::kMillisecond);
}

// --- LocalClock + ClockSyncService --------------------------------------------------

TEST(LocalClock, DriftAccumulates) {
  sim::Simulator simulator;
  os::LocalClock clock(simulator, 100.0);  // 100 ppm fast
  simulator.run_until(sim::seconds(10));
  // 100 ppm over 10 s = 1 ms fast.
  EXPECT_NEAR(static_cast<double>(clock.true_error()),
              static_cast<double>(sim::kMillisecond), 1000.0);
}

TEST(LocalClock, AdjustCorrectsOffset) {
  sim::Simulator simulator;
  os::LocalClock clock(simulator, 0.0, 500 * sim::kMicrosecond);
  EXPECT_EQ(clock.true_error(), 500 * sim::kMicrosecond);
  clock.adjust(-500 * sim::kMicrosecond);
  EXPECT_EQ(clock.true_error(), 0);
}

TEST(ClockSync, SlaveConvergesToMaster) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig master_config{.name = "master", .cpu = {.mips = 1000}};
  os::EcuConfig slave_config{.name = "slave", .cpu = {.mips = 1000}};
  os::Ecu master_ecu(simulator, master_config, &backbone, 1);
  os::Ecu slave_ecu(simulator, slave_config, &backbone, 2);
  master_ecu.processor().start();
  slave_ecu.processor().start();
  middleware::ServiceRuntime master_rt(master_ecu);
  middleware::ServiceRuntime slave_rt(slave_ecu);

  os::LocalClock master_clock(simulator, 0.0);  // reference
  // Slave: 200 ppm fast and starting 10 ms off.
  os::LocalClock slave_clock(simulator, 200.0, 10 * sim::kMillisecond);

  platform::ClockSyncService master_sync(master_rt, master_clock, true);
  platform::ClockSyncService slave_sync(slave_rt, slave_clock, false);
  simulator.run_until(sim::seconds(10));

  EXPECT_GT(slave_sync.corrections(), 50u);
  // Unsynced, the error would be 10 ms + 200 ppm * 10 s = 12 ms. Synced, it
  // is bounded by drift over one 100 ms period + path-delay misestimate.
  EXPECT_LT(std::abs(slave_clock.true_error()), 200 * sim::kMicrosecond);
  EXPECT_LT(slave_sync.residual_error().percentile(95),
            200'000.0 /* 200 us */);
}

TEST(ClockSync, TighterPeriodTightensError) {
  auto residual_for = [](sim::Duration period) {
    sim::Simulator simulator;
    net::EthernetSwitch backbone(simulator, "eth", {});
    os::EcuConfig mc{.name = "m", .cpu = {.mips = 1000}};
    os::EcuConfig sc{.name = "s", .cpu = {.mips = 1000}};
    os::Ecu me(simulator, mc, &backbone, 1);
    os::Ecu se(simulator, sc, &backbone, 2);
    me.processor().start();
    se.processor().start();
    middleware::ServiceRuntime mr(me);
    middleware::ServiceRuntime sr(se);
    os::LocalClock mclk(simulator, 0.0);
    os::LocalClock sclk(simulator, 500.0);  // strongly drifting
    platform::ClockSyncConfig config;
    config.sync_period = period;
    platform::ClockSyncService msync(mr, mclk, true, config);
    platform::ClockSyncService ssync(sr, sclk, false, config);
    simulator.run_until(sim::seconds(20));
    return ssync.residual_error().percentile(95);
  };
  EXPECT_LT(residual_for(10 * sim::kMillisecond),
            residual_for(500 * sim::kMillisecond));
}

// --- Diagnostics service ---------------------------------------------------------------

TEST(Diagnostics, AggregatesFaultsAcrossNodesAndBuffersOffline) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  auto parsed = model::parse_system(
      "network Net kind=ethernet\n"
      "ecu A mips=100 memory=64M asil=D network=Net\n"
      "app Over class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=900K priority=1\n"  // u=0.9, jittery below
      "deploy Over -> A\n");
  // Make the task overrun: bump jitter post-parse.
  const_cast<model::AppDef*>(parsed.model.app("Over"))
      ->tasks[0]
      .execution_jitter = 0.5;
  os::EcuConfig config{.name = "A", .cpu = {.mips = 100}};
  os::Ecu ecu(simulator, config, &backbone, 1);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  platform::NodeConfig node_config;
  node_config.time_triggered = false;  // let it miss deadlines
  node_config.admission_control = false;
  auto& node = dp.add_node(ecu, node_config);
  dp.register_app("Over", [] {
    return std::make_unique<platform::Application>();
  });
  ASSERT_TRUE(dp.install_all());

  platform::DiagnosticsService diagnostics(dp);
  diagnostics.attach(node);
  int uplinked = 0;
  diagnostics.set_uplink([&](const monitor::FaultRecord&) { ++uplinked; });
  diagnostics.set_online(false);  // tunnel, no connectivity

  simulator.run_until(sim::seconds(2));
  EXPECT_GT(diagnostics.all_faults().size(), 0u);
  EXPECT_EQ(uplinked, 0);
  EXPECT_GT(diagnostics.queued_for_uplink(), 0u);

  diagnostics.set_online(true);  // back online: backlog flushes
  EXPECT_GT(uplinked, 0);
  EXPECT_EQ(diagnostics.queued_for_uplink(), 0u);
  const std::string report = diagnostics.vehicle_report();
  EXPECT_NE(report.find("deadline_miss"), std::string::npos);
}

// A self-overloading one-ECU world that organically produces monitor
// faults, shared by the diagnostics tests below.
struct FaultyWorld {
  FaultyWorld() {
    parsed = model::parse_system(
        "network Net kind=ethernet\n"
        "ecu A mips=100 memory=64M asil=D network=Net\n"
        "app Over class=deterministic asil=B memory=4M\n"
        "  task t period=10ms wcet=900K priority=1\n"
        "deploy Over -> A\n");
    const_cast<model::AppDef*>(parsed.model.app("Over"))
        ->tasks[0]
        .execution_jitter = 0.5;
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    os::EcuConfig config{.name = "A", .cpu = {.mips = 100}};
    ecu = std::make_unique<os::Ecu>(simulator, config, backbone.get(), 1,
                                    &trace);
    platform = std::make_unique<platform::DynamicPlatform>(
        simulator, parsed.model, parsed.deployment);
    platform::NodeConfig node_config;
    node_config.time_triggered = false;
    node_config.admission_control = false;
    node = &platform->add_node(*ecu, node_config);
    platform->register_app(
        "Over", [] { return std::make_unique<platform::Application>(); });
    EXPECT_TRUE(platform->install_all());
  }

  sim::Simulator simulator;
  sim::Trace trace;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::unique_ptr<os::Ecu> ecu;
  std::unique_ptr<platform::DynamicPlatform> platform;
  platform::PlatformNode* node = nullptr;
};

TEST(Diagnostics, FlushOnReconnectPreservesFaultOrder) {
  FaultyWorld world;
  platform::DiagnosticsService diagnostics(*world.platform);
  diagnostics.attach(*world.node);
  std::vector<sim::Time> uplink_times;
  diagnostics.set_uplink([&](const monitor::FaultRecord& record) {
    uplink_times.push_back(record.at);
  });
  diagnostics.set_online(false);

  world.simulator.run_until(sim::seconds(2));
  const std::size_t queued = diagnostics.queued_for_uplink();
  ASSERT_GT(queued, 1u);
  diagnostics.set_online(true);

  // The backlog flushed in submission order: timestamps non-decreasing and
  // matching the vehicle store record for record.
  ASSERT_EQ(uplink_times.size(), queued);
  ASSERT_EQ(uplink_times.size(), diagnostics.all_faults().size());
  for (std::size_t i = 0; i < uplink_times.size(); ++i) {
    EXPECT_EQ(uplink_times[i], diagnostics.all_faults()[i].at);
    if (i > 0) EXPECT_GE(uplink_times[i], uplink_times[i - 1]);
  }
}

TEST(Diagnostics, ReattachDoesNotDuplicateForwarding) {
  FaultyWorld world;
  platform::DiagnosticsService diagnostics(*world.platform);
  diagnostics.attach(*world.node);
  diagnostics.attach(*world.node);  // idempotent: no double forwarding
  int uplinked = 0;
  diagnostics.set_uplink([&](const monitor::FaultRecord&) { ++uplinked; });

  world.simulator.run_until(sim::seconds(2));
  ASSERT_GT(diagnostics.all_faults().size(), 0u);
  // Each monitor fault appears exactly once in the store and the uplink.
  EXPECT_EQ(diagnostics.all_faults().size(),
            world.node->monitor().faults().size());
  EXPECT_EQ(static_cast<std::size_t>(uplinked),
            diagnostics.all_faults().size());
  EXPECT_EQ(diagnostics.uplinked(), diagnostics.all_faults().size());
}

TEST(Diagnostics, MetricsSnapshotExposesFaultCounters) {
  FaultyWorld world;
  platform::DiagnosticsService diagnostics(*world.platform);
  // attach() adopts the node's trace-backed registry automatically.
  diagnostics.attach(*world.node);
  world.simulator.run_until(sim::seconds(2));
  ASSERT_GT(diagnostics.all_faults().size(), 0u);

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(diagnostics.metrics_snapshot(), &doc, &error))
      << error;
  const std::string kind = diagnostics.all_faults().front().kind;
  EXPECT_GE(doc.at("counters").at("diag.faults.A." + kind).number, 1.0);
}

// --- ACC XiL scenario ---------------------------------------------------------------------

TEST(AccXil, MilFollowsLeadWithoutCollision) {
  xil::AccScenario scenario;
  const auto result = xil::run_acc_mil(scenario);
  EXPECT_FALSE(result.collision);
  EXPECT_GT(result.min_gap_m, 5.0);
  EXPECT_LT(result.mean_gap_error_m, 8.0);
}

TEST(AccXil, SilMatchesMilBehaviour) {
  xil::AccScenario scenario;
  const auto mil = xil::run_acc_mil(scenario);
  const auto sil = xil::run_acc_sil(scenario);
  EXPECT_FALSE(sil.collision);
  EXPECT_EQ(sil.deadline_misses, 0u);
  EXPECT_NEAR(sil.min_gap_m, mil.min_gap_m, 3.0);
  EXPECT_NEAR(sil.mean_gap_error_m, mil.mean_gap_error_m, 3.0);
}

TEST(AccXil, HardBrakingShrinksGapButNoCollision) {
  xil::AccScenario scenario;
  scenario.lead_brakes_to_mps = 5.0;  // hard braking event
  const auto result = xil::run_acc_mil(scenario);
  EXPECT_FALSE(result.collision);
  EXPECT_LT(result.min_gap_m, scenario.initial_gap_m);
}

TEST(AccXil, FrameLossDegradesButSurvives) {
  xil::AccScenario scenario;
  scenario.frame_loss_rate = 0.1;
  const auto result = xil::run_acc_sil(scenario);
  EXPECT_FALSE(result.collision);
}

}  // namespace
}  // namespace dynaplat

// --- Distributed updates & redundant masters (separate namespace: reuse
// platform test fixtures' style without colliding names) -----------------------

#include "middleware/payload.hpp"

namespace dynaplat::platform {
namespace {

class ChainApp final : public Application {
 public:
  void on_task(const std::string&) override {
    ++ticks_;
    if (!active() || context_.def->provides.empty()) return;
    middleware::PayloadWriter writer;
    writer.u64(ticks_);
    context_.comm->publish(context_.service_id(context_.def->provides[0]), 1,
                           writer.take(), 2);
  }

 private:
  std::uint64_t ticks_ = 0;
};

struct ChainWorld {
  ChainWorld() {
    parsed = model::parse_system(
        "network Net kind=ethernet bitrate=100M\n"
        "ecu A mips=1000 memory=64M asil=D network=Net\n"
        "ecu B mips=1000 memory=64M asil=D network=Net\n"
        "interface Up paradigm=event payload=8 period=10ms version=1\n"
        "interface Down paradigm=event payload=8 period=10ms version=1\n"
        "app Producer class=deterministic asil=B memory=4M\n"
        "  task t period=10ms wcet=100K priority=1\n"
        "  provides Up\n"
        "app Processor class=deterministic asil=B memory=4M\n"
        "  task t period=10ms wcet=100K priority=1\n"
        "  consumes Up\n"
        "  provides Down\n"
        "deploy Producer -> A\n"
        "deploy Processor -> B\n");
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    os::EcuConfig ca{.name = "A", .cpu = {.mips = 1000}};
    os::EcuConfig cb{.name = "B", .cpu = {.mips = 1000}};
    ecu_a = std::make_unique<os::Ecu>(simulator, ca, backbone.get(), 1);
    ecu_b = std::make_unique<os::Ecu>(simulator, cb, backbone.get(), 2);
    dp = std::make_unique<DynamicPlatform>(simulator, parsed.model,
                                           parsed.deployment);
    dp->add_node(*ecu_a);
    dp->add_node(*ecu_b);
    dp->register_app("Producer", [] { return std::make_unique<ChainApp>(); });
    dp->register_app("Processor",
                     [] { return std::make_unique<ChainApp>(); });
    EXPECT_TRUE(dp->install_all());
    simulator.run_until(200 * sim::kMillisecond);
  }

  model::AppDef v2(const char* app) {
    model::AppDef def = *parsed.model.app(app);
    def.version = 2;
    return def;
  }

  sim::Simulator simulator;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::unique_ptr<os::Ecu> ecu_a, ecu_b;
  std::unique_ptr<DynamicPlatform> dp;
};

TEST(DistributedUpdate, UpdatesPathInOrderAcrossEcus) {
  ChainWorld world;
  UpdateManager updates(*world.dp);
  UpdateManager::DistributedReport report;
  updates.distributed_update(
      {{"A", "Producer", world.v2("Producer"),
        [] { return std::make_unique<ChainApp>(); }},
       {"B", "Processor", world.v2("Processor"),
        [] { return std::make_unique<ChainApp>(); }}},
      UpdateConfig{}, [&](UpdateManager::DistributedReport r) {
        report = std::move(r);
      });
  world.simulator.run_until(sim::seconds(5));
  EXPECT_TRUE(report.success) << report.reason;
  ASSERT_EQ(report.steps.size(), 2u);
  // Steps ran strictly in order.
  EXPECT_LE(report.steps[0].finished, report.steps[1].started);
  EXPECT_TRUE(world.dp->node("A")->hosts("Producer#v2"));
  EXPECT_TRUE(world.dp->node("B")->hosts("Processor#v2"));
}

TEST(DistributedUpdate, AbortsPathWhenStepFails) {
  ChainWorld world;
  UpdateManager updates(*world.dp);
  // Second step's new version is infeasible (fails admission).
  model::AppDef broken = world.v2("Processor");
  broken.tasks[0].instructions = 20'000'000;  // 20 ms per 10 ms
  UpdateManager::DistributedReport report;
  updates.distributed_update(
      {{"A", "Producer", world.v2("Producer"),
        [] { return std::make_unique<ChainApp>(); }},
       {"B", "Processor", broken,
        [] { return std::make_unique<ChainApp>(); }},
       {"A", "Producer#v2", world.v2("Producer"),
        [] { return std::make_unique<ChainApp>(); }}},
      UpdateConfig{}, [&](UpdateManager::DistributedReport r) {
        report = std::move(r);
      });
  world.simulator.run_until(sim::seconds(5));
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.steps.size(), 2u);  // step 0 ok, step 1 failed, step 2 never ran
  EXPECT_TRUE(report.steps[0].success);
  EXPECT_FALSE(report.steps[1].success);
  // Step 0's result stands; step 1's old version still serves.
  EXPECT_TRUE(world.dp->node("A")->hosts("Producer#v2"));
  EXPECT_TRUE(world.dp->node("B")->hosts("Processor"));
  EXPECT_FALSE(world.dp->node("B")->hosts("Processor#v2"));
}

TEST(RedundantUpdateMaster, FailsOverToSecondMaster) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", net::EthernetConfig{});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::vector<std::unique_ptr<middleware::ServiceRuntime>> rts;
  for (int i = 0; i < 3; ++i) {
    os::EcuConfig config{.name = "e" + std::to_string(i),
                         .cpu = {.mips = 1000}};
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             static_cast<net::NodeId>(i + 1)));
    ecus.back()->processor().start();
    rts.push_back(std::make_unique<middleware::ServiceRuntime>(*ecus.back()));
  }
  sim::Random rng(4242);
  const auto oem = crypto::RsaKeyPair::generate(512, rng);
  security::PackageSigner signer(oem);
  // Two redundant masters on distinct service ids and ECUs.
  security::UpdateMasterService master0(*rts[0], oem.pub, 0xF000);
  security::UpdateMasterService master1(*rts[1], oem.pub, 0xF001);
  security::UpdateMasterClient client(*rts[2], {0xF000, 0xF001});

  const auto package = signer.sign("App", 1, std::vector<std::uint8_t>(512, 1));
  // Primary master's ECU dies before the request.
  ecus[0]->fail();
  bool verdict = false;
  int callbacks = 0;
  client.verify(package, [&](bool ok) {
    verdict = ok;
    ++callbacks;
  });
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(verdict);
  EXPECT_EQ(client.last_master_used(), 1);
  EXPECT_EQ(master1.verifications_served(), 1u);
}

}  // namespace
}  // namespace dynaplat::platform

// --- Interface version pinning (Sec. 2.1: the owner controls the version) ---

namespace dynaplat {
namespace {

TEST(VersionPinning, ParserReadsConsumesWithMinVersion) {
  auto sys = model::parse_system(
      "interface Data paradigm=event version=3\n"
      "app C\n  consumes Data@2\n");
  const auto* app = sys.model.app("C");
  ASSERT_NE(app, nullptr);
  ASSERT_EQ(app->consumes.size(), 1u);
  EXPECT_EQ(app->min_versions.at("Data"), 2u);
  // Round trip through to_dsl.
  const auto reparsed =
      model::parse_system(model::to_dsl(sys.model, sys.deployment));
  EXPECT_EQ(reparsed.model.app("C")->min_versions.at("Data"), 2u);
}

TEST(VersionPinning, VerifierFlagsTooOldInterface) {
  auto sys = model::parse_system(
      "ecu E asil=D\n"
      "interface Data paradigm=event version=1\n"
      "app P asil=B\n  provides Data\n"
      "app C asil=B\n  consumes Data@2\n"
      "deploy P -> E\ndeploy C -> E\n");
  model::Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) {
    found |= v.rule == "structure.version-mismatch";
  }
  EXPECT_TRUE(found);
}

TEST(VersionPinning, RuntimeIgnoresStaleOffers) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", net::EthernetConfig{});
  os::EcuConfig ca{.name = "a", .cpu = {.mips = 1000}};
  os::EcuConfig cb{.name = "b", .cpu = {.mips = 1000}};
  os::Ecu a(simulator, ca, &backbone, 1);
  os::Ecu b(simulator, cb, &backbone, 2);
  a.processor().start();
  b.processor().start();
  middleware::ServiceRuntime rt_a(a);
  middleware::ServiceRuntime rt_b(b);
  rt_b.require_version(5, 2);
  rt_a.offer(5, 1);  // stale version
  simulator.run_until(50 * sim::kMillisecond);
  EXPECT_FALSE(rt_b.provider_of(5).has_value());
  EXPECT_GE(rt_b.stale_offers_ignored(), 1u);
  // The provider upgrades: the new Offer binds.
  rt_a.offer(5, 2);
  simulator.run_until(100 * sim::kMillisecond);
  ASSERT_TRUE(rt_b.provider_of(5).has_value());
  EXPECT_EQ(rt_b.provider_version(5).value_or(0), 2u);
}

TEST(VersionPinning, RequireVersionUnbindsStaleProvider) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", net::EthernetConfig{});
  os::EcuConfig ca{.name = "a", .cpu = {.mips = 1000}};
  os::EcuConfig cb{.name = "b", .cpu = {.mips = 1000}};
  os::Ecu a(simulator, ca, &backbone, 1);
  os::Ecu b(simulator, cb, &backbone, 2);
  a.processor().start();
  b.processor().start();
  middleware::ServiceRuntime rt_a(a);
  middleware::ServiceRuntime rt_b(b);
  rt_a.offer(5, 1);
  simulator.run_until(50 * sim::kMillisecond);
  ASSERT_TRUE(rt_b.provider_of(5).has_value());
  rt_b.require_version(5, 3);  // tightened at runtime (e.g. after update)
  EXPECT_FALSE(rt_b.provider_of(5).has_value());
}

}  // namespace
}  // namespace dynaplat

// --- Self-healing reconfiguration (Sec. 2.3 "on the road" mapping) -------------

#include "platform/reconfiguration.hpp"

namespace dynaplat::platform {
namespace {

struct ReconfigWorld {
  explicit ReconfigWorld(const char* extra_ecu_attrs = "") {
    std::string dsl =
        "network Net kind=ethernet bitrate=100M\n"
        "ecu A mips=1000 memory=64M asil=D network=Net\n"
        "ecu B mips=1000 memory=64M asil=D network=Net " +
        std::string(extra_ecu_attrs) + "\n" +
        "interface Out paradigm=event payload=8 period=10ms\n"
        "app Fn class=deterministic asil=B memory=4M\n"
        "  task t period=10ms wcet=2M priority=1\n"  // 0.2 util
        "  provides Out\n"
        "deploy Fn -> A | B\n";
    parsed = model::parse_system(dsl);
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    for (const auto& ecu_def : parsed.model.ecus()) {
      os::EcuConfig config;
      config.name = ecu_def.name;
      config.cpu.mips = ecu_def.mips;
      config.memory_bytes = ecu_def.memory_bytes;
      ecus.push_back(std::make_unique<os::Ecu>(
          simulator, config, backbone.get(),
          static_cast<net::NodeId>(ecus.size() + 1)));
    }
    dp = std::make_unique<DynamicPlatform>(simulator, parsed.model,
                                           parsed.deployment);
    for (auto& ecu : ecus) dp->add_node(*ecu);
    dp->register_app("Fn", [] { return std::make_unique<Application>(); });
    EXPECT_TRUE(dp->install_all());
  }

  sim::Simulator simulator;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::unique_ptr<DynamicPlatform> dp;
};

TEST(Reconfiguration, MigratesAppOffFailedEcu) {
  ReconfigWorld world;
  ReconfigurationManager reconfig(*world.dp);
  reconfig.engage();
  world.simulator.run_until(sim::seconds(1));
  ASSERT_TRUE(world.dp->node("A")->hosts("Fn"));
  world.ecus[0]->fail();  // ECU A dies
  world.simulator.run_until(sim::seconds(2));
  ASSERT_EQ(reconfig.migrations().size(), 1u);
  const auto& migration = reconfig.migrations().front();
  EXPECT_TRUE(migration.success);
  EXPECT_EQ(migration.from_ecu, "A");
  EXPECT_EQ(migration.to_ecu, "B");
  const AppInstance* inst = world.dp->node("B")->instance("Fn");
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->running);
  // Recovery within a couple of sweep periods.
  EXPECT_LT(migration.at, sim::seconds(1) + 200 * sim::kMillisecond);
}

TEST(Reconfiguration, ServiceResumesAfterMigration) {
  ReconfigWorld world;
  ReconfigurationManager reconfig(*world.dp);
  reconfig.engage();
  // Fn is a plain Application (no publishing), so instead verify that
  // consumers re-bind: subscribe from B's runtime and check the provider
  // moves from node A's id to node B's after migration.
  world.simulator.run_until(500 * sim::kMillisecond);
  const auto service = world.dp->service_id("Out");
  const auto before = world.dp->node("B")->comm().provider_of(service);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(*before, world.ecus[0]->node_id());
  world.ecus[0]->fail();
  world.simulator.run_until(sim::seconds(2));
  const auto after = world.dp->node("B")->comm().provider_of(service);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, world.ecus[1]->node_id());
}

TEST(Reconfiguration, StrandedWhenNoCapacity) {
  // Spare ECU too small for the app's memory quota.
  ReconfigWorld world("");
  // Exhaust B's memory so placement must fail.
  ASSERT_NE(world.ecus[1]->memory().create_process("ballast", 62ull << 20),
            os::kInvalidProcess);
  ReconfigurationManager reconfig(*world.dp);
  reconfig.engage();
  world.simulator.run_until(500 * sim::kMillisecond);
  world.ecus[0]->fail();
  world.simulator.run_until(sim::seconds(2));
  ASSERT_FALSE(reconfig.migrations().empty());
  EXPECT_FALSE(reconfig.migrations().front().success);
  ASSERT_EQ(reconfig.stranded().size(), 1u);
  EXPECT_EQ(reconfig.stranded().front(), "Fn");
  // Failure recorded once per episode, not once per sweep.
  EXPECT_EQ(reconfig.migrations().size(), 1u);
}

TEST(Reconfiguration, LeavesReplicatedAppsToRedundancyManager) {
  auto parsed = model::parse_system(
      "network Net kind=ethernet bitrate=100M\n"
      "ecu A mips=1000 memory=64M asil=D network=Net\n"
      "ecu B mips=1000 memory=64M asil=D network=Net\n"
      "app R class=deterministic asil=B memory=4M replicas=2\n"
      "  task t period=10ms wcet=1M priority=1\n"
      "deploy R -> A | B\n");
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", net::EthernetConfig{});
  os::EcuConfig ca{.name = "A", .cpu = {.mips = 1000}};
  os::EcuConfig cb{.name = "B", .cpu = {.mips = 1000}};
  os::Ecu a(simulator, ca, &backbone, 1);
  os::Ecu b(simulator, cb, &backbone, 2);
  DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(a);
  dp.add_node(b);
  dp.register_app("R", [] { return std::make_unique<Application>(); });
  ASSERT_TRUE(dp.install_all());
  ReconfigurationManager reconfig(dp);
  reconfig.engage();
  a.fail();
  simulator.run_until(sim::seconds(1));
  EXPECT_TRUE(reconfig.migrations().empty());
}

}  // namespace
}  // namespace dynaplat::platform
