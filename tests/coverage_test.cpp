// Edge-case coverage: corner behaviours of the substrates that the main
// suites don't reach — empty/degenerate inputs, boundary values, and the
// less-travelled error paths.
#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "dse/schedulability.hpp"
#include "middleware/runtime.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "net/flexray.hpp"
#include "sim/stats.hpp"

namespace dynaplat {
namespace {

// --- BigNum degenerates ---------------------------------------------------------

TEST(BigNumEdge, ZeroBehaviour) {
  crypto::BigNum zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_TRUE((zero + zero).is_zero());
  EXPECT_TRUE((zero * crypto::BigNum(12345)).is_zero());
  EXPECT_TRUE((crypto::BigNum(7) - crypto::BigNum(7)).is_zero());
}

TEST(BigNumEdge, DivisionByZeroThrows) {
  EXPECT_THROW(crypto::BigNum(5) % crypto::BigNum(), std::domain_error);
  EXPECT_THROW(crypto::BigNum(5) / crypto::BigNum(), std::domain_error);
}

TEST(BigNumEdge, ShiftByLimbMultiples) {
  const auto a = crypto::BigNum::from_hex("deadbeef");
  EXPECT_EQ(a.shifted_left(32).to_hex(), "deadbeef00000000");
  EXPECT_EQ(a.shifted_left(64).shifted_right(64).to_hex(), "deadbeef");
  EXPECT_TRUE(a.shifted_right(64).is_zero());
}

TEST(BigNumEdge, SelfSubtraction) {
  const auto a = crypto::BigNum::from_hex("ffffffffffffffffffffffff");
  EXPECT_TRUE((a - a).is_zero());
}

TEST(BigNumEdge, ModPowWithZeroExponentIsOne) {
  EXPECT_TRUE(crypto::BigNum(7).mod_pow(crypto::BigNum(), crypto::BigNum(13)) ==
              crypto::BigNum(1));
}

TEST(BigNumEdge, ComparisonTotalOrder) {
  const auto small = crypto::BigNum::from_hex("ffffffff");
  const auto big = crypto::BigNum::from_hex("100000000");
  EXPECT_TRUE(small < big);
  EXPECT_FALSE(big < small);
  EXPECT_TRUE(small <= small);
  EXPECT_TRUE(big > small);
}

// --- RSA digest API -----------------------------------------------------------------

TEST(RsaEdge, DigestSignVerifyMatchesMessageApi) {
  sim::Random rng(4711);
  const auto kp = crypto::RsaKeyPair::generate(512, rng);
  const std::vector<std::uint8_t> msg{1, 2, 3};
  const auto digest = crypto::Sha256::digest(msg);
  const auto sig1 = crypto::rsa_sign(kp.priv, msg);
  const auto sig2 = crypto::rsa_sign_digest(kp.priv, digest);
  EXPECT_EQ(sig1, sig2);  // deterministic padding: identical signatures
  EXPECT_TRUE(crypto::rsa_verify_digest(kp.pub, digest, sig1));
}

TEST(RsaEdge, WrongLengthSignatureRejectedFast) {
  sim::Random rng(4712);
  const auto kp = crypto::RsaKeyPair::generate(512, rng);
  EXPECT_FALSE(crypto::rsa_verify(kp.pub, {1}, std::vector<std::uint8_t>(3)));
}

// --- Stats edge cases -----------------------------------------------------------------

TEST(StatsEdge, SingleSample) {
  sim::Stats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.min(), 42.0);
  EXPECT_EQ(stats.max(), 42.0);
  EXPECT_EQ(stats.mean(), 42.0);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.percentile(0), 42.0);
  EXPECT_EQ(stats.percentile(100), 42.0);
}

TEST(StatsEdge, ClearResets) {
  sim::Stats stats;
  stats.add(1.0);
  stats.add(2.0);
  stats.clear();
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.sum(), 0.0);
  stats.add(5.0);
  EXPECT_EQ(stats.mean(), 5.0);
}

TEST(StatsEdge, NegativeValues) {
  sim::Stats stats;
  for (double v : {-5.0, -1.0, 3.0}) stats.add(v);
  EXPECT_EQ(stats.min(), -5.0);
  EXPECT_EQ(stats.max(), 3.0);
  EXPECT_NEAR(stats.mean(), -1.0, 1e-12);
}

TEST(HistogramEdge, Log2Buckets) {
  auto h = sim::Histogram::log2(1.0, 4);  // edges 1,2,4,8,16
  h.add(1.5);
  h.add(3.0);
  h.add(20.0);  // overflow
  h.add(0.5);   // underflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(0), 1u);               // underflow
  EXPECT_EQ(h.count_at(h.size() - 1), 1u);    // overflow
  EXPECT_FALSE(h.render().empty());
}

// --- DSL parser corner cases -------------------------------------------------------------

TEST(ParserEdge, CommentsAndBlankLines) {
  const auto sys = model::parse_system(
      "# full line comment\n"
      "\n"
      "ecu A mips=100 # trailing comment\n"
      "   \n");
  EXPECT_EQ(sys.model.ecus().size(), 1u);
  EXPECT_EQ(sys.model.ecu("A")->mips, 100u);
}

TEST(ParserEdge, EmptyInputYieldsEmptyModel) {
  const auto sys = model::parse_system("");
  EXPECT_TRUE(sys.model.ecus().empty());
  EXPECT_TRUE(sys.model.apps().empty());
}

TEST(ParserEdge, FractionalDurations) {
  EXPECT_EQ(model::parse_duration("0.5ms"), 500'000);
  EXPECT_EQ(model::parse_duration("2.5us"), 2'500);
}

TEST(ParserEdge, MalformedKeyValueRejected) {
  EXPECT_THROW(model::parse_system("ecu A =broken\n"), model::ParseError);
  EXPECT_THROW(model::parse_system("ecu A mips=abc\n"), model::ParseError);
}

// --- Schedulability degenerates -------------------------------------------------------------

TEST(SchedulabilityEdge, EmptyTaskSetIsSchedulable) {
  std::string why;
  EXPECT_TRUE(dse::schedulable({}, &why));
  EXPECT_TRUE(dse::edf_feasible({}));
  const auto table = dse::synthesize_tt_table({});
  ASSERT_TRUE(table.has_value());
  EXPECT_TRUE(table->windows.empty());
}

TEST(SchedulabilityEdge, SingleTaskFullUtilization) {
  dse::AnalysisTask task;
  task.name = "t";
  task.period = 10 * sim::kMillisecond;
  task.deadline = task.period;
  task.wcet = task.period;  // exactly 100%
  task.deterministic = true;
  EXPECT_TRUE(dse::response_time_analysis({task}).has_value());
  EXPECT_TRUE(dse::synthesize_tt_table({task}).has_value());
  task.wcet = task.period + 1;
  EXPECT_FALSE(dse::response_time_analysis({task}).has_value());
}

// --- FlexRay edge: empty cycles stop rescheduling ----------------------------------------------

TEST(FlexRayEdge, IdleBusSchedulesNoCycles) {
  sim::Simulator simulator;
  net::FlexRayBus bus(simulator, "fr", {});
  bus.attach(1, [](const net::Frame&) {});
  simulator.run_until(sim::seconds(1));
  EXPECT_EQ(bus.cycles_run(), 0u);
  EXPECT_EQ(simulator.events_executed(), 0u);
}

TEST(FlexRayEdge, ReassigningSlotReplacesOwner) {
  sim::Simulator simulator;
  net::FlexRayBus bus(simulator, "fr", {});
  bus.assign_static_slot(0, 10);
  bus.assign_static_slot(0, 20);  // replaces flow 10
  int rx = 0;
  bus.attach(1, [&](const net::Frame& f) {
    EXPECT_EQ(f.flow_id, 20u);
    ++rx;
  });
  bus.attach(2, [](const net::Frame&) {});
  net::Frame frame;
  frame.flow_id = 20;
  frame.src = 2;
  frame.payload.assign(8, 0);
  bus.send(std::move(frame));
  simulator.run_until(sim::seconds(1));
  EXPECT_EQ(rx, 1);
}

// --- Middleware: re-offer after stop, self-subscription --------------------------------------------

struct MiniNet {
  MiniNet() : backbone(simulator, "eth", net::EthernetConfig{}) {
    for (int i = 0; i < 2; ++i) {
      os::EcuConfig config;
      config.name = "e" + std::to_string(i);
      config.cpu.mips = 1000;
      ecus.push_back(std::make_unique<os::Ecu>(
          simulator, config, &backbone, static_cast<net::NodeId>(i + 1)));
      ecus.back()->processor().start();
      runtimes.push_back(
          std::make_unique<middleware::ServiceRuntime>(*ecus.back()));
    }
  }
  sim::Simulator simulator;
  net::EthernetSwitch backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::vector<std::unique_ptr<middleware::ServiceRuntime>> runtimes;
};

TEST(MiddlewareEdge, LocalSelfSubscriptionDelivers) {
  MiniNet net;
  net.runtimes[0]->offer(9);
  int received = 0;
  net.runtimes[0]->subscribe(9, 1,
                             [&](std::vector<std::uint8_t>, net::NodeId) {
                               ++received;
                             });
  net.simulator.run_until(10 * sim::kMillisecond);
  net.runtimes[0]->publish(9, 1, {1});
  net.simulator.run_until(20 * sim::kMillisecond);
  EXPECT_EQ(received, 1);
}

TEST(MiddlewareEdge, StopOfferPreventsLocalCalls) {
  MiniNet net;
  net.runtimes[0]->offer(9);
  net.runtimes[0]->provide_method(9, 1, [](const std::vector<std::uint8_t>&) {
    return std::vector<std::uint8_t>{1};
  });
  net.runtimes[0]->stop_offer(9);
  EXPECT_FALSE(net.runtimes[0]->provider_of(9).has_value());
}

TEST(MiddlewareEdge, ZeroLengthEventDelivers) {
  MiniNet net;
  net.runtimes[0]->offer(9);
  bool got = false;
  std::size_t size = 99;
  net.runtimes[1]->subscribe(9, 1,
                             [&](std::vector<std::uint8_t> data, net::NodeId) {
                               got = true;
                               size = data.size();
                             });
  net.simulator.run_until(10 * sim::kMillisecond);
  net.runtimes[0]->publish(9, 1, {});
  net.simulator.run_until(50 * sim::kMillisecond);
  EXPECT_TRUE(got);
  EXPECT_EQ(size, 0u);
}

}  // namespace
}  // namespace dynaplat

// --- Codegen (Sec. 2.2 "generate code stubs, configurations") -----------------

#include "model/codegen.hpp"
#include "os/resource.hpp"

namespace dynaplat {
namespace {

const char* kCodegenModel =
    "interface WheelSpeed paradigm=event payload=8 period=10ms version=2\n"
    "interface BrakeCmd paradigm=message payload=16\n"
    "app BrakeController class=deterministic asil=D\n"
    "  task control period=10ms wcet=200K priority=1\n"
    "  provides BrakeCmd\n"
    "  consumes WheelSpeed@2\n";

TEST(Codegen, AppSkeletonContainsTasksAndWiring) {
  const auto sys = model::parse_system(kCodegenModel);
  const auto* app = sys.model.app("BrakeController");
  ASSERT_NE(app, nullptr);
  const std::string code = model::generate_app_skeleton(sys.model, *app);
  EXPECT_NE(code.find("class BrakeControllerApp"), std::string::npos);
  EXPECT_NE(code.find("if (task == \"control\")"), std::string::npos);
  EXPECT_NE(code.find("service_id(\"WheelSpeed\")"), std::string::npos);
  EXPECT_NE(code.find("requires version >= 2"), std::string::npos);
  EXPECT_NE(code.find("provides 'BrakeCmd'"), std::string::npos);
  EXPECT_NE(code.find("void control()"), std::string::npos);
}

TEST(Codegen, MiddlewareConfigMatchesPlatformServiceIds) {
  const auto sys = model::parse_system(kCodegenModel);
  const std::string config = model::generate_middleware_config(sys.model);
  // Service ids in model order, starting at 1 -- the DynamicPlatform rule.
  EXPECT_NE(config.find("WheelSpeed\t1\tevent\t2\t8"), std::string::npos);
  EXPECT_NE(config.find("BrakeCmd\t2\tmessage\t1\t16\tBrakeController"),
            std::string::npos);
}

TEST(Codegen, GenerateAllCoversEveryApp) {
  const auto sys = model::parse_system(kCodegenModel);
  const std::string all = model::generate_all(sys.model);
  EXPECT_NE(all.find("BrakeControllerApp"), std::string::npos);
  EXPECT_NE(all.find("middleware configuration"), std::string::npos);
}

// --- ResourceArbiter (Sec. 3.1 hardware access) -----------------------------------

TEST(ResourceArbiter, ServesByPriorityNonPreemptively) {
  sim::Simulator simulator;
  os::ResourceArbiter hsm(simulator, "hsm");
  std::vector<int> order;
  // Occupy the resource, then queue low before high priority.
  hsm.request(5, 10 * sim::kMillisecond, [&] { order.push_back(0); });
  hsm.request(7, 10 * sim::kMillisecond, [&] { order.push_back(7); });
  hsm.request(1, 10 * sim::kMillisecond, [&] { order.push_back(1); });
  simulator.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);  // in-flight finishes (non-preemptive)
  EXPECT_EQ(order[1], 1);  // urgent overtakes
  EXPECT_EQ(order[2], 7);
  EXPECT_EQ(hsm.served(), 3u);
}

TEST(ResourceArbiter, UrgentWaitBoundedByOneServiceTime) {
  sim::Simulator simulator;
  os::ResourceArbiter flash(simulator, "flash");
  // Sustained low-priority traffic.
  simulator.schedule_every(1, 2 * sim::kMillisecond, [&] {
    flash.request(7, 3 * sim::kMillisecond);
  });
  // Periodic urgent requests.
  simulator.schedule_every(5 * sim::kMillisecond, 20 * sim::kMillisecond,
                           [&] { flash.request(0, sim::kMillisecond); });
  simulator.run_until(sim::seconds(2));
  // Urgent waits at most one in-flight low-priority operation (3 ms).
  EXPECT_LE(flash.wait_stats(0).max(), 3.1e6);
  EXPECT_GT(flash.wait_stats(7).max(), 3.1e6);  // bulk queues behind itself
}

TEST(ResourceArbiter, FifoAblationStarvesUrgentRequests) {
  auto urgent_max_wait = [](bool fifo_only) {
    sim::Simulator simulator;
    os::ResourceArbiter arbiter(simulator, "dev", fifo_only);
    simulator.schedule_every(1, sim::kMillisecond, [&] {
      arbiter.request(7, 2 * sim::kMillisecond);  // 2x overload
    });
    simulator.schedule_every(5 * sim::kMillisecond, 50 * sim::kMillisecond,
                             [&] { arbiter.request(0, sim::kMillisecond); });
    simulator.run_until(sim::seconds(1));
    return arbiter.wait_stats(0).max();
  };
  // Under overload, FIFO queues grow without bound and urgent requests
  // drown; the priority arbiter keeps them at one-service-time waits.
  EXPECT_GT(urgent_max_wait(true), 50.0 * urgent_max_wait(false));
}

}  // namespace
}  // namespace dynaplat
