// Unit tests for the DSL parser, system model and verification engine.
#include <gtest/gtest.h>

#include "model/parser.hpp"
#include "model/system_model.hpp"
#include "model/verifier.hpp"

namespace dynaplat::model {
namespace {

const char* kValidSystem = R"(
# minimal but complete vehicle slice
network Backbone kind=tsn bitrate=1G
network Body kind=can bitrate=500K

ecu Central mips=10000 memory=512M mmu=yes crypto=yes asil=D os=rtos network=Backbone
ecu Zone1 mips=400 memory=64M mmu=yes crypto=no asil=D os=rtos network=Backbone
ecu Infotain mips=2000 memory=1G mmu=yes crypto=no asil=QM os=posix network=Backbone

interface WheelSpeed paradigm=event payload=8 period=10ms max_latency=5ms
interface BrakeCmd paradigm=message payload=16 max_latency=10ms
interface CabinView paradigm=stream payload=1400 bandwidth=25M

app BrakeController class=deterministic asil=D memory=4M
  task control period=10ms wcet=200K priority=1
  provides BrakeCmd
  consumes WheelSpeed

app WheelSensor class=deterministic asil=D memory=1M
  task sample period=10ms wcet=50K priority=2
  provides WheelSpeed

app MediaPlayer class=nondeterministic asil=QM memory=256M
  task decode period=40ms wcet=10M priority=12
  provides CabinView

deploy BrakeController -> Central
deploy WheelSensor -> Zone1
deploy MediaPlayer -> Infotain
)";

TEST(Parser, ParsesValidSystem) {
  const ParsedSystem sys = parse_system(kValidSystem);
  EXPECT_EQ(sys.model.networks().size(), 2u);
  EXPECT_EQ(sys.model.ecus().size(), 3u);
  EXPECT_EQ(sys.model.interfaces().size(), 3u);
  EXPECT_EQ(sys.model.apps().size(), 3u);
  EXPECT_EQ(sys.deployment.bindings.size(), 3u);

  const EcuDef* central = sys.model.ecu("Central");
  ASSERT_NE(central, nullptr);
  EXPECT_EQ(central->mips, 10'000u);
  EXPECT_EQ(central->memory_bytes, 512ull << 20);
  EXPECT_TRUE(central->crypto_accelerator);
  EXPECT_EQ(central->max_asil, Asil::kD);

  const InterfaceDef* ws = sys.model.interface("WheelSpeed");
  ASSERT_NE(ws, nullptr);
  EXPECT_EQ(ws->paradigm, Paradigm::kEvent);
  EXPECT_EQ(ws->period, 10 * sim::kMillisecond);
  EXPECT_EQ(ws->max_latency, 5 * sim::kMillisecond);

  const AppDef* brake = sys.model.app("BrakeController");
  ASSERT_NE(brake, nullptr);
  EXPECT_EQ(brake->app_class, AppClass::kDeterministic);
  ASSERT_EQ(brake->tasks.size(), 1u);
  EXPECT_EQ(brake->tasks[0].instructions, 200'000u);
  EXPECT_EQ(brake->provides, std::vector<std::string>{"BrakeCmd"});
  EXPECT_EQ(brake->consumes, std::vector<std::string>{"WheelSpeed"});
}

TEST(Parser, DurationLiterals) {
  EXPECT_EQ(parse_duration("250"), 250);
  EXPECT_EQ(parse_duration("10us"), 10'000);
  EXPECT_EQ(parse_duration("10ms"), 10'000'000);
  EXPECT_EQ(parse_duration("1.5s"), 1'500'000'000);
  EXPECT_THROW(parse_duration("10xs"), std::invalid_argument);
}

TEST(Parser, SizeLiterals) {
  EXPECT_EQ(parse_size("1024"), 1024u);
  EXPECT_EQ(parse_size("4K"), 4096u);
  EXPECT_EQ(parse_size("2M"), 2ull << 20);
  EXPECT_EQ(parse_size("1G"), 1ull << 30);
}

TEST(Parser, ReportsLineNumbersOnErrors) {
  try {
    parse_system("network A kind=ethernet\nbogus line here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, RejectsTaskOutsideApp) {
  EXPECT_THROW(parse_system("  task t period=1ms wcet=1K priority=1\n"),
               ParseError);
}

TEST(Parser, RejectsBadDeploySyntax) {
  EXPECT_THROW(parse_system("deploy A B\n"), ParseError);
}

TEST(Parser, VariantDeployment) {
  const auto sys = parse_system(
      "ecu A\necu B\napp X\ndeploy X -> A | B\n");
  const auto* binding = sys.deployment.find("X");
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->candidates,
            (std::vector<std::string>{"A", "B"}));
}

TEST(Parser, RoundTripThroughToDsl) {
  const ParsedSystem original = parse_system(kValidSystem);
  const std::string dsl = to_dsl(original.model, original.deployment);
  const ParsedSystem reparsed = parse_system(dsl);
  EXPECT_EQ(reparsed.model.ecus().size(), original.model.ecus().size());
  EXPECT_EQ(reparsed.model.apps().size(), original.model.apps().size());
  const AppDef* brake = reparsed.model.app("BrakeController");
  ASSERT_NE(brake, nullptr);
  EXPECT_EQ(brake->tasks[0].period, 10 * sim::kMillisecond);
}

TEST(SystemModel, ProviderAndConsumerLookups) {
  const ParsedSystem sys = parse_system(kValidSystem);
  const AppDef* provider = sys.model.provider_of("WheelSpeed");
  ASSERT_NE(provider, nullptr);
  EXPECT_EQ(provider->name, "WheelSensor");
  const auto consumers = sys.model.consumers_of("WheelSpeed");
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0]->name, "BrakeController");
  const auto deps = sys.model.dependencies_of(*sys.model.app("BrakeController"));
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0]->name, "WheelSensor");
}

TEST(Verifier, ValidSystemHasNoErrors) {
  const ParsedSystem sys = parse_system(kValidSystem);
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  for (const auto& v : violations) {
    EXPECT_NE(v.severity, Severity::kError)
        << v.rule << " " << v.subject << ": " << v.message;
  }
}

TEST(Verifier, DetectsAsilCertificationViolation) {
  auto sys = parse_system(
      "ecu Weak asil=A\n"
      "app Critical class=deterministic asil=D\n"
      "deploy Critical -> Weak\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "asil.ecu-certification";
  EXPECT_TRUE(found);
}

TEST(Verifier, DetectsUnsafeDependency) {
  auto sys = parse_system(
      "ecu E asil=D\n"
      "interface Data paradigm=event\n"
      "app HighApp class=deterministic asil=D\n"
      "  consumes Data\n"
      "app LowApp class=nondeterministic asil=QM\n"
      "  provides Data\n"
      "deploy HighApp -> E\n"
      "deploy LowApp -> E\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "asil.dependency";
  EXPECT_TRUE(found);
}

TEST(Verifier, DetectsMemoryOvercommit) {
  auto sys = parse_system(
      "ecu Small memory=8M asil=D\n"
      "app Big memory=16M\n"
      "deploy Big -> Small\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "memory.capacity";
  EXPECT_TRUE(found);
}

TEST(Verifier, RequiresMmuForConsolidation) {
  auto sys = parse_system(
      "ecu NoMmu mmu=no asil=D memory=64M\n"
      "app A memory=1M\napp B memory=1M\n"
      "deploy A -> NoMmu\ndeploy B -> NoMmu\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "memory.mmu-required";
  EXPECT_TRUE(found);
}

TEST(Verifier, DetectsCpuOverload) {
  auto sys = parse_system(
      "ecu Tiny mips=100 asil=D\n"
      "app Heavy class=deterministic asil=A\n"
      "  task crunch period=10ms wcet=2M priority=1\n"  // 20 ms per 10 ms
      "deploy Heavy -> Tiny\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "cpu.overload";
  EXPECT_TRUE(found);
}

TEST(Verifier, DeterministicAppNeedsRtos) {
  auto sys = parse_system(
      "ecu Gpos os=posix asil=D\n"
      "app Da class=deterministic asil=A\n"
      "deploy Da -> Gpos\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "cpu.rtos-required";
  EXPECT_TRUE(found);
}

TEST(Verifier, DetectsMissingProvider) {
  auto sys = parse_system(
      "ecu E asil=D\n"
      "interface Orphan paradigm=event\n"
      "app Consumer\n  consumes Orphan\n"
      "deploy Consumer -> E\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) {
    found |= v.rule == "structure.unprovided-interface";
  }
  EXPECT_TRUE(found);
}

TEST(Verifier, DetectsMultipleOwners) {
  auto sys = parse_system(
      "ecu E asil=D memory=64M\n"
      "interface Shared paradigm=event\n"
      "app P1\n  provides Shared\n"
      "app P2\n  provides Shared\n"
      "deploy P1 -> E\ndeploy P2 -> E\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "structure.multiple-owners";
  EXPECT_TRUE(found);
}

TEST(Verifier, ReplicasNeedDistinctEcus) {
  auto sys = parse_system(
      "ecu Solo asil=D memory=64M\n"
      "app Redundant replicas=2 asil=D class=deterministic\n"
      "deploy Redundant -> Solo\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "redundancy.placement";
  EXPECT_TRUE(found);
}

TEST(Verifier, ReplicasOnDistinctEcusPass) {
  auto sys = parse_system(
      "ecu A asil=D memory=64M\necu B asil=D memory=64M\n"
      "app Redundant replicas=2 asil=D class=deterministic\n"
      "deploy Redundant -> A | B\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  EXPECT_FALSE(Verifier::has_errors(violations));
}

TEST(Verifier, CrossEcuWithoutSharedNetworkFails) {
  auto sys = parse_system(
      "network N1 kind=ethernet\nnetwork N2 kind=ethernet\n"
      "ecu A asil=D network=N1\necu B asil=D network=N2\n"
      "interface Data paradigm=event\n"
      "app P asil=B\n  provides Data\n"
      "app C asil=B\n  consumes Data\n"
      "deploy P -> A\ndeploy C -> B\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "network.unreachable";
  EXPECT_TRUE(found);
}

TEST(Verifier, LatencyFloorOnCanViolated) {
  // 1 KiB payload over 500 kbit/s CAN needs ~34 ms; 1 ms requirement fails.
  auto sys = parse_system(
      "network Can kind=can bitrate=500K\n"
      "ecu A asil=D network=Can\necu B asil=D network=Can\n"
      "interface Fat paradigm=event payload=1K max_latency=1ms\n"
      "app P asil=B\n  provides Fat\n"
      "app C asil=B\n  consumes Fat\n"
      "deploy P -> A\ndeploy C -> B\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "network.latency-floor";
  EXPECT_TRUE(found);
}

TEST(Verifier, StreamBandwidthBudget) {
  auto sys = parse_system(
      "network Eth kind=ethernet bitrate=100M\n"
      "ecu A asil=D network=Eth\necu B asil=D network=Eth\n"
      "interface Video paradigm=stream payload=1400 bandwidth=90M\n"
      "app Cam asil=QM\n  provides Video\n"
      "app Head asil=QM\n  consumes Video\n"
      "deploy Cam -> A\ndeploy Head -> B\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "network.bandwidth";
  EXPECT_TRUE(found);
}

TEST(Verifier, VariantExpansionVerifiesEveryMapping) {
  // App fits on Big but overflows Small: the variant deployment must be
  // rejected because *one possible* mapping is bad (Sec. 2.3).
  auto sys = parse_system(
      "ecu Big memory=64M asil=D\necu Small memory=2M asil=D\n"
      "app X memory=16M\n"
      "deploy X -> Big | Small\n");
  Verifier verifier;
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) found |= v.rule == "memory.capacity";
  EXPECT_TRUE(found);
}

TEST(Verifier, ExpandEnumeratesCartesianProduct) {
  auto sys = parse_system(
      "ecu A\necu B\necu C\n"
      "app X\napp Y\n"
      "deploy X -> A | B\ndeploy Y -> B | C\n");
  const auto variants = Verifier::expand(sys.model, sys.deployment);
  EXPECT_EQ(variants.size(), 4u);
}

TEST(Verifier, SchedulabilityHookIsConsulted) {
  auto sys = parse_system(
      "ecu E asil=D\n"
      "app A class=deterministic asil=B\n"
      "  task t period=10ms wcet=100K priority=1\n"
      "deploy A -> E\n");
  Verifier verifier;
  verifier.set_schedulability_hook(
      [](const EcuDef&, const std::vector<const AppDef*>&, std::string* why) {
        *why = "rejected by analysis";
        return false;
      });
  const auto violations = verifier.verify(sys.model, sys.deployment);
  bool found = false;
  for (const auto& v : violations) {
    found |= v.rule == "cpu.schedulability" &&
             v.message == "rejected by analysis";
  }
  EXPECT_TRUE(found);
}

TEST(NetworkLatencyFloor, ScalesWithPayloadAndKind) {
  NetworkDef can{"c", NetworkKind::kCan, 500'000};
  NetworkDef eth{"e", NetworkKind::kEthernet, 100'000'000};
  EXPECT_GT(network_latency_floor(can, 64),
            network_latency_floor(eth, 64));
  EXPECT_GT(network_latency_floor(eth, 4000),
            network_latency_floor(eth, 100));
}

}  // namespace
}  // namespace dynaplat::model
