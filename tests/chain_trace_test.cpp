// Causal end-to-end chain tracing through the transport (PR 7 tentpole):
// the TraceContext must survive fragmentation, reliable-mode retransmission
// and duplicate suppression with every hop counted exactly once, and the
// Chrome export must render the chain as one causally-linked flow across
// ECU processes. The CoverageSweepMerge suite proves the state-coverage
// aggregate of a 32-seed scenario sweep is bit-identical at any thread
// count (the TSan CI job runs it to prove shard isolation).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fault/campaign.hpp"
#include "middleware/transport.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/context.hpp"
#include "obs/coverage.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "os/ecu.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/recovery.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

namespace dynaplat {
namespace {

// --- Traced loopback fixture -------------------------------------------------

// Two reliable transports on one simulator, each with its own ChainTracer
// lane ("EcuA/chain" / "EcuB/chain") writing into one shared trace. Frames
// are numbered per direction; tests drop selected transmissions to force
// retransmission and duplicate suppression.
struct TracedLoopback {
  explicit TracedLoopback(middleware::TransportConfig config)
      : tracer_a(trace.buffer(), trace.metrics(), "EcuA/chain", 1),
        tracer_b(trace.buffer(), trace.metrics(), "EcuB/chain", 2) {
    a = std::make_unique<middleware::Transport>(
        [this](net::Frame frame) {
          frame.src = 1;
          if (drop_a.count(++a_frames) != 0) return;
          sim.schedule_in(10 * sim::kMicrosecond,
                          [this, frame] { b->on_frame(frame); });
        },
        64, &sim, config);
    b = std::make_unique<middleware::Transport>(
        [this](net::Frame frame) {
          frame.src = 2;
          if (drop_b.count(++b_frames) != 0) return;
          sim.schedule_in(10 * sim::kMicrosecond,
                          [this, frame] { a->on_frame(frame); });
        },
        64, &sim, config);
    a->set_tracer(&tracer_a);
    b->set_tracer(&tracer_b);
    a->set_coverage(&trace.coverage());
    b->set_coverage(&trace.coverage());
  }

  sim::Simulator sim;
  sim::Trace trace;
  obs::ChainTracer tracer_a;
  obs::ChainTracer tracer_b;
  std::set<int> drop_a;  // 1-based frame numbers a->b to drop
  std::set<int> drop_b;  // 1-based frame numbers b->a to drop
  int a_frames = 0;
  int b_frames = 0;
  std::unique_ptr<middleware::Transport> a;
  std::unique_ptr<middleware::Transport> b;
};

TEST(ChainTrace, ContextSurvivesFragmentationRetransmitAndDedup) {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 5 * sim::kMillisecond;
  TracedLoopback wire(config);
  // 180-byte body + 29-byte context + 4-byte CRC over 58-byte fragment
  // payloads = 4 fragments. Drop the first data fragment (hole -> ack
  // timeout -> retransmission) and the first ACK (sender retries a message
  // the receiver already delivered -> duplicate suppressed).
  wire.drop_a = {1};
  wire.drop_b = {1};

  std::vector<std::uint8_t> body(180);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i * 7);
  }

  std::size_t delivered = 0;
  std::vector<std::uint8_t> got;
  obs::TraceContext got_ctx;
  wire.b->set_traced_handler([&](net::NodeId src, net::Payload message,
                                 const obs::TraceContext& ctx) {
    EXPECT_EQ(src, 1u);
    ++delivered;
    got = message.to_vector();
    got_ctx = ctx;
    if (ctx.sampled()) {
      wire.tracer_b.on_dispatch(ctx, wire.sim.now(), wire.sim.now(), true);
    }
  });

  obs::TraceContext sent_ctx;
  wire.sim.schedule_at(1 * sim::kMillisecond, [&] {
    sent_ctx = wire.tracer_a.start(wire.sim.now());
    wire.a->send(2, 3, 7, std::vector<std::uint8_t>(body), sent_ctx);
  });
  wire.sim.run_until(200 * sim::kMillisecond);

  // The payload round-tripped exactly once, bytes intact, context intact.
  ASSERT_EQ(delivered, 1u);
  EXPECT_EQ(got, body);
  EXPECT_TRUE(got_ctx.sampled());
  EXPECT_EQ(got_ctx.trace_id, sent_ctx.trace_id);
  EXPECT_EQ(got_ctx.origin_ns, 1'000'000u);
  // The retransmitted wire bytes are the pinned originals, so the context's
  // send stamp is the *first* transmission's.
  EXPECT_EQ(got_ctx.sent_ns, 1'000'000u);
  EXPECT_GE(wire.a->retries(), 2u);
  EXPECT_EQ(wire.b->duplicates_suppressed(), 1u);
  EXPECT_EQ(wire.a->pending_reliable(), 0u);

  // Every hop histogram counted exactly once despite retransmit + dup.
  auto& metrics = wire.trace.metrics();
  EXPECT_EQ(metrics.histogram("chain.serialize_ns").total_count(), 1u);
  EXPECT_EQ(metrics.histogram("chain.bus_ns").total_count(), 1u);
  EXPECT_EQ(metrics.histogram("chain.reassembly_ns").total_count(), 1u);
  EXPECT_EQ(metrics.histogram("chain.dispatch_ns").total_count(), 1u);
  EXPECT_EQ(metrics.histogram("chain.end_to_end_ns").total_count(), 1u);

  // Transport edge paths landed in the coverage map.
  auto& coverage = wire.trace.coverage();
  EXPECT_GE(coverage.count("transport.retransmit"), 2u);
  EXPECT_EQ(coverage.count("transport.dup_drop"), 1u);
  EXPECT_GE(coverage.count("transport.fragment_coalesce"), 1u);
}

TEST(ChainTrace, ChromeExportShowsCrossEcuCausalFlow) {
  middleware::TransportConfig config;
  config.reliable = true;
  config.ack_timeout = 5 * sim::kMillisecond;
  TracedLoopback wire(config);

  std::size_t delivered = 0;
  wire.b->set_traced_handler([&](net::NodeId, net::Payload,
                                 const obs::TraceContext& ctx) {
    ++delivered;
    if (ctx.sampled()) {
      const sim::Time at = wire.sim.now();
      wire.sim.schedule_in(20 * sim::kMicrosecond, [&wire, ctx, at] {
        wire.tracer_b.on_dispatch(ctx, at, wire.sim.now(), true);
      });
    }
  });

  constexpr int kMessages = 3;
  for (int i = 0; i < kMessages; ++i) {
    wire.sim.schedule_at((1 + i) * sim::kMillisecond, [&wire, i] {
      std::vector<std::uint8_t> body(120, static_cast<std::uint8_t>(i));
      const obs::TraceContext ctx = wire.tracer_a.start(wire.sim.now());
      wire.a->send(2, 3, 7, std::move(body), ctx);
    });
  }
  wire.sim.run_until(100 * sim::kMillisecond);
  ASSERT_EQ(delivered, static_cast<std::size_t>(kMessages));

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(obs::to_chrome_trace_json(wire.trace.buffer()),
                               &doc, &error))
      << error;
  const obs::json::Value& events = doc.at("traceEvents");

  std::set<double> start_ids, step_ids, end_ids;
  std::set<double> start_pids, end_pids;
  std::set<std::string> span_names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& event = events[i];
    const std::string& ph = event.at("ph").string;
    if (ph == "s") {
      start_ids.insert(event.at("id").number);
      start_pids.insert(event.at("pid").number);
    } else if (ph == "t") {
      step_ids.insert(event.at("id").number);
    } else if (ph == "f") {
      end_ids.insert(event.at("id").number);
      end_pids.insert(event.at("pid").number);
      // The terminal flow event binds to its enclosing (dispatch) slice.
      EXPECT_EQ(event.at("bp").string, "e");
    } else if (ph == "X") {
      span_names.insert(event.at("name").string);
    }
  }
  // One flow per message, causally linked: every step/end id has its start,
  // and the flow crosses from EcuA's process to EcuB's.
  EXPECT_EQ(start_ids.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(step_ids, start_ids);
  EXPECT_EQ(end_ids, start_ids);
  ASSERT_EQ(start_pids.size(), 1u);
  ASSERT_EQ(end_pids.size(), 1u);
  EXPECT_NE(*start_pids.begin(), *end_pids.begin());
  // Per-hop attribution spans are present on both sides.
  EXPECT_TRUE(span_names.count("chain:serialize"));
  EXPECT_TRUE(span_names.count("chain:bus"));
  EXPECT_TRUE(span_names.count("chain:reassembly"));
  EXPECT_TRUE(span_names.count("chain:dispatch"));
}

// --- Coverage sweep merge ----------------------------------------------------

class StatefulApp final : public platform::Application {
 public:
  void on_task(const std::string&) override { ++counter_; }
  std::vector<std::uint8_t> serialize_state() override {
    return {static_cast<std::uint8_t>(counter_)};
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    if (!state.empty()) counter_ = state[0];
  }

 private:
  std::uint32_t counter_ = 0;
};

const char* kSweepVehicle = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
ecu D mips=1000 memory=64M asil=D network=Net
app Brake class=deterministic asil=D memory=4M
  task ctl period=10ms wcet=200K priority=1
app Maps class=nondeterministic asil=QM memory=4M
  task tiles period=50ms wcet=250K priority=9
deploy Brake -> A
deploy Maps -> A
)";

// One scenario: a 4-ECU vehicle loses ECU A at an rng-drawn time (recovery
// plan -> detect/remap/apply/soak/commit), a heartbeat loss drives a
// degradation edge, and a lossy reliable loopback plus a stranded partial
// exercise every transport edge path. Returns the scenario's CoverageMap.
obs::CoverageMap coverage_scenario(sim::ScenarioRun& run) {
  sim::Simulator& sim = run.simulator;
  sim::Trace trace;
  model::ParsedSystem parsed = model::parse_system(kSweepVehicle);
  net::EthernetSwitch backbone(sim, "eth", net::EthernetConfig{});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId next_node = 1;
  for (const auto& ecu_def : parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.memory_bytes = ecu_def.memory_bytes;
    config.has_mmu = ecu_def.has_mmu;
    ecus.push_back(std::make_unique<os::Ecu>(sim, config, &backbone,
                                             next_node++, &trace));
  }
  platform::DynamicPlatform dp(sim, parsed.model, parsed.deployment,
                               platform::PlatformConfig{});
  for (auto& ecu : ecus) dp.add_node(*ecu);
  for (const auto& app : parsed.model.apps()) {
    dp.register_app(app.name, [] { return std::make_unique<StatefulApp>(); });
  }
  if (!dp.install_all()) return {};

  platform::RecoveryConfig rconfig;
  rconfig.check_period = 50 * sim::kMillisecond;
  rconfig.commit_soak = 100 * sim::kMillisecond;
  rconfig.dse_iterations = 100;
  platform::RecoveryOrchestrator orchestrator(dp, rconfig);
  orchestrator.engage();
  platform::DegradationManager degradation(dp);
  degradation.engage();
  orchestrator.set_degradation(&degradation);

  os::Ecu* ecu_a = ecus.front().get();
  const sim::Time crash_at =
      (300 + run.rng.next_below(100)) * sim::kMillisecond;
  sim.schedule_at(crash_at, [ecu_a] { ecu_a->fail(); });
  sim.schedule_at(crash_at + 10 * sim::kMillisecond,
                  [&degradation] { degradation.report_heartbeat_loss("A"); });

  // Transport edges on the same simulator, recording into the same map:
  // a lossy reliable pair (retransmit + dup-drop + coalesce) ...
  middleware::TransportConfig tconfig;
  tconfig.reliable = true;
  tconfig.ack_timeout = 5 * sim::kMillisecond;
  int tx_frames = 0;
  int rx_frames = 0;
  const int drop_tx = 1 + static_cast<int>(run.rng.next_below(3));
  std::unique_ptr<middleware::Transport> tx;
  std::unique_ptr<middleware::Transport> rx;
  tx = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 101;
        if (++tx_frames == drop_tx) return;
        sim.schedule_in(10 * sim::kMicrosecond,
                        [&rx, frame] { rx->on_frame(frame); });
      },
      64, &sim, tconfig);
  rx = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 102;
        if (++rx_frames == 1) return;  // first ACK lost -> duplicate later
        sim.schedule_in(10 * sim::kMicrosecond,
                        [&tx, frame] { tx->on_frame(frame); });
      },
      64, &sim, tconfig);
  tx->set_coverage(&trace.coverage());
  rx->set_coverage(&trace.coverage());
  rx->set_chain_handler([](net::NodeId, net::Payload) {});
  sim.schedule_at((10 + run.rng.next_below(40)) * sim::kMillisecond, [&] {
    std::vector<std::uint8_t> body(180);
    for (std::size_t i = 0; i < body.size(); ++i) {
      body[i] = static_cast<std::uint8_t>(run.rng.next_u64());
    }
    tx->send(102, 3, 9, std::move(body));
  });

  // ... and an unreliable pair whose message never completes (TTL evict).
  middleware::TransportConfig uconfig;
  uconfig.reassembly_ttl = 40 * sim::kMillisecond;
  int u_frames = 0;
  std::unique_ptr<middleware::Transport> u;
  std::unique_ptr<middleware::Transport> v;
  u = std::make_unique<middleware::Transport>(
      [&](net::Frame frame) {
        frame.src = 103;
        if (++u_frames > 1) return;  // only the first fragment arrives
        sim.schedule_in(10 * sim::kMicrosecond,
                        [&v, frame] { v->on_frame(frame); });
      },
      64, &sim, uconfig);
  v = std::make_unique<middleware::Transport>([](net::Frame) {}, 64, &sim,
                                              uconfig);
  v->set_coverage(&trace.coverage());
  sim.schedule_at(20 * sim::kMillisecond, [&] {
    u->send(104, 3, 11, std::vector<std::uint8_t>(180, 0x5A));
  });

  sim.run_until(1200 * sim::kMillisecond);
  return trace.coverage();
}

std::vector<obs::CoverageMap> sweep_shards(std::size_t threads) {
  sim::SweepConfig config;
  config.seed = 2026;
  config.threads = threads;
  sim::ScenarioSweep sweep(config);
  return sweep.run<obs::CoverageMap>(32, coverage_scenario);
}

TEST(CoverageSweepMerge, ThirtyTwoSeedAggregateIsThreadCountInvariant) {
  const obs::CoverageMap serial =
      sim::ScenarioSweep::merge_coverage(sweep_shards(0));
  const obs::CoverageMap parallel =
      sim::ScenarioSweep::merge_coverage(sweep_shards(3));
  // Bit-identical JSON: same keys, same counts, same interning order.
  EXPECT_EQ(serial.snapshot_json(), parallel.snapshot_json());

  // The sweep actually reached the state families the coverage map exists
  // to witness.
  bool has_degradation = false;
  bool has_recovery = false;
  serial.for_each([&](std::string_view name, std::uint64_t count) {
    if (count == 0) return;
    if (name.substr(0, 12) == "degradation.") has_degradation = true;
    if (name.substr(0, 9) == "recovery.") has_recovery = true;
  });
  EXPECT_TRUE(has_degradation);
  EXPECT_TRUE(has_recovery);
  EXPECT_GT(serial.count("recovery.detect"), 0u);
  EXPECT_GT(serial.count("recovery.commit"), 0u);
  EXPECT_GT(serial.count("transport.retransmit"), 0u);
  EXPECT_GT(serial.count("transport.dup_drop"), 0u);
  EXPECT_GT(serial.count("transport.ttl_evict"), 0u);
  EXPECT_GT(serial.count("transport.fragment_coalesce"), 0u);
}

}  // namespace
}  // namespace dynaplat
