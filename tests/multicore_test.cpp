// Tests for partitioned multicore ECUs: core placement at install time,
// per-core TT schedules, verifier capacity rules and model support.
#include <gtest/gtest.h>

#include <memory>

#include "dse/schedulability.hpp"
#include "model/parser.hpp"
#include "model/verifier.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"

namespace dynaplat {
namespace {

TEST(MulticoreEcu, CoresAreIndependentProcessors) {
  sim::Simulator simulator;
  os::EcuConfig config{.name = "central", .cpu = {.mips = 1000}, .cores = 3};
  os::Ecu ecu(simulator, config, nullptr, 0);
  EXPECT_EQ(ecu.core_count(), 3u);
  EXPECT_EQ(ecu.processor(0).name(), "central/core0");
  EXPECT_EQ(ecu.processor(2).name(), "central/core2");

  // A hog on core 0 does not delay a task on core 1.
  os::TaskConfig hog;
  hog.name = "hog";
  hog.period = 10 * sim::kMillisecond;
  hog.instructions = 9'000'000;  // 9 ms per 10 ms on core 0
  hog.priority = 0;
  ecu.processor(0).add_task(hog);
  os::TaskConfig light;
  light.name = "light";
  light.task_class = os::TaskClass::kDeterministic;
  light.period = 10 * sim::kMillisecond;
  light.instructions = 100'000;
  light.priority = 5;
  const os::TaskId id = ecu.processor(1).add_task(light);
  ecu.processor(0).start();
  ecu.processor(1).start();
  simulator.run_until(sim::seconds(1));
  EXPECT_EQ(ecu.processor(1).stats(id).deadline_misses, 0u);
  EXPECT_NEAR(ecu.processor(1).stats(id).response_time.mean(), 100'000.0,
              5'000.0);
}

TEST(MulticoreEcu, FailHaltsAllCoresRecoverRestoresAll) {
  sim::Simulator simulator;
  os::EcuConfig config{.name = "c", .cpu = {.mips = 1000}, .cores = 2};
  os::Ecu ecu(simulator, config, nullptr, 0);
  ecu.processor(0).start();
  ecu.processor(1).start();
  ecu.fail();
  EXPECT_TRUE(ecu.processor(0).halted());
  EXPECT_TRUE(ecu.processor(1).halted());
  ecu.recover();
  EXPECT_FALSE(ecu.processor(0).halted());
  EXPECT_EQ(ecu.core_count(), 2u);
}

TEST(Parser, CoresAttributeRoundTrips) {
  auto sys = model::parse_system("ecu Central mips=4000 cores=4 asil=D\n");
  ASSERT_NE(sys.model.ecu("Central"), nullptr);
  EXPECT_EQ(sys.model.ecu("Central")->cores, 4);
  const auto reparsed =
      model::parse_system(model::to_dsl(sys.model, sys.deployment));
  EXPECT_EQ(reparsed.model.ecu("Central")->cores, 4);
}

TEST(Verifier, MulticoreCapacityAccepted) {
  const char* base =
      "app A class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=8M priority=1\n"  // 0.8 util at 10k MIPS?
      "app B class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=8M priority=2\n"
      "deploy A -> E\ndeploy B -> E\n";
  model::Verifier verifier;
  verifier.set_schedulability_hook(dse::make_verifier_hook());
  {
    // 1 core at 1000 MIPS: each task needs 8 ms per 10 ms -> 1.6 total.
    auto sys = model::parse_system(
        std::string("ecu E mips=1000 cores=1 memory=64M asil=D\n") + base);
    EXPECT_TRUE(model::Verifier::has_errors(
        verifier.verify(sys.model, sys.deployment)));
  }
  {
    auto sys = model::parse_system(
        std::string("ecu E mips=1000 cores=2 memory=64M asil=D\n") + base);
    const auto violations = verifier.verify(sys.model, sys.deployment);
    EXPECT_FALSE(model::Verifier::has_errors(violations));
  }
}

class StubApp final : public platform::Application {};

TEST(MulticorePlatform, InstallSpreadsAppsAcrossCores) {
  auto parsed = model::parse_system(
      "network Net kind=ethernet bitrate=100M\n"
      "ecu Central mips=1000 cores=2 memory=128M asil=D network=Net\n"
      "app A class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=7M priority=1\n"  // 0.7 util each
      "app B class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=7M priority=1\n"
      "deploy A -> Central\ndeploy B -> Central\n");
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig config{.name = "Central", .cpu = {.mips = 1000}, .cores = 2};
  os::Ecu ecu(simulator, config, &backbone, 1);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(ecu);
  dp.register_app("A", [] { return std::make_unique<StubApp>(); });
  dp.register_app("B", [] { return std::make_unique<StubApp>(); });
  std::string reason;
  ASSERT_TRUE(dp.install_all(&reason)) << reason;

  const auto* a = dp.node("Central")->instance("A");
  const auto* b = dp.node("Central")->instance("B");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->core, b->core) << "0.7 + 0.7 cannot share one core";

  simulator.run_until(sim::seconds(2));
  for (std::size_t core = 0; core < ecu.core_count(); ++core) {
    for (os::TaskId id : ecu.processor(core).task_ids()) {
      if (ecu.processor(core).config(id).task_class ==
          os::TaskClass::kDeterministic) {
        EXPECT_EQ(ecu.processor(core).stats(id).deadline_misses, 0u);
      }
    }
  }
}

TEST(MulticorePlatform, SingleCoreRejectsWhatDualCoreAccepts) {
  const char* model_text =
      "network Net kind=ethernet bitrate=100M\n"
      "ecu Central mips=1000 cores=1 memory=128M asil=D network=Net\n"
      "app A class=deterministic asil=B memory=4M\n"
      "  task t period=10ms wcet=7M priority=1\n"
      "deploy A -> Central\n";
  auto parsed = model::parse_system(model_text);
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig config{.name = "Central", .cpu = {.mips = 1000}, .cores = 1};
  os::Ecu ecu(simulator, config, &backbone, 1);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  auto& node = dp.add_node(ecu);
  dp.register_app("A", [] { return std::make_unique<StubApp>(); });
  ASSERT_TRUE(dp.install_all());
  // Second 0.7-utilization app: no single core can take it.
  model::AppDef second = *parsed.model.app("A");
  second.name = "B";
  std::string reason;
  EXPECT_FALSE(node.install(
      second, [] { return std::make_unique<StubApp>(); }, &reason));
}

}  // namespace
}  // namespace dynaplat
