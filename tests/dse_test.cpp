// Tests for schedulability analysis, TT table synthesis, admission control,
// the backend schedule server, and the design-space explorer.
#include <gtest/gtest.h>

#include "dse/admission.hpp"
#include "dse/exploration.hpp"
#include "dse/schedulability.hpp"
#include <cmath>
#include <set>

#include "model/parser.hpp"

namespace dynaplat::dse {
namespace {

AnalysisTask task(const std::string& name, sim::Duration period,
                  sim::Duration wcet, int priority, bool deterministic = true) {
  AnalysisTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.priority = priority;
  t.deterministic = deterministic;
  return t;
}

// --- Response-time analysis ---------------------------------------------------

TEST(Rta, ClassicExampleMatchesHandComputation) {
  // T1 = (C=1, T=4, prio 0), T2 = (C=2, T=6, prio 1), T3 = (C=3, T=12).
  // Known RTA results: R1 = 1, R2 = 3, R3 = 10 (ms).
  std::vector<AnalysisTask> tasks{
      task("t1", 4 * sim::kMillisecond, sim::kMillisecond, 0),
      task("t2", 6 * sim::kMillisecond, 2 * sim::kMillisecond, 1),
      task("t3", 12 * sim::kMillisecond, 3 * sim::kMillisecond, 2)};
  const auto response = response_time_analysis(tasks);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ((*response)[0], sim::kMillisecond);
  EXPECT_EQ((*response)[1], 3 * sim::kMillisecond);
  EXPECT_EQ((*response)[2], 10 * sim::kMillisecond);
}

TEST(Rta, InfeasibleSetRejected) {
  std::vector<AnalysisTask> tasks{
      task("t1", 10 * sim::kMillisecond, 6 * sim::kMillisecond, 0),
      task("t2", 10 * sim::kMillisecond, 6 * sim::kMillisecond, 1)};
  EXPECT_FALSE(response_time_analysis(tasks).has_value());
}

TEST(Rta, DeadlineShorterThanPeriodHonoured) {
  auto t1 = task("t1", 10 * sim::kMillisecond, 2 * sim::kMillisecond, 0);
  auto t2 = task("t2", 10 * sim::kMillisecond, 3 * sim::kMillisecond, 1);
  t2.deadline = 4 * sim::kMillisecond;  // R2 = 5ms > 4ms
  EXPECT_FALSE(response_time_analysis({t1, t2}).has_value());
  t2.deadline = 5 * sim::kMillisecond;
  EXPECT_TRUE(response_time_analysis({t1, t2}).has_value());
}

// --- EDF ------------------------------------------------------------------------

TEST(Edf, FullUtilizationFeasible) {
  std::vector<AnalysisTask> tasks{
      task("a", 10 * sim::kMillisecond, 5 * sim::kMillisecond, 0),
      task("b", 20 * sim::kMillisecond, 10 * sim::kMillisecond, 1)};
  EXPECT_TRUE(edf_feasible(tasks));
  tasks.push_back(task("c", 100 * sim::kMillisecond, sim::kMillisecond, 2));
  EXPECT_FALSE(edf_feasible(tasks));
}

// --- Hyperperiod ------------------------------------------------------------------

TEST(Hyperperiod, LcmOfPeriods) {
  std::vector<AnalysisTask> tasks{
      task("a", 10 * sim::kMillisecond, 1, 0),
      task("b", 15 * sim::kMillisecond, 1, 1)};
  EXPECT_EQ(hyperperiod(tasks), 30 * sim::kMillisecond);
}

TEST(Hyperperiod, SaturatesAtCap) {
  std::vector<AnalysisTask> tasks{task("a", 7'777'777, 1, 0),
                                  task("b", 9'999'991, 1, 1)};
  EXPECT_LE(hyperperiod(tasks, sim::kSecond), sim::kSecond);
}

// --- TT synthesis ------------------------------------------------------------------

TEST(TtSynthesis, PlacesAllJobsWithinDeadlines) {
  std::vector<AnalysisTask> tasks{
      task("fast", 5 * sim::kMillisecond, sim::kMillisecond, 0),
      task("slow", 10 * sim::kMillisecond, 3 * sim::kMillisecond, 1)};
  const auto table = synthesize_tt_table(tasks);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->cycle, 10 * sim::kMillisecond);
  // 2 jobs of fast + 1 job of slow.
  EXPECT_EQ(table->windows.size(), 3u);
  // Windows must not overlap.
  for (std::size_t i = 1; i < table->windows.size(); ++i) {
    EXPECT_GE(table->windows[i].offset,
              table->windows[i - 1].offset + table->windows[i - 1].length);
  }
  // Every job inside its release/deadline window.
  for (const auto& window : table->windows) {
    const auto& t = tasks[window.task];
    const sim::Time release = (window.offset / t.period) * t.period;
    EXPECT_GE(window.offset, release);
    EXPECT_LE(window.offset + window.length, release + t.deadline);
  }
  EXPECT_NEAR(table->reserved_fraction(), 0.5, 1e-9);
}

TEST(TtSynthesis, OverloadFails) {
  std::vector<AnalysisTask> tasks{
      task("a", 10 * sim::kMillisecond, 6 * sim::kMillisecond, 0),
      task("b", 10 * sim::kMillisecond, 6 * sim::kMillisecond, 1)};
  EXPECT_FALSE(synthesize_tt_table(tasks).has_value());
}

TEST(TtSynthesis, IgnoresNonDeterministicTasks) {
  std::vector<AnalysisTask> tasks{
      task("da", 10 * sim::kMillisecond, 2 * sim::kMillisecond, 0),
      task("nda", 10 * sim::kMillisecond, 20 * sim::kMillisecond, 9, false)};
  const auto table = synthesize_tt_table(tasks);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->windows.size(), 1u);
}

TEST(TtSynthesis, ValidatedBySimulation) {
  std::vector<AnalysisTask> tasks{
      task("fast", 5 * sim::kMillisecond, sim::kMillisecond, 0),
      task("slow", 15 * sim::kMillisecond, 4 * sim::kMillisecond, 1)};
  // Pad windows for the 100 MIPS target's context-switch cost (10 us), as
  // the ScheduleServer does.
  const auto table =
      synthesize_tt_table(tasks, 0, 20 * sim::kMicrosecond);
  ASSERT_TRUE(table.has_value());
  std::string why;
  EXPECT_TRUE(validate_by_simulation(*table, tasks, 100, &why)) << why;
}

TEST(TtSynthesis, UnpaddedTableFailsSimulationOnSlowCpu) {
  // The ablation of the padding decision: exact-WCET windows cannot absorb
  // dispatch overhead, and the backend's simulation validation catches it
  // before the table ever ships to the vehicle.
  std::vector<AnalysisTask> tasks{
      task("fast", 5 * sim::kMillisecond, sim::kMillisecond, 0),
      task("slow", 15 * sim::kMillisecond, 4 * sim::kMillisecond, 1)};
  const auto table = synthesize_tt_table(tasks);
  ASSERT_TRUE(table.has_value());
  EXPECT_FALSE(validate_by_simulation(*table, tasks, 100));
}

// --- Admission control ----------------------------------------------------------------

TEST(Admission, AcceptsFeasibleAddition) {
  AdmissionController admission;
  std::vector<AnalysisTask> existing{
      task("a", 10 * sim::kMillisecond, 3 * sim::kMillisecond, 0)};
  std::vector<AnalysisTask> incoming{
      task("b", 20 * sim::kMillisecond, 4 * sim::kMillisecond, 1)};
  const auto decision = admission.admit(existing, incoming);
  EXPECT_TRUE(decision.admitted);
  EXPECT_GT(decision.analysis_instructions, 0u);
}

TEST(Admission, RejectsOverload) {
  AdmissionController admission;
  std::vector<AnalysisTask> existing{
      task("a", 10 * sim::kMillisecond, 7 * sim::kMillisecond, 0)};
  std::vector<AnalysisTask> incoming{
      task("b", 10 * sim::kMillisecond, 5 * sim::kMillisecond, 1)};
  const auto decision = admission.admit(existing, incoming);
  EXPECT_FALSE(decision.admitted);
}

TEST(Admission, CostGrowsWithTaskCount) {
  EXPECT_GT(AdmissionController::local_test_cost(100),
            AdmissionController::local_test_cost(10));
}

// --- Backend schedule server --------------------------------------------------------------

TEST(ScheduleServer, SynthesizesAndValidates) {
  ScheduleServer server;
  std::vector<AnalysisTask> tasks{
      task("ctl", 10 * sim::kMillisecond, 2 * sim::kMillisecond, 0),
      task("adas", 20 * sim::kMillisecond, 5 * sim::kMillisecond, 1)};
  const auto artifact = server.synthesize(tasks, 100);
  EXPECT_TRUE(artifact.feasible);
  EXPECT_TRUE(artifact.validated);
  EXPECT_GT(artifact.synthesis_instructions,
            AdmissionController::local_test_cost(tasks.size()));
}

TEST(ScheduleServer, ReportsInfeasibleSets) {
  ScheduleServer server;
  std::vector<AnalysisTask> tasks{
      task("x", 10 * sim::kMillisecond, 11 * sim::kMillisecond, 0)};
  const auto artifact = server.synthesize(tasks, 100);
  EXPECT_FALSE(artifact.feasible);
}

// --- Explorer ---------------------------------------------------------------------------------

model::ParsedSystem explorer_system(int n_apps, int n_ecus) {
  std::string dsl = "network Net kind=ethernet bitrate=1G\n";
  for (int e = 0; e < n_ecus; ++e) {
    dsl += "ecu E" + std::to_string(e) +
           " mips=1000 memory=64M asil=D network=Net\n";
  }
  for (int a = 0; a < n_apps; ++a) {
    dsl += "app A" + std::to_string(a) +
           " class=deterministic asil=B memory=4M\n";
    dsl += "  task t period=10ms wcet=2M priority=" + std::to_string(a % 8) +
           "\n";  // 2ms per 10ms => utilization 0.2 each
  }
  return model::parse_system(dsl);
}

TEST(Explorer, ExhaustiveFindsFeasibleMapping) {
  auto sys = explorer_system(4, 2);
  Explorer explorer(sys.model);
  const auto result = explorer.exhaustive();
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.candidates_evaluated, 16u);  // 2^4
}

TEST(Explorer, GreedyIsFeasibleAndCheap) {
  auto sys = explorer_system(6, 3);
  Explorer explorer(sys.model);
  const auto result = explorer.greedy();
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.candidates_evaluated, 18u);
}

TEST(Explorer, AnnealingNotWorseThanGreedy) {
  auto sys = explorer_system(6, 3);
  Explorer explorer(sys.model);
  const auto greedy = explorer.greedy();
  const auto annealed = explorer.simulated_annealing(2'000, 7);
  EXPECT_TRUE(annealed.feasible);
  EXPECT_LE(annealed.cost, greedy.cost + 1e-9);
}

TEST(Explorer, GeneticFindsFeasibleMapping) {
  auto sys = explorer_system(6, 3);
  Explorer explorer(sys.model);
  const auto result = explorer.genetic(16, 30, 11);
  EXPECT_TRUE(result.feasible);
}

TEST(Explorer, ExhaustiveOptimumLowerBoundsHeuristics) {
  auto sys = explorer_system(5, 2);
  Explorer explorer(sys.model);
  const auto exact = explorer.exhaustive();
  const auto greedy = explorer.greedy();
  const auto annealed = explorer.simulated_annealing(3'000, 3);
  EXPECT_LE(exact.cost, greedy.cost + 1e-9);
  EXPECT_LE(exact.cost, annealed.cost + 1e-9);
}

TEST(Explorer, OverloadedSystemReportedInfeasible) {
  // 8 apps x 0.6 utilization on 1 ECU can never fit.
  std::string dsl =
      "network Net kind=ethernet\n"
      "ecu E0 mips=1000 memory=64M asil=D network=Net\n";
  for (int a = 0; a < 8; ++a) {
    dsl += "app A" + std::to_string(a) + " class=deterministic asil=B\n";
    dsl += "  task t period=10ms wcet=6M priority=1\n";
  }
  auto sys = model::parse_system(dsl);
  Explorer explorer(sys.model);
  EXPECT_FALSE(explorer.exhaustive().feasible);
}

TEST(Explorer, ReplicatedAppsLandOnDistinctEcus) {
  std::string dsl =
      "network Net kind=ethernet\n"
      "ecu E0 mips=1000 memory=64M asil=D network=Net\n"
      "ecu E1 mips=1000 memory=64M asil=D network=Net\n"
      "app Critical class=deterministic asil=D replicas=2 memory=4M\n"
      "  task t period=10ms wcet=1M priority=1\n";
  auto sys = model::parse_system(dsl);
  Explorer explorer(sys.model);
  const auto result = explorer.exhaustive();
  ASSERT_TRUE(result.feasible);
  const auto& hosts = result.assignment.placement.at("Critical");
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_NE(hosts[0], hosts[1]);
}

// Parameterized sweep: utilization level at which greedy still packs onto
// the minimum number of ECUs.
class GreedyPacking : public ::testing::TestWithParam<int> {};

TEST_P(GreedyPacking, UsesMinimalEcuCount) {
  const int util_percent = GetParam();
  std::string dsl = "network Net kind=ethernet\n";
  for (int e = 0; e < 4; ++e) {
    dsl += "ecu E" + std::to_string(e) +
           " mips=1000 memory=256M asil=D network=Net\n";
  }
  // 4 apps of the given utilization each.
  const int wcet_k = util_percent * 100;  // period 10ms, mips 1000
  for (int a = 0; a < 4; ++a) {
    dsl += "app A" + std::to_string(a) + " class=nondeterministic asil=QM\n";
    dsl += "  task t period=10ms wcet=" + std::to_string(wcet_k) + "K" +
           " priority=5\n";
  }
  auto sys = model::parse_system(dsl);
  Explorer explorer(sys.model);
  const auto result = explorer.greedy();
  ASSERT_TRUE(result.feasible);
  std::set<std::string> used;
  for (const auto& [app, hosts] : result.assignment.placement) {
    used.insert(hosts.begin(), hosts.end());
  }
  const int expected_min =
      static_cast<int>(std::ceil(4.0 * util_percent / 100.0));
  EXPECT_LE(static_cast<int>(used.size()), std::max(expected_min, 1) + 0);
}

INSTANTIATE_TEST_SUITE_P(UtilSweep, GreedyPacking,
                         ::testing::Values(10, 25, 50, 90));

}  // namespace
}  // namespace dynaplat::dse
