// Transactional recovery orchestration: whole-vehicle remap plans after
// ECU loss, journaled apply with whole-plan rollback, capped-backoff retry
// queue, degradation integration, and first-fit-decreasing in the legacy
// reconfiguration fallback.
#include <gtest/gtest.h>

#include <memory>

#include "fault/campaign.hpp"
#include "fault/invariants.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/reconfiguration.hpp"
#include "platform/recovery.hpp"

namespace dynaplat::platform {
namespace {

// Stateful but silent app: the counter survives serialize/restore, so a
// rolled-back migration must hand it back intact.
class StatefulApp final : public Application {
 public:
  void on_task(const std::string&) override { ++counter_; }
  std::vector<std::uint8_t> serialize_state() override {
    return {static_cast<std::uint8_t>(counter_),
            static_cast<std::uint8_t>(counter_ >> 8),
            static_cast<std::uint8_t>(counter_ >> 16),
            static_cast<std::uint8_t>(counter_ >> 24)};
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    if (state.size() < 4) return;
    counter_ = state[0] | (state[1] << 8) | (state[2] << 16) |
               (std::uint32_t{state[3]} << 24);
  }
  std::uint32_t counter() const { return counter_; }

 private:
  std::uint32_t counter_ = 0;
};

struct World {
  explicit World(const std::string& dsl) {
    parsed = model::parse_system(dsl);
    backbone = std::make_unique<net::EthernetSwitch>(simulator, "eth",
                                                     net::EthernetConfig{});
    net::NodeId next_node = 1;
    for (const auto& ecu_def : parsed.model.ecus()) {
      os::EcuConfig config;
      config.name = ecu_def.name;
      config.cpu.mips = ecu_def.mips;
      config.memory_bytes = ecu_def.memory_bytes;
      config.has_mmu = ecu_def.has_mmu;
      ecus.push_back(std::make_unique<os::Ecu>(simulator, config,
                                               backbone.get(), next_node++,
                                               &trace));
    }
    platform = std::make_unique<DynamicPlatform>(
        simulator, parsed.model, parsed.deployment, PlatformConfig{});
    for (auto& ecu : ecus) platform->add_node(*ecu);
    for (const auto& app : parsed.model.apps()) {
      platform->register_app(app.name,
                             [] { return std::make_unique<StatefulApp>(); });
    }
  }

  os::Ecu& ecu(const std::string& name) {
    for (auto& e : ecus) {
      if (e->name() == name) return *e;
    }
    throw std::out_of_range(name);
  }

  sim::Simulator simulator;
  sim::Trace trace;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  std::unique_ptr<DynamicPlatform> platform;
};

/// Fast orchestrator tuning shared by the tests.
RecoveryConfig fast_recovery() {
  RecoveryConfig config;
  config.check_period = 50 * sim::kMillisecond;
  config.commit_soak = 100 * sim::kMillisecond;
  config.dse_iterations = 500;
  config.retry_backoff = 100 * sim::kMillisecond;
  config.retry_max_backoff = 800 * sim::kMillisecond;
  return config;
}

// Four ECUs, four non-replicated apps; killing A and B displaces all four.
const char* kFourEcuVehicle = R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
ecu C mips=1000 memory=64M asil=D network=Net
ecu D mips=1000 memory=64M asil=D network=Net
app Brake class=deterministic asil=D memory=4M
  task ctl period=10ms wcet=200K priority=1
app Steer class=deterministic asil=C memory=4M
  task ctl period=10ms wcet=150K priority=2
app Infotain class=nondeterministic asil=QM memory=4M
  task ui period=50ms wcet=500K priority=8
app Maps class=nondeterministic asil=QM memory=4M
  task tiles period=50ms wcet=250K priority=9
deploy Brake -> A
deploy Infotain -> A
deploy Steer -> B
deploy Maps -> B
)";

void kill_two_ecus(World& world, fault::FaultCampaign& campaign) {
  campaign.add_ecu(world.ecu("A"));
  campaign.add_ecu(world.ecu("B"));
  fault::FaultEvent crash_a;
  crash_a.at = 310 * sim::kMillisecond;
  crash_a.kind = fault::FaultKind::kEcuCrash;
  crash_a.target = "A";
  campaign.schedule(crash_a);
  fault::FaultEvent crash_b = crash_a;
  crash_b.at = 330 * sim::kMillisecond;
  crash_b.target = "B";
  campaign.schedule(crash_b);
  campaign.arm();
}

TEST(Recovery, TwoEcuLossRehostsEveryDisplacedAppWithinBound) {
  World world(kFourEcuVehicle);
  ASSERT_TRUE(world.platform->install_all());
  RecoveryOrchestrator orchestrator(*world.platform, fast_recovery());
  orchestrator.engage();
  fault::FaultCampaign campaign(world.simulator);
  kill_two_ecus(world, campaign);
  world.simulator.run_until(sim::seconds(2));

  ASSERT_FALSE(orchestrator.plans().empty());
  const RecoveryPlan& plan = orchestrator.plans().front();
  EXPECT_EQ(plan.status, PlanStatus::kCommitted) << plan.reason;
  EXPECT_EQ(plan.steps.size(), 4u);
  EXPECT_TRUE(plan.stranded.empty());
  EXPECT_GT(plan.dse_candidates, 0u);
  // Criticality ordering: the deterministic apps moved first.
  EXPECT_EQ(plan.steps[0].app, "Brake");
  EXPECT_EQ(plan.steps[1].app, "Steer");

  // Every displaced app runs again on a surviving node.
  for (const std::string& app : {"Brake", "Steer", "Infotain", "Maps"}) {
    const PlatformNode* host = nullptr;
    for (const std::string& name : {"C", "D"}) {
      PlatformNode* node = world.platform->node(name);
      const AppInstance* inst = node->instance(app);
      if (inst != nullptr && inst->running) host = node;
    }
    EXPECT_NE(host, nullptr) << app << " was not re-hosted";
  }
  EXPECT_TRUE(orchestrator.stranded().empty());
  EXPECT_TRUE(orchestrator.abandoned().empty());

  fault::InvariantChecker checker;
  checker.require_plan_atomicity(orchestrator);
  checker.require_recovery_latency_below(orchestrator,
                                         500 * sim::kMillisecond);
  const auto report = checker.run();
  EXPECT_TRUE(report.passed) << report.summary();
  EXPECT_GE(
      world.trace.metrics().counter("recovery.plans_committed").value(), 1u);
}

TEST(Recovery, MidPlanFailureRollsBackToBitIdenticalDeployment) {
  World world(kFourEcuVehicle);
  ASSERT_TRUE(world.platform->install_all());
  RecoveryConfig config = fast_recovery();
  config.inject_fail_after_steps = 2;  // abort with half the plan applied
  config.retry_budget = 2;
  RecoveryOrchestrator orchestrator(*world.platform, config);
  orchestrator.engage();
  fault::FaultCampaign campaign(world.simulator);
  kill_two_ecus(world, campaign);
  world.simulator.run_until(sim::seconds(2));

  ASSERT_FALSE(orchestrator.plans().empty());
  for (const RecoveryPlan& plan : orchestrator.plans()) {
    EXPECT_EQ(plan.status, PlanStatus::kRolledBack);
    EXPECT_TRUE(plan.restored_exactly) << plan.reason;
    EXPECT_NE(plan.reason.find("injected"), std::string::npos);
  }
  // The vehicle is bit-identical to the journaled pre-plan deployment.
  EXPECT_TRUE(RecoveryOrchestrator::snapshot(*world.platform) ==
              orchestrator.plans().front().pre_plan);
  fault::InvariantChecker checker;
  checker.require_plan_atomicity(orchestrator);
  const auto report = checker.run();
  EXPECT_TRUE(report.passed) << report.summary();
  // Retry budget exhausted: the apps end up abandoned.
  EXPECT_EQ(orchestrator.abandoned().size(), 4u);
  EXPECT_GE(
      world.trace.metrics().counter("recovery.plans_rolled_back").value(),
      1u);
}

TEST(Recovery, ExhaustedRetryBudgetEscalatesOriginsToLimpHome) {
  World world(kFourEcuVehicle);
  ASSERT_TRUE(world.platform->install_all());
  RecoveryConfig config = fast_recovery();
  config.inject_fail_after_steps = 0;  // every plan aborts before step 1
  config.retry_budget = 2;
  RecoveryOrchestrator orchestrator(*world.platform, config);
  orchestrator.engage();
  DegradationManager degradation(*world.platform);
  degradation.engage();
  orchestrator.set_degradation(&degradation);
  fault::FaultCampaign campaign(world.simulator);
  kill_two_ecus(world, campaign);
  world.simulator.run_until(sim::seconds(2));

  // The vehicle could not self-heal the loss: sticky limp-home on the
  // origin ECUs, all four apps abandoned.
  EXPECT_EQ(orchestrator.abandoned().size(), 4u);
  EXPECT_EQ(degradation.state("A"), HealthState::kLimpHome);
  EXPECT_EQ(degradation.state("B"), HealthState::kLimpHome);
  bool escalated = false;
  for (const HealthTransition& transition : degradation.transitions()) {
    if (transition.cause == "recovery_exhausted") escalated = true;
  }
  EXPECT_TRUE(escalated);
}

TEST(Recovery, RetryQueueRecoversOnceCapacityReturns) {
  World world(
      "network Net kind=ethernet bitrate=100M\n"
      "ecu A mips=1000 memory=64M asil=D network=Net\n"
      "ecu B mips=1000 memory=64M asil=D network=Net\n"
      "app Fat class=nondeterministic asil=QM memory=4M\n"
      "  task crunch period=10ms wcet=6M priority=5\n"
      "deploy Fat -> A\n");
  ASSERT_TRUE(world.platform->install_all());
  // B is pre-loaded with a 0.6-utilization squatter, so Fat (0.6) cannot
  // fit until the squatter leaves.
  model::AppDef load;
  load.name = "Load";
  load.memory_bytes = 1 << 20;
  model::TaskDef task;
  task.name = "burn";
  task.period = 10 * sim::kMillisecond;
  task.instructions = 6'000'000;
  task.priority = 3;
  load.tasks.push_back(task);
  auto* b = world.platform->node("B");
  ASSERT_TRUE(
      b->install(load, [] { return std::make_unique<StatefulApp>(); }));
  ASSERT_TRUE(b->start("Load"));

  RecoveryConfig config = fast_recovery();
  config.retry_budget = 5;
  RecoveryOrchestrator orchestrator(*world.platform, config);
  orchestrator.engage();
  world.simulator.schedule_at(210 * sim::kMillisecond,
                              [&world] { world.ecu("A").fail(); });
  world.simulator.schedule_at(700 * sim::kMillisecond,
                              [b] { b->uninstall("Load"); });
  world.simulator.run_until(sim::seconds(2));

  // Stranding happened (retry counter ticked), then the backlog drained.
  EXPECT_GT(world.trace.metrics().counter("recovery.stranded").value(), 0u);
  ASSERT_FALSE(orchestrator.plans().empty());
  EXPECT_EQ(orchestrator.plans().back().status, PlanStatus::kCommitted);
  const AppInstance* fat = b->instance("Fat");
  ASSERT_NE(fat, nullptr);
  EXPECT_TRUE(fat->running);
  EXPECT_TRUE(orchestrator.stranded().empty());
  EXPECT_TRUE(orchestrator.abandoned().empty());
}

TEST(Recovery, CommittedPlanLiftsDegradedTargetBackToOk) {
  World world(
      "network Net kind=ethernet bitrate=100M\n"
      "ecu A mips=1000 memory=64M asil=D network=Net\n"
      "ecu C mips=1000 memory=64M asil=D network=Net\n"
      "app Main class=nondeterministic asil=QM memory=4M\n"
      "  task run period=20ms wcet=200K priority=6\n"
      "app Aux class=nondeterministic asil=QM memory=4M\n"
      "  task ctl period=10ms wcet=1M priority=2\n"
      "deploy Main -> A\n"
      "deploy Aux -> C\n");
  ASSERT_TRUE(world.platform->install_all());
  DegradationConfig deg_config;
  deg_config.faults_for_degraded = 1;
  deg_config.faults_for_limp_home = 100;
  deg_config.recovery_window = 10 * sim::kSecond;  // only a plan can lift
  DegradationManager degradation(*world.platform, deg_config);
  degradation.engage();
  RecoveryOrchestrator orchestrator(*world.platform, fast_recovery());
  orchestrator.set_degradation(&degradation);
  orchestrator.engage();

  // A bounded overrun episode on C's Aux task degrades C (the entry into
  // kDegraded sheds Aux, which also stops the misses).
  fault::FaultCampaign campaign(world.simulator);
  auto* aux = world.platform->node("C")->instance("Aux");
  ASSERT_NE(aux, nullptr);
  ASSERT_FALSE(aux->tasks.empty());
  campaign.add_overrun_target("C/ctl",
                              world.ecu("C").processor(aux->core),
                              aux->tasks[0]);
  fault::FaultEvent overrun;
  overrun.at = 100 * sim::kMillisecond;
  overrun.kind = fault::FaultKind::kTaskOverrun;
  overrun.target = "C/ctl";
  overrun.magnitude = 15.0;  // 15 ms execution vs a 10 ms deadline
  campaign.schedule(overrun);
  fault::FaultEvent overrun_end = overrun;
  overrun_end.at = 200 * sim::kMillisecond;
  overrun_end.kind = fault::FaultKind::kTaskOverrunEnd;
  campaign.schedule(overrun_end);
  campaign.arm();

  HealthState before_kill = HealthState::kOk;
  world.simulator.schedule_at(390 * sim::kMillisecond, [&] {
    before_kill = degradation.state("C");
    world.ecu("A").fail();
  });
  world.simulator.run_until(sim::seconds(2));

  EXPECT_EQ(before_kill, HealthState::kDegraded);
  ASSERT_FALSE(orchestrator.plans().empty());
  EXPECT_EQ(orchestrator.plans().back().status, PlanStatus::kCommitted)
      << orchestrator.plans().back().reason;
  // The committed plan re-hosted Main onto C and lifted C's verdict.
  EXPECT_EQ(degradation.state("C"), HealthState::kOk);
  bool lifted_by_plan = false;
  for (const HealthTransition& transition : degradation.transitions()) {
    if (transition.ecu == "C" && transition.cause == "recovery_plan") {
      lifted_by_plan = true;
    }
  }
  EXPECT_TRUE(lifted_by_plan);
}

TEST(Reconfiguration, FirstFitDecreasingPlacesHeaviestAppFirst) {
  // A hosts Small (declared first) and Big; B has 0.45 fixed load. Only
  // one of the displaced apps fits after A dies. Declaration-order greedy
  // placed Small and stranded Big; FFD must do the opposite.
  World world(
      "network Net kind=ethernet bitrate=100M\n"
      "ecu A mips=1000 memory=64M asil=D network=Net\n"
      "ecu B mips=1000 memory=64M asil=D network=Net\n"
      "app Small class=nondeterministic asil=QM memory=4M\n"
      "  task s period=10ms wcet=3M priority=7\n"
      "app Big class=nondeterministic asil=QM memory=4M\n"
      "  task b period=10ms wcet=5M priority=5\n"
      "app Load class=nondeterministic asil=QM memory=4M\n"
      "  task l period=10ms wcet=4500K priority=3\n"
      "deploy Small -> A\n"
      "deploy Big -> A\n"
      "deploy Load -> B\n");
  ASSERT_TRUE(world.platform->install_all());
  ReconfigurationManager reconfig(*world.platform);
  reconfig.engage();
  world.simulator.schedule_at(210 * sim::kMillisecond,
                              [&world] { world.ecu("A").fail(); });
  world.simulator.run_until(sim::seconds(1));

  const AppInstance* big = world.platform->node("B")->instance("Big");
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(big->running);
  EXPECT_FALSE(world.platform->node("B")->hosts("Small"));
  const auto& stranded = reconfig.stranded();
  EXPECT_NE(std::find(stranded.begin(), stranded.end(), "Small"),
            stranded.end());
}

TEST(Recovery, SnapshotIsSortedAndComparable) {
  World world(kFourEcuVehicle);
  ASSERT_TRUE(world.platform->install_all());
  const DeploymentSnapshot snap =
      RecoveryOrchestrator::snapshot(*world.platform);
  ASSERT_EQ(snap.entries.size(), 4u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_TRUE(snap.entries[i - 1] < snap.entries[i] ||
                !(snap.entries[i] < snap.entries[i - 1]));
  }
  EXPECT_TRUE(snap == RecoveryOrchestrator::snapshot(*world.platform));
}

}  // namespace
}  // namespace dynaplat::platform
