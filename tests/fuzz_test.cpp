// Tests for fault/fuzz.hpp: the coverage-guided campaign scheduler.
//
// The scenario runner here is synthetic — a pure function mapping config
// fields to coverage keys — so the tests pin the *search* contract
// (determinism, shard invariance, corpus admission, journaling) without
// paying for platform simulation. The real-platform integration lives in
// bench/bench_fault.cpp --fuzz and examples/chaos_campaign.cpp --fuzz.
#include <gtest/gtest.h>

#include <string>

#include "fault/fuzz.hpp"
#include "fault/shard.hpp"
#include "obs/json.hpp"

namespace dynaplat::fault {
namespace {

/// Pure function of the config: deterministic coverage, fingerprint and
/// verdict, cheap enough to run hundreds of times per test.
FuzzRunResult synthetic_run(const CampaignConfig& config) {
  FuzzRunResult result;
  result.coverage.hit("run.any");
  result.coverage.hit("seed.bucket." + std::to_string(config.seed % 5));
  // Count scales with episodes so hit-count bucket upgrades are reachable.
  result.coverage.hit("episodes.count",
                      static_cast<std::uint64_t>(config.episodes));
  if (config.weight_overrun > 0.0) result.coverage.hit("family.overrun");
  if (config.magnitude_scale > 2.0) result.coverage.hit("scale.high");
  if (config.partition_fraction > 0.0) result.coverage.hit("topology.forced");
  if (config.episodes > 10) result.coverage.hit("episodes.many");
  if (config.horizon > 2 * sim::kSecond) result.coverage.hit("horizon.long");

  std::uint64_t fp = 0xcbf29ce484222325ull;
  const auto mix = [&fp](std::uint64_t word) {
    fp ^= word;
    fp *= 0x100000001b3ull;
  };
  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.episodes));
  mix(static_cast<std::uint64_t>(config.horizon));
  mix(static_cast<std::uint64_t>(config.magnitude_scale * 1000.0));
  result.fingerprint = fp;

  if (config.magnitude_scale > 4.0) {
    result.invariants_passed = false;
    result.violated = "magnitude_bound";
    result.detail = "synthetic violation above scale 4";
  }
  return result;
}

FuzzConfig small_config(std::uint64_t master_seed = 7) {
  FuzzConfig config;
  config.master_seed = master_seed;
  config.base.seed = 1;
  config.base.weight_overrun = 0.0;
  config.rounds = 6;
  config.batch = 6;
  return config;
}

TEST(FuzzScheduler, SameMasterSeedIsBitIdentical) {
  FuzzScheduler first(small_config(), synthetic_run);
  first.run();
  FuzzScheduler second(small_config(), synthetic_run);
  second.run();
  EXPECT_EQ(first.journal_json(), second.journal_json());
  EXPECT_EQ(first.coverage().fingerprint(), second.coverage().fingerprint());
  EXPECT_EQ(first.corpus().size(), second.corpus().size());

  FuzzScheduler other(small_config(8), synthetic_run);
  other.run();
  EXPECT_NE(first.journal_json(), other.journal_json());
}

TEST(FuzzScheduler, ShardCountDoesNotChangeTheSearch) {
  FuzzScheduler serial(small_config(), synthetic_run);
  serial.run();
  std::vector<std::size_t> shard_counts;
  if (ProcessSweep::supported()) shard_counts = {2, 5};
  for (const std::size_t shards : shard_counts) {
    FuzzConfig config = small_config();
    config.shards = shards;
    FuzzScheduler sharded(config, synthetic_run);
    sharded.run();
    EXPECT_EQ(sharded.journal_json(), serial.journal_json())
        << "shards=" << shards;
    EXPECT_EQ(sharded.coverage().fingerprint(),
              serial.coverage().fingerprint());
  }
}

TEST(FuzzScheduler, CorpusGrowsBeyondTheSeedEntry) {
  FuzzScheduler scheduler(small_config(), synthetic_run);
  scheduler.run();
  // Reseed mutations alone change seed.bucket.*, so the search must admit
  // more than the bootstrap entry.
  EXPECT_GT(scheduler.corpus().size(), 1u);
  ASSERT_FALSE(scheduler.corpus().empty());
  EXPECT_EQ(scheduler.corpus()[0].round, -1);
  EXPECT_EQ(scheduler.corpus()[0].op, MutationOp::kSeedEntry);
  for (const CorpusEntry& entry : scheduler.corpus()) {
    EXPECT_LT(entry.parent, scheduler.corpus().size());
  }
}

TEST(FuzzScheduler, TimelineIsMonotoneAndMatchesExecution) {
  FuzzScheduler scheduler(small_config(), synthetic_run);
  scheduler.run();
  const std::size_t expected = 1 + 6u * 6u;  // bootstrap + rounds * batch
  EXPECT_EQ(scheduler.executed(), expected);
  EXPECT_EQ(scheduler.journal().size(), expected);
  ASSERT_EQ(scheduler.timeline().size(), expected);
  for (std::size_t i = 1; i < scheduler.timeline().size(); ++i) {
    EXPECT_GE(scheduler.timeline()[i], scheduler.timeline()[i - 1]);
  }
  EXPECT_EQ(scheduler.timeline().back(), scheduler.unique_keys());
  EXPECT_EQ(scheduler.rounds_completed(), 6);
}

TEST(FuzzScheduler, FailingCandidatesAreRetainedUpToTheCap) {
  FuzzConfig config = small_config();
  config.base.magnitude_scale = 5.0;  // the seed entry itself violates
  config.max_failures = 3;
  FuzzScheduler scheduler(config, synthetic_run);
  scheduler.run();
  ASSERT_FALSE(scheduler.failures().empty());
  EXPECT_LE(scheduler.failures().size(), 3u);
  EXPECT_EQ(scheduler.failures()[0].violated, "magnitude_bound");
  EXPECT_GT(scheduler.failures()[0].config.magnitude_scale, 4.0);
  // The journal records the verdict for the failing bootstrap too.
  EXPECT_FALSE(scheduler.journal()[0].invariants_passed);
}

TEST(FuzzScheduler, JournalJsonIsAParsableReplayDocument) {
  FuzzScheduler scheduler(small_config(), synthetic_run);
  scheduler.run();
  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(scheduler.journal_json(), &doc));
  EXPECT_EQ(doc.at("kind").string, "dynaplat_fuzz_journal");
  ASSERT_EQ(doc.at("records").array.size(), scheduler.executed());
  // Every journal config must replay: round-trip the last one through its
  // JSON form and check the re-run reproduces the recorded scenario.
  const JournalRecord& last = scheduler.journal().back();
  CampaignConfig replayed;
  ASSERT_TRUE(campaign_config_from_json(campaign_config_json(last.config),
                                        &replayed));
  EXPECT_EQ(synthetic_run(replayed).fingerprint,
            synthetic_run(last.config).fingerprint);
  EXPECT_EQ(synthetic_run(replayed).invariants_passed,
            last.invariants_passed);
}

TEST(FuzzScheduler, BudgetZeroRoundsStillBootstraps) {
  FuzzConfig config = small_config();
  config.rounds = 0;
  FuzzScheduler scheduler(config, synthetic_run);
  scheduler.run();
  EXPECT_EQ(scheduler.executed(), 1u);  // the base config always runs
  EXPECT_EQ(scheduler.corpus().size(), 1u);
}

TEST(CampaignConfigJson, RoundTripsFullRangeSeeds) {
  CampaignConfig config;
  config.seed = 0xDEADBEEFCAFEBABEull;  // above 2^53: breaks via doubles
  config.start = 200 * sim::kMillisecond;
  config.horizon = 3 * sim::kSecond;
  config.episodes = 17;
  config.min_duration = 5 * sim::kMillisecond;
  config.max_duration = 410 * sim::kMillisecond;
  config.weight_crash = 0.5;
  config.weight_partition = 2.0;
  config.weight_babble = 0.0;
  config.weight_burst = 8.0;
  config.weight_corruption = 0.25;
  config.weight_overrun = 4.0;
  config.weight_memory = 1.0;
  config.magnitude_scale = 3.5;
  config.partition_fraction = 0.75;

  CampaignConfig parsed;
  ASSERT_TRUE(campaign_config_from_json(campaign_config_json(config),
                                        &parsed));
  EXPECT_EQ(parsed.seed, config.seed);
  EXPECT_EQ(parsed.start, config.start);
  EXPECT_EQ(parsed.horizon, config.horizon);
  EXPECT_EQ(parsed.episodes, config.episodes);
  EXPECT_EQ(parsed.min_duration, config.min_duration);
  EXPECT_EQ(parsed.max_duration, config.max_duration);
  EXPECT_DOUBLE_EQ(parsed.weight_crash, config.weight_crash);
  EXPECT_DOUBLE_EQ(parsed.weight_partition, config.weight_partition);
  EXPECT_DOUBLE_EQ(parsed.weight_babble, config.weight_babble);
  EXPECT_DOUBLE_EQ(parsed.weight_burst, config.weight_burst);
  EXPECT_DOUBLE_EQ(parsed.weight_corruption, config.weight_corruption);
  EXPECT_DOUBLE_EQ(parsed.weight_overrun, config.weight_overrun);
  EXPECT_DOUBLE_EQ(parsed.weight_memory, config.weight_memory);
  EXPECT_DOUBLE_EQ(parsed.magnitude_scale, config.magnitude_scale);
  EXPECT_DOUBLE_EQ(parsed.partition_fraction, config.partition_fraction);
  // And the round trip is a fixed point.
  EXPECT_EQ(campaign_config_json(parsed), campaign_config_json(config));
}

TEST(CampaignConfigJson, RejectsMalformedInput) {
  CampaignConfig out;
  EXPECT_FALSE(campaign_config_from_json("not json", &out));
  EXPECT_FALSE(campaign_config_from_json("{}", &out));
}

}  // namespace
}  // namespace dynaplat::fault
