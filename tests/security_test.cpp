// Tests for package security, the update master, session authentication,
// model-derived access control and the probabilistic security analyzer.
#include <gtest/gtest.h>

#include "net/ethernet.hpp"
#include "security/analyzer.hpp"
#include "security/auth.hpp"
#include "security/package.hpp"
#include "security/update_master.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::security {
namespace {

crypto::RsaKeyPair test_key() {
  sim::Random rng(777);
  return crypto::RsaKeyPair::generate(512, rng);
}

// --- Packages -----------------------------------------------------------------

TEST(Package, SignedPackageVerifies) {
  const auto key = test_key();
  PackageSigner signer(key);
  PackageVerifier verifier(key.pub);
  const auto package = signer.sign("BrakeApp", 2, {1, 2, 3, 4, 5});
  EXPECT_EQ(verifier.verify(package), VerifyResult::kOk);
}

TEST(Package, TamperedBinaryDetected) {
  const auto key = test_key();
  PackageSigner signer(key);
  PackageVerifier verifier(key.pub);
  auto package = signer.sign("BrakeApp", 2, {1, 2, 3, 4, 5});
  package.binary[2] ^= 0xFF;
  EXPECT_EQ(verifier.verify(package), VerifyResult::kDigestMismatch);
}

TEST(Package, TamperedManifestDetected) {
  const auto key = test_key();
  PackageSigner signer(key);
  PackageVerifier verifier(key.pub);
  auto package = signer.sign("BrakeApp", 2, {1, 2, 3});
  package.manifest.version = 99;  // privilege-escalating version bump
  EXPECT_EQ(verifier.verify(package), VerifyResult::kBadSignature);
}

TEST(Package, TruncatedBinaryDetected) {
  const auto key = test_key();
  PackageSigner signer(key);
  PackageVerifier verifier(key.pub);
  auto package = signer.sign("BrakeApp", 2, {1, 2, 3, 4});
  package.binary.pop_back();
  EXPECT_EQ(verifier.verify(package), VerifyResult::kSizeMismatch);
}

TEST(Package, WrongOemKeyDetected) {
  const auto key = test_key();
  sim::Random rng(888);
  const auto other = crypto::RsaKeyPair::generate(512, rng);
  PackageSigner signer(key);
  PackageVerifier verifier(other.pub);
  const auto package = signer.sign("BrakeApp", 2, {9});
  EXPECT_EQ(verifier.verify(package), VerifyResult::kBadSignature);
}

TEST(Package, VerificationCostScalesWithSize) {
  EXPECT_GT(PackageVerifier::verification_cost(1 << 20),
            PackageVerifier::verification_cost(1 << 10));
  // RSA floor dominates small packages.
  EXPECT_GT(PackageVerifier::verification_cost(0), 1'000'000u);
}

// --- KeyServer / AccessMatrix ----------------------------------------------------

TEST(KeyServer, PairKeysAreSymmetricAndStable) {
  KeyServer ks(1);
  ks.register_node(1);
  ks.register_node(2);
  const auto k1 = ks.session_key(1, 2);
  const auto k2 = ks.session_key(2, 1);
  ASSERT_TRUE(k1.has_value());
  ASSERT_TRUE(k2.has_value());
  EXPECT_EQ(*k1, *k2);
  EXPECT_EQ(ks.sessions(), 1u);
}

TEST(KeyServer, UnregisteredNodeGetsNoKey) {
  KeyServer ks(1);
  ks.register_node(1);
  EXPECT_FALSE(ks.session_key(1, 9).has_value());
}

TEST(KeyServer, DistinctPairsGetDistinctKeys) {
  KeyServer ks(1);
  for (net::NodeId n = 1; n <= 3; ++n) ks.register_node(n);
  EXPECT_NE(*ks.session_key(1, 2), *ks.session_key(1, 3));
}

TEST(AccessMatrix, RulesAndWildcard) {
  AccessMatrix matrix;
  matrix.allow(1, 100);
  EXPECT_TRUE(matrix.allowed(1, 100));
  EXPECT_FALSE(matrix.allowed(1, 101));
  EXPECT_FALSE(matrix.allowed(2, 100));
  matrix.allow_all(7);  // the data-logger case
  EXPECT_TRUE(matrix.allowed(7, 100));
  EXPECT_TRUE(matrix.allowed(7, 9999));
  matrix.revoke(1, 100);
  EXPECT_FALSE(matrix.allowed(1, 100));
}

// --- AuthenticationService over a simulated backbone ------------------------------

class AuthFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    medium_ = std::make_unique<net::EthernetSwitch>(simulator_, "eth0",
                                                    net::EthernetConfig{});
    for (int i = 0; i < 2; ++i) {
      os::EcuConfig config;
      config.name = "ecu" + std::to_string(i);
      config.cpu.mips = 1000;
      ecus_.push_back(std::make_unique<os::Ecu>(
          simulator_, config, medium_.get(), static_cast<net::NodeId>(i + 1)));
      ecus_.back()->processor().start();
      runtimes_.push_back(
          std::make_unique<middleware::ServiceRuntime>(*ecus_.back()));
    }
  }

  sim::Simulator simulator_;
  std::unique_ptr<net::EthernetSwitch> medium_;
  std::vector<std::unique_ptr<os::Ecu>> ecus_;
  std::vector<std::unique_ptr<middleware::ServiceRuntime>> runtimes_;
  KeyServer key_server_{42};
};

TEST_F(AuthFixture, SessionAuthenticatedEventFlows) {
  AuthenticationService auth0(*runtimes_[0], key_server_, AuthMode::kSession);
  AuthenticationService auth1(*runtimes_[1], key_server_, AuthMode::kSession);
  runtimes_[0]->offer(5);
  int received = 0;
  runtimes_[1]->subscribe(5, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  // The first contact pays an asymmetric handshake (~120 ms of CPU on a
  // 1000 MIPS core) before the subscribe leaves the node.
  simulator_.run_until(500 * sim::kMillisecond);
  runtimes_[0]->publish(5, 1, {1, 2, 3});
  simulator_.run_until(sim::seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_GE(auth0.stats().tagged, 1u);
  EXPECT_GE(auth1.stats().verified, 1u);
  EXPECT_EQ(auth1.stats().rejected_tag, 0u);
}

TEST_F(AuthFixture, ForgedTagRejected) {
  AuthenticationService auth1(*runtimes_[1], key_server_, AuthMode::kSession);
  // Node 0 has NO auth service: its messages carry tag 0 and must be
  // rejected by node 1's session-auth filter.
  runtimes_[0]->offer(5);
  int received = 0;
  runtimes_[1]->subscribe(5, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  simulator_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(5, 1, {1, 2, 3});
  simulator_.run_until(50 * sim::kMillisecond);
  EXPECT_EQ(received, 0);
  EXPECT_GE(auth1.stats().rejected_tag, 1u);
}

TEST_F(AuthFixture, AccessMatrixBlocksUnauthorizedSubscribe) {
  AccessMatrix matrix;  // empty: nobody may subscribe/call anything
  AuthenticationService auth0(*runtimes_[0], key_server_, AuthMode::kNone,
                              &matrix);
  runtimes_[0]->offer(5);
  runtimes_[0]->provide_method(5, 2, [](const std::vector<std::uint8_t>&) {
    return std::vector<std::uint8_t>{1};
  });
  int received = 0;
  runtimes_[1]->subscribe(5, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  simulator_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(5, 1, {1});
  simulator_.run_until(50 * sim::kMillisecond);
  // Subscribe was filtered out at node 0, so no notification ever went out.
  EXPECT_EQ(received, 0);
  EXPECT_GE(auth0.stats().rejected_access, 1u);
}

TEST_F(AuthFixture, AccessMatrixPermitsAuthorizedSubscribe) {
  AccessMatrix matrix;
  matrix.allow(runtimes_[1]->node(), 5);
  AuthenticationService auth0(*runtimes_[0], key_server_, AuthMode::kNone,
                              &matrix);
  runtimes_[0]->offer(5);
  int received = 0;
  runtimes_[1]->subscribe(5, 1, [&](std::vector<std::uint8_t>, net::NodeId) {
    ++received;
  });
  simulator_.run_until(10 * sim::kMillisecond);
  runtimes_[0]->publish(5, 1, {1});
  simulator_.run_until(50 * sim::kMillisecond);
  EXPECT_EQ(received, 1);
}

// --- Update master ------------------------------------------------------------------

TEST_F(AuthFixture, UpdateMasterVerifiesOnBehalfOfWeakEcu) {
  const auto key = test_key();
  PackageSigner signer(key);
  UpdateMasterService master(*runtimes_[0], key.pub);
  UpdateMasterClient client(*runtimes_[1]);
  const auto package = signer.sign("App", 1, std::vector<std::uint8_t>(4096, 7));
  int verdicts = 0;
  bool last = false;
  client.verify(package, [&](bool ok) {
    ++verdicts;
    last = ok;
  });
  simulator_.run_until(sim::seconds(1));
  EXPECT_EQ(verdicts, 1);
  EXPECT_TRUE(last);
  EXPECT_EQ(master.verifications_served(), 1u);
}

TEST_F(AuthFixture, UpdateMasterRejectsTamperedPackage) {
  const auto key = test_key();
  PackageSigner signer(key);
  UpdateMasterService master(*runtimes_[0], key.pub);
  UpdateMasterClient client(*runtimes_[1]);
  auto package = signer.sign("App", 1, std::vector<std::uint8_t>(128, 7));
  package.binary[5] ^= 0x01;  // tampered in transit
  bool verdict = true;
  client.verify(package, [&](bool ok) { verdict = ok; });
  simulator_.run_until(sim::seconds(1));
  EXPECT_FALSE(verdict);
}

TEST(UpdateMasterCodec, RequestRoundTrip) {
  PackageManifest manifest;
  manifest.app_name = "X";
  manifest.version = 3;
  manifest.binary_size = 77;
  manifest.binary_digest.fill(0xAB);
  manifest.min_platform = "1.0";
  const std::vector<std::uint8_t> signature{1, 2, 3};
  crypto::Digest256 digest;
  digest.fill(0xCD);
  const auto wire = encode_verify_request(manifest, signature, digest);
  PackageManifest out_manifest;
  std::vector<std::uint8_t> out_signature;
  crypto::Digest256 out_digest;
  ASSERT_TRUE(
      decode_verify_request(wire, out_manifest, out_signature, out_digest));
  EXPECT_EQ(out_manifest.app_name, "X");
  EXPECT_EQ(out_manifest.version, 3u);
  EXPECT_EQ(out_manifest.binary_size, 77u);
  EXPECT_EQ(out_signature, signature);
  EXPECT_EQ(out_digest, digest);
}

TEST(UpdateMasterCodec, TruncatedRequestRejected) {
  PackageManifest manifest;
  std::vector<std::uint8_t> signature;
  crypto::Digest256 digest;
  EXPECT_FALSE(decode_verify_request({1, 2, 3}, manifest, signature, digest));
}

// --- Security analyzer ------------------------------------------------------------------

AttackGraph demo_vehicle() {
  AttackGraph graph;
  const auto telematics = graph.add({"telematics", 0.30, true, false});
  const auto gateway = graph.add({"gateway", 0.10, false, false});
  const auto infotainment = graph.add({"infotainment", 0.25, false, false});
  const auto brake = graph.add({"brake_ecu", 0.05, false, true});
  graph.biconnect(telematics, gateway);
  graph.biconnect(infotainment, gateway);
  graph.connect(gateway, brake);
  return graph;
}

TEST(SecurityAnalyzer, EntryIsAlwaysCompromised) {
  SecurityAnalyzer analyzer;
  const auto graph = demo_vehicle();
  const auto report = analyzer.analyze(graph);
  EXPECT_DOUBLE_EQ(
      report.compromise_probability[graph.index_of("telematics")], 1.0);
}

TEST(SecurityAnalyzer, RiskGrowsWithHorizon) {
  SecurityAnalyzer analyzer;
  const auto graph = demo_vehicle();
  EXPECT_LT(analyzer.analyze(graph, 5).asset_risk,
            analyzer.analyze(graph, 100).asset_risk);
}

TEST(SecurityAnalyzer, UnreachableAssetIsSafe) {
  AttackGraph graph;
  graph.add({"telematics", 0.5, true, false});
  graph.add({"brake", 0.5, false, true});  // no edge to it
  SecurityAnalyzer analyzer;
  EXPECT_DOUBLE_EQ(analyzer.analyze(graph).asset_risk, 0.0);
}

TEST(SecurityAnalyzer, GatewayHardeningReducesRisk) {
  SecurityAnalyzer analyzer;
  const auto graph = demo_vehicle();
  const double gain =
      analyzer.hardening_gain(graph, graph.index_of("gateway"), 0.2);
  EXPECT_GT(gain, 0.0);
}

TEST(SecurityAnalyzer, SegmentedArchitectureBeatsFlat) {
  // Flat: telematics directly exposes the brake ECU.
  AttackGraph flat;
  const auto t1 = flat.add({"telematics", 0.3, true, false});
  const auto b1 = flat.add({"brake", 0.05, false, true});
  flat.connect(t1, b1);
  // Segmented: a hardened gateway sits in between.
  AttackGraph segmented;
  const auto t2 = segmented.add({"telematics", 0.3, true, false});
  const auto gw = segmented.add({"gateway", 0.02, false, false});
  const auto b2 = segmented.add({"brake", 0.05, false, true});
  segmented.connect(t2, gw);
  segmented.connect(gw, b2);
  SecurityAnalyzer analyzer;
  EXPECT_LT(analyzer.analyze(segmented).asset_risk,
            analyzer.analyze(flat).asset_risk);
}

TEST(SecurityAnalyzer, ExpectedStepsOrderedByExposure) {
  SecurityAnalyzer analyzer;
  const auto graph = demo_vehicle();
  const auto report = analyzer.analyze(graph, 100);
  // The asset takes longer than direct gateway compromise.
  EXPECT_GT(report.expected_steps_to_asset, 1.0);
}

}  // namespace
}  // namespace dynaplat::security
