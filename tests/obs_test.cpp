// Observability layer tests: interner, bounded trace ring, category masks,
// metrics registry (incl. thread-pool concurrency), the minimal JSON
// parser, and the Chrome trace-event exporter — ending with the acceptance
// round-trip: a full platform run with a staged update exported and parsed
// back, checking lane mapping and span nesting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/coverage.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "sim/trace.hpp"
#include "platform/platform.hpp"
#include "platform/update.hpp"

namespace dynaplat {
namespace {

using obs::Category;
using obs::EventType;

// --- Interner --------------------------------------------------------------

TEST(ObsInterner, SameStringSameId) {
  obs::Interner interner;
  const auto a = interner.intern("brake_ctl");
  const auto b = interner.intern("camera");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, interner.intern("brake_ctl"));
  EXPECT_EQ(interner.lookup(a), "brake_ctl");
  EXPECT_EQ(interner.lookup(b), "camera");
}

TEST(ObsInterner, SlotZeroIsReservedEmpty) {
  obs::Interner interner;
  EXPECT_EQ(interner.lookup(0), "");
  EXPECT_NE(interner.intern("x"), 0u);
  EXPECT_EQ(interner.find("never_interned"), 0u);
  EXPECT_EQ(interner.find("x"), interner.intern("x"));
}

// --- TraceBuffer ------------------------------------------------------------

TEST(ObsTraceBuffer, RingBoundEvictsOldestAndCounts) {
  obs::TraceBuffer buffer({.capacity = 4});
  const auto src = buffer.intern("ecu/app");
  const auto name = buffer.intern("tick");
  for (int i = 0; i < 10; ++i) {
    buffer.record(i, Category::kTask, src, name, i);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.recorded(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);
  const auto events = buffer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].value, 6 + i);  // oldest-first, newest 4 retained
  }
}

TEST(ObsTraceBuffer, CategoryMaskFiltersRecords) {
  obs::TraceBuffer buffer;
  buffer.set_category_enabled(Category::kNetwork, false);
  EXPECT_TRUE(buffer.enabled());
  EXPECT_FALSE(buffer.enabled(Category::kNetwork));
  buffer.record(1, Category::kNetwork, "bus", "tx");
  buffer.record(2, Category::kTask, "cpu", "run");
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.recorded(), 1u);

  buffer.set_enabled(false);
  EXPECT_FALSE(buffer.enabled());
  buffer.record(3, Category::kTask, "cpu", "run");
  EXPECT_EQ(buffer.size(), 1u);

  // Re-enabling restores the pre-disable mask (network still off).
  buffer.set_enabled(true);
  EXPECT_TRUE(buffer.enabled(Category::kTask));
  EXPECT_FALSE(buffer.enabled(Category::kNetwork));
}

TEST(ObsTraceBuffer, ShrinkingCapacityKeepsNewest) {
  obs::TraceBuffer buffer;
  const auto src = buffer.intern("s");
  const auto name = buffer.intern("e");
  for (int i = 0; i < 8; ++i) {
    buffer.record(i, Category::kTask, src, name, i);
  }
  buffer.set_capacity(3);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 5u);
  const auto events = buffer.snapshot();
  EXPECT_EQ(events.front().value, 5);
  EXPECT_EQ(events.back().value, 7);
}

TEST(ObsTraceBuffer, SpanRecordsAndCount) {
  obs::TraceBuffer buffer;
  const auto src = buffer.intern("ecu/app");
  const auto run = buffer.intern("run");
  buffer.begin_span(10, Category::kTask, src, run);
  buffer.end_span(30, Category::kTask, src, run);
  buffer.record(40, Category::kTask, src, buffer.intern("done"));
  EXPECT_EQ(buffer.count(Category::kTask, "run"), 2u);
  EXPECT_EQ(buffer.count(Category::kTask, "done"), 1u);
  EXPECT_EQ(buffer.count(Category::kNetwork, "run"), 0u);
  const auto events = buffer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::kBegin);
  EXPECT_EQ(events[1].type, EventType::kEnd);
}

// --- Metrics ----------------------------------------------------------------

TEST(ObsMetrics, CounterGaugeBasics) {
  obs::MetricsRegistry registry;
  auto& frames = registry.counter("net.frames");
  frames.add();
  frames.add(9);
  EXPECT_EQ(frames.value(), 10u);
  EXPECT_EQ(&frames, &registry.counter("net.frames"));

  auto& util = registry.gauge("net.util");
  util.set(0.25);
  util.add(0.5);
  EXPECT_DOUBLE_EQ(util.value(), 0.75);
  EXPECT_EQ(registry.counter_count(), 1u);
  EXPECT_EQ(registry.gauge_count(), 1u);
}

TEST(ObsMetrics, HistogramBucketsAndOverflow) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat", {10.0, 100.0});
  h.observe(5.0);
  h.observe(10.0);   // inclusive upper bound -> first bucket
  h.observe(50.0);
  h.observe(1e9);    // overflow
  EXPECT_EQ(h.total_count(), 4u);
  ASSERT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 50.0 + 1e9);
  EXPECT_TRUE(std::isinf(h.upper_bound(2)));
}

TEST(ObsMetrics, ConcurrentUpdatesUnderThreadPool) {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("c");
  auto& gauge = registry.gauge("g");
  auto& histogram = registry.histogram("h", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  {
    concurrency::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    for (int t = 0; t < kThreads; ++t) {
      done.push_back(pool.submit([&] {
        for (int i = 0; i < kPerThread; ++i) {
          counter.add();
          gauge.add(1.0);
          histogram.observe(i % 2 == 0 ? 0.0 : 1.0);
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.total_count(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count_at(0) + histogram.count_at(1),
            histogram.total_count());
}

TEST(ObsMetrics, SnapshotJsonRoundTrips) {
  obs::MetricsRegistry registry;
  registry.counter("faults.total").add(3);
  registry.gauge("bus.util").set(0.5);
  registry.histogram("lat", {100.0}).observe(42.0);
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(registry.snapshot_json(), &doc, &error))
      << error;
  EXPECT_DOUBLE_EQ(doc.at("counters").at("faults.total").number, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("bus.util").number, 0.5);
  const auto& lat = doc.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(lat.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(lat.at("sum").number, 42.0);
  ASSERT_EQ(lat.at("buckets").size(), 2u);
  EXPECT_DOUBLE_EQ(lat.at("buckets")[0].at("le").number, 100.0);
  EXPECT_DOUBLE_EQ(lat.at("buckets")[0].at("count").number, 1.0);
  EXPECT_EQ(lat.at("buckets")[1].at("le").string, "inf");
}

// --- JSON parser -------------------------------------------------------------

TEST(ObsJson, ParsesNestedDocuments) {
  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(
      R"({"a": [1, -2.5, true, null, "x\n\"y\""], "b": {"c": 3e2}})", &doc));
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("a").size(), 5u);
  EXPECT_DOUBLE_EQ(doc.at("a")[1].number, -2.5);
  EXPECT_TRUE(doc.at("a")[2].boolean);
  EXPECT_TRUE(doc.at("a")[3].is_null());
  EXPECT_EQ(doc.at("a")[4].string, "x\n\"y\"");
  EXPECT_DOUBLE_EQ(doc.at("b").at("c").number, 300.0);
  // Missing-key chains degrade to null instead of throwing.
  EXPECT_TRUE(doc.at("missing").at("chain").is_null());
}

TEST(ObsJson, RejectsMalformedInput) {
  obs::json::Value doc;
  EXPECT_FALSE(obs::json::parse("{", &doc));
  EXPECT_FALSE(obs::json::parse("[1,]", &doc));
  EXPECT_FALSE(obs::json::parse("{} trailing", &doc));
  EXPECT_FALSE(obs::json::parse("'single'", &doc));
}

TEST(ObsJson, EscapeProducesParseableStrings) {
  const std::string nasty = "a\"b\\c\nd\te\x01";
  obs::json::Value doc;
  ASSERT_TRUE(
      obs::json::parse("\"" + obs::json::escape(nasty) + "\"", &doc));
  EXPECT_EQ(doc.string, nasty);
}

// --- Chrome trace exporter ---------------------------------------------------

TEST(ObsExport, MapsSourcesToProcessAndThreadLanes) {
  obs::TraceBuffer buffer;
  const auto cpu_lane = buffer.intern("EcuA/brake_ctl");
  const auto bus_lane = buffer.intern("can0");
  const auto run = buffer.intern("run");
  const auto tx = buffer.intern("tx");
  buffer.begin_span(1'000, Category::kTask, cpu_lane, run);
  buffer.end_span(3'000, Category::kTask, cpu_lane, run);
  buffer.record(2'000, Category::kNetwork, bus_lane, tx, 7);

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(obs::to_chrome_trace_json(buffer), &doc,
                               &error))
      << error;
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // Metadata: process "EcuA" and thread "EcuA/brake_ctl"; the bus gets its
  // own process lane named by the full source.
  std::set<std::string> process_names;
  std::set<std::string> thread_names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.at("ph").string == "M" &&
        e.at("name").string == "process_name") {
      process_names.insert(e.at("args").at("name").string);
    }
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name") {
      thread_names.insert(e.at("args").at("name").string);
    }
  }
  EXPECT_TRUE(process_names.count("EcuA"));
  EXPECT_TRUE(process_names.count("can0"));
  EXPECT_TRUE(thread_names.count("EcuA/brake_ctl"));

  // The begin/end pair became one complete ("X") event with the span's
  // start timestamp and duration, in microseconds.
  bool found_span = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.at("ph").string != "X") continue;
    found_span = true;
    EXPECT_EQ(e.at("name").string, "run");
    EXPECT_DOUBLE_EQ(e.at("ts").number, 1.0);
    EXPECT_DOUBLE_EQ(e.at("dur").number, 2.0);
    EXPECT_EQ(e.at("cat").string, "task");
  }
  EXPECT_TRUE(found_span);
}

TEST(ObsExport, DropsOrphanedSpanHalves) {
  obs::TraceBuffer buffer;
  const auto lane = buffer.intern("e/app");
  const auto name = buffer.intern("run");
  buffer.end_span(5, Category::kTask, lane, name);    // no matching begin
  buffer.begin_span(10, Category::kTask, lane, name);  // never closed
  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(obs::to_chrome_trace_json(buffer), &doc));
  const auto& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at("ph").string, "M");  // only metadata remains
  }
}

// --- Acceptance: platform scenario round-trip --------------------------------

class CounterApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++counter_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(counter_);
    if (!context_.def->provides.empty()) {
      context_.comm->publish(context_.service_id(context_.def->provides[0]),
                             1, writer.take(),
                             context_.priority_of(context_.def->provides[0]));
    }
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(counter_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    middleware::PayloadReader reader(state);
    counter_ = reader.u64();
  }

 private:
  std::uint64_t counter_ = 0;
};

struct Span {
  double ts = 0.0;
  double dur = 0.0;
};

// Spans on one thread lane must nest like a call stack: any two either
// don't overlap or one contains the other.
void expect_properly_nested(const std::vector<Span>& spans) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const Span& a = spans[i];
      const Span& b = spans[j];
      const double a_end = a.ts + a.dur;
      const double b_end = b.ts + b.dur;
      const bool disjoint = a_end <= b.ts + 1e-9 || b_end <= a.ts + 1e-9;
      const bool a_in_b = b.ts <= a.ts + 1e-9 && a_end <= b_end + 1e-9;
      const bool b_in_a = a.ts <= b.ts + 1e-9 && b_end <= a_end + 1e-9;
      ASSERT_TRUE(disjoint || a_in_b || b_in_a)
          << "spans overlap partially: [" << a.ts << "," << a_end << ") vs ["
          << b.ts << "," << b_end << ")";
    }
  }
}

TEST(ObsExport, PlatformScenarioExportIsValidAndNested) {
  auto parsed = model::parse_system(R"(
network Net kind=ethernet bitrate=100M
ecu A mips=1000 memory=64M asil=D network=Net
ecu B mips=1000 memory=64M asil=D network=Net
interface Tick paradigm=event payload=8 period=10ms
app Producer class=deterministic asil=B memory=4M
  task work period=10ms wcet=100K priority=1
  provides Tick
app Consumer class=nondeterministic asil=QM memory=4M
  task poll period=50ms wcet=50K priority=8
  consumes Tick
deploy Producer -> A
deploy Consumer -> B
)");
  sim::Simulator simulator;
  sim::Trace trace;
  net::EthernetSwitch backbone(simulator, "eth", {});
  os::EcuConfig config_a{.name = "A", .cpu = {.mips = 1000}};
  os::EcuConfig config_b{.name = "B", .cpu = {.mips = 1000}};
  os::Ecu ecu_a(simulator, config_a, &backbone, 1, &trace);
  os::Ecu ecu_b(simulator, config_b, &backbone, 2, &trace);
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(ecu_a);
  dp.add_node(ecu_b);
  dp.register_app("Producer", [] { return std::make_unique<CounterApp>(); });
  dp.register_app("Consumer", [] { return std::make_unique<CounterApp>(); });
  ASSERT_TRUE(dp.install_all());
  simulator.run_until(200 * sim::kMillisecond);

  platform::UpdateManager updates(dp);
  model::AppDef v2 = *parsed.model.app("Producer");
  v2.version = 2;
  platform::UpdateReport report;
  updates.staged_update(
      *dp.node("A"), "Producer", v2,
      [] { return std::make_unique<CounterApp>(); }, platform::UpdateConfig{},
      [&](platform::UpdateReport r) { report = r; });
  simulator.run_until(sim::seconds(1));
  ASSERT_TRUE(report.success) << report.reason;

  // Round-trip: export -> parse -> structural validation.
  const std::string exported = obs::to_chrome_trace_json(trace.buffer());
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(exported, &doc, &error)) << error;
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
  std::map<std::pair<int, int>, std::vector<Span>> spans_per_lane;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    ASSERT_TRUE(e.at("name").is_string());
    ASSERT_TRUE(e.at("ph").is_string());
    ASSERT_TRUE(e.at("pid").is_number());
    ASSERT_TRUE(e.at("tid").is_number());
    const int pid = static_cast<int>(e.at("pid").number);
    const int tid = static_cast<int>(e.at("tid").number);
    const std::string& ph = e.at("ph").string;
    if (ph == "M") {
      if (e.at("name").string == "process_name") {
        process_names[pid] = e.at("args").at("name").string;
      } else if (e.at("name").string == "thread_name") {
        thread_names[{pid, tid}] = e.at("args").at("name").string;
      }
      continue;
    }
    ASSERT_TRUE(e.at("ts").is_number());
    if (ph == "X") {
      ASSERT_TRUE(e.at("dur").is_number());
      EXPECT_GE(e.at("dur").number, 0.0);
      spans_per_lane[{pid, tid}].push_back(
          {e.at("ts").number, e.at("dur").number});
    }
  }

  // Lane mapping: both ECUs became processes; task lanes and the update
  // lane are threads of their ECU's process.
  std::set<std::string> names;
  for (const auto& [pid, name] : process_names) names.insert(name);
  EXPECT_TRUE(names.count("A"));
  EXPECT_TRUE(names.count("B"));
  bool update_lane_in_a = false;
  bool task_lane_in_a = false;
  for (const auto& [key, thread] : thread_names) {
    const std::string& process = process_names[key.first];
    if (thread == "A/update") {
      update_lane_in_a = true;
      EXPECT_EQ(process, "A");
    }
    if (thread == "A/work" || thread == "A/Producer") task_lane_in_a = true;
  }
  EXPECT_TRUE(update_lane_in_a);
  (void)task_lane_in_a;  // lane names are "<cpu>/<task>"; presence varies

  // Task execution slices and update phases must nest per lane.
  std::size_t total_spans = 0;
  for (auto& [lane, spans] : spans_per_lane) {
    total_spans += spans.size();
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.ts < b.ts; });
    expect_properly_nested(spans);
  }
  EXPECT_GT(total_spans, 20u);  // task slices + frames + update phases

  // The metrics side of the facade saw the run too.
  obs::json::Value metrics;
  ASSERT_TRUE(obs::json::parse(trace.metrics().snapshot_json(), &metrics));
  EXPECT_TRUE(metrics.at("counters").size() > 0 ||
              metrics.at("gauges").size() > 0);
}

// --- CoverageMap -------------------------------------------------------------

TEST(ObsCoverage, InternAndCountBasics) {
  obs::CoverageMap coverage;
  EXPECT_TRUE(coverage.empty());
  EXPECT_EQ(coverage.count("never"), 0u);

  const auto retransmit = coverage.key("transport.retransmit");
  coverage.hit(retransmit);
  coverage.hit(retransmit, 3);
  coverage.hit("degradation.ok->degraded");
  EXPECT_EQ(coverage.size(), 2u);
  EXPECT_EQ(coverage.count("transport.retransmit"), 4u);
  EXPECT_EQ(coverage.count("degradation.ok->degraded"), 1u);

  // Snapshot is a flat object, keys sorted by name.
  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(coverage.snapshot_json(), &doc));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("transport.retransmit").number, 4.0);
  EXPECT_EQ(doc.at("degradation.ok->degraded").number, 1.0);
}

TEST(ObsCoverage, MergePreservesReachedKeysAndInterningOrder) {
  obs::CoverageMap a;
  a.hit("recovery.detect");
  a.hit("recovery.commit");
  obs::CoverageMap b;
  b.hit("recovery.detect", 2);
  b.hit("recovery.rollback");
  b.key("recovery.soak");  // reached-key with zero count (pre-resolved)

  obs::CoverageMap merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.count("recovery.detect"), 3u);
  EXPECT_EQ(merged.count("recovery.commit"), 1u);
  EXPECT_EQ(merged.count("recovery.rollback"), 1u);
  // Zero-count keys survive the merge: the *reached key set* is part of the
  // coverage signal, not just the counts.
  EXPECT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.count("recovery.soak"), 0u);

  // Merging in the same shard order from a fresh map reproduces the exact
  // snapshot — the determinism contract ScenarioSweep::merge_coverage needs.
  obs::CoverageMap again;
  again.merge_from(a);
  again.merge_from(b);
  EXPECT_EQ(again.snapshot_json(), merged.snapshot_json());
}

// --- Ring wrap accounting ----------------------------------------------------

TEST(ObsTraceBuffer, WrapAccountingStaysExactOverManyWraps) {
  obs::TraceBuffer buffer({.capacity = 8});
  const auto src = buffer.intern("ecu/app");
  const auto name = buffer.intern("tick");
  for (int i = 0; i < 1000; ++i) {
    buffer.record(i, Category::kTask, src, name, i);
  }
  EXPECT_EQ(buffer.size(), 8u);
  EXPECT_EQ(buffer.recorded(), 1000u);
  EXPECT_EQ(buffer.dropped(), 992u);
  const auto events = buffer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(events[i].value, 992 + i);

  // Shrinking mid-flight keeps the newest and counts the evictions too.
  buffer.set_capacity(4);
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 996u);
  EXPECT_EQ(buffer.snapshot().front().value, 996);
}

// --- Histogram quantiles -----------------------------------------------------

TEST(ObsMetrics, HistogramSnapshotEmitsNearestRankQuantiles) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("rt.latency_ns", {10.0, 100.0, 1000.0});
  for (int i = 0; i < 90; ++i) h.observe(5.0);    // -> bucket <=10
  for (int i = 0; i < 9; ++i) h.observe(50.0);    // -> bucket <=100
  h.observe(500.0);                               // -> bucket <=1000

  // Nearest-rank on bucket upper bounds: rank 50 and rank 99 both land
  // within the cumulative counts 90 / 99, rank 100 reaches the last
  // occupied bucket whose bound is capped at the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);  // capped at observed max

  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(registry.snapshot_json(), &doc));
  const obs::json::Value& hist = doc.at("histograms").at("rt.latency_ns");
  EXPECT_EQ(hist.at("p50").number, 10.0);
  EXPECT_EQ(hist.at("p95").number, 100.0);
  EXPECT_EQ(hist.at("p99").number, 100.0);
}

// --- Post-mortem bundle ------------------------------------------------------

TEST(ObsPostmortem, BundleRoundTripsThroughJson) {
  obs::TraceBuffer buffer({.capacity = 16});
  const auto src = buffer.intern("EcuA/chain");
  const auto name = buffer.intern("chain");
  for (int i = 0; i < 40; ++i) {
    buffer.record(i * 100, Category::kService, src, name, i);
  }
  obs::MetricsRegistry metrics;
  metrics.counter("mw.sent").add(7);
  obs::CoverageMap coverage;
  coverage.hit("transport.retransmit", 2);

  obs::PostMortemInput input;
  input.trace = &buffer;
  input.metrics = &metrics;
  input.coverage = &coverage;
  input.seed = 1234;
  input.verdict = "zero_da_deadline_misses";
  input.detail = "task \"brake\" missed 3 deadlines";  // needs escaping
  input.trace_tail = 8;

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(obs::make_postmortem_bundle(input), &doc,
                               &error))
      << error;
  const obs::json::Value& pm = doc.at("postmortem");
  EXPECT_EQ(pm.at("seed").number, 1234.0);
  EXPECT_EQ(pm.at("verdict").string, "zero_da_deadline_misses");
  EXPECT_EQ(pm.at("detail").string, "task \"brake\" missed 3 deadlines");
  EXPECT_EQ(pm.at("trace_recorded").number, 40.0);
  EXPECT_EQ(pm.at("trace_dropped").number, 24.0);
  // Tail = the newest 8 of the 16 retained events, oldest-first.
  const obs::json::Value& tail = pm.at("trace_tail");
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail[0].at("value").number, 32.0);
  EXPECT_EQ(tail[7].at("value").number, 39.0);
  EXPECT_EQ(tail[0].at("source").string, "EcuA/chain");
  EXPECT_EQ(pm.at("metrics").at("counters").at("mw.sent").number, 7.0);
  EXPECT_EQ(pm.at("coverage").at("transport.retransmit").number, 2.0);
}

// --- Self-health gauges ------------------------------------------------------

TEST(ObsSelfHealth, RefreshPublishesRingAndInternerGauges) {
  sim::Trace trace(obs::TraceBufferConfig{.capacity = 4});
  for (int i = 0; i < 10; ++i) {
    trace.record(i, sim::TraceCategory::kTask, "ecu/app", "tick", i);
  }
  trace.coverage().hit("update.download");
  trace.coverage().hit("update.apply");
  trace.refresh_self_metrics();

  auto& m = trace.metrics();
  EXPECT_EQ(m.gauge("obs.trace.retained").value(), 4.0);
  EXPECT_EQ(m.gauge("obs.trace.dropped").value(), 6.0);
  EXPECT_EQ(m.gauge("obs.trace.recorded").value(), 10.0);
  EXPECT_GE(m.gauge("obs.interner.size").value(), 2.0);
  EXPECT_EQ(m.gauge("obs.coverage.keys").value(), 2.0);
}

}  // namespace
}  // namespace dynaplat
