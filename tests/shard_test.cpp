// Tests for fault/shard.hpp: the fork-based ProcessSweep driver.
//
// The contract under test is the one the fuzzer and the bench sweep lean
// on: jobs are pure functions of their index, blobs come back in index
// order, and the merged output is bit-identical to a serial inline run at
// any shard count.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "fault/shard.hpp"
#include "obs/coverage.hpp"

namespace dynaplat::fault {
namespace {

std::string job_blob(std::size_t index) {
  // Deterministic, index-only payload with embedded NULs and newlines to
  // exercise the length-prefixed framing (no delimiter assumptions).
  std::string blob = "job:" + std::to_string(index) + "\n";
  blob.push_back('\0');
  blob += std::string(index % 7, 'x');
  return blob;
}

std::vector<std::string> run_with_shards(std::size_t shards, std::size_t n) {
  ProcessSweep sweep(ShardConfig{shards});
  return sweep.run(n, job_blob);
}

TEST(ProcessSweep, InlineRunReturnsBlobsInIndexOrder) {
  const std::vector<std::string> blobs = run_with_shards(0, 9);
  ASSERT_EQ(blobs.size(), 9u);
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    EXPECT_EQ(blobs[i], job_blob(i)) << "index " << i;
  }
}

TEST(ProcessSweep, ShardMergeMatchesSerialAtAnyShardCount) {
  if (!ProcessSweep::supported()) GTEST_SKIP() << "no fork() on this host";
  const std::size_t n = 17;
  const std::vector<std::string> serial = run_with_shards(0, n);
  for (const std::size_t shards : {1u, 2u, 3u, 5u}) {
    const std::vector<std::string> sharded = run_with_shards(shards, n);
    EXPECT_EQ(sharded, serial) << "shards=" << shards;
  }
}

TEST(ProcessSweep, ShardMergeHandlesEmptyAndSingletonJobSets) {
  if (!ProcessSweep::supported()) GTEST_SKIP() << "no fork() on this host";
  EXPECT_TRUE(run_with_shards(2, 0).empty());
  const std::vector<std::string> one = run_with_shards(3, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], job_blob(0));
}

TEST(ProcessSweep, MoreShardsThanJobsStillMergesCleanly) {
  if (!ProcessSweep::supported()) GTEST_SKIP() << "no fork() on this host";
  const std::vector<std::string> blobs = run_with_shards(6, 3);
  ASSERT_EQ(blobs.size(), 3u);
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    EXPECT_EQ(blobs[i], job_blob(i));
  }
}

TEST(ProcessSweep, StatsAccountForEveryJobExactlyOnce) {
  if (!ProcessSweep::supported()) GTEST_SKIP() << "no fork() on this host";
  const std::size_t n = 24;
  ProcessSweep sweep(ShardConfig{3});
  sweep.run(n, job_blob);
  const ShardStats& stats = sweep.stats();
  ASSERT_EQ(stats.jobs.size(), 3u);
  ASSERT_EQ(stats.busy_ms.size(), 3u);
  const std::size_t total =
      std::accumulate(stats.jobs.begin(), stats.jobs.end(), std::size_t{0});
  EXPECT_EQ(total, n);
  for (const double busy : stats.busy_ms) EXPECT_GE(busy, 0.0);
}

TEST(ProcessSweep, InlineStatsReportOnePseudoShard) {
  ProcessSweep sweep(ShardConfig{0});
  sweep.run(5, job_blob);
  ASSERT_EQ(sweep.stats().jobs.size(), 1u);
  EXPECT_EQ(sweep.stats().jobs[0], 5u);
}

TEST(ProcessSweep, LargeBlobsSurviveThePipeFraming) {
  if (!ProcessSweep::supported()) GTEST_SKIP() << "no fork() on this host";
  // Well past any single pipe buffer: forces chunked writes/reads.
  const auto big_job = [](std::size_t index) {
    return std::string(256 * 1024 + index, static_cast<char>('a' + index));
  };
  ProcessSweep sweep(ShardConfig{2});
  const std::vector<std::string> blobs = sweep.run(3, big_job);
  ASSERT_EQ(blobs.size(), 3u);
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    EXPECT_EQ(blobs[i], big_job(i)) << "index " << i;
  }
}

// The fuzzer's per-round pattern: children serialize coverage snapshots,
// the parent merges them in index order. Merged coverage must be a pure
// function of the job set — identical fingerprint at every shard count.
TEST(ProcessSweep, CoverageShardMergeIsShardCountInvariant) {
  const auto coverage_job = [](std::size_t index) {
    obs::CoverageMap map;
    map.hit("shard.job", index + 1);
    map.hit("shard.bucket." + std::to_string(index % 3));
    if (index % 2 == 0) map.hit("shard.even");
    return map.snapshot_json();
  };
  const std::size_t n = 12;
  std::uint64_t serial_fp = 0;
  std::size_t serial_keys = 0;
  std::vector<std::size_t> shard_counts = {0};
  if (ProcessSweep::supported()) shard_counts.insert(shard_counts.end(), {2, 4});
  for (const std::size_t shards : shard_counts) {
    ProcessSweep sweep(ShardConfig{shards});
    const std::vector<std::string> blobs = sweep.run(n, coverage_job);
    obs::CoverageMap merged;
    for (const std::string& blob : blobs) {
      ASSERT_TRUE(merged.merge_snapshot_json(blob)) << "shards=" << shards;
    }
    if (shards == 0) {
      serial_fp = merged.fingerprint();
      serial_keys = merged.unique_hit_count();
      EXPECT_GT(serial_keys, 0u);
    } else {
      EXPECT_EQ(merged.fingerprint(), serial_fp) << "shards=" << shards;
      EXPECT_EQ(merged.unique_hit_count(), serial_keys);
    }
  }
}

}  // namespace
}  // namespace dynaplat::fault
