// Tests for fault/minimize.hpp: the delta-debugging crash minimizer.
//
// The plan runner is synthetic: a pure predicate over the plan that fails
// only when a specific fault *combination* is present — a babbling idiot
// at magnitude >= 10 together with an ECU crash, observed for at least
// 100ms past the crash. That shape exercises all three passes: ddmin must
// keep exactly two episodes, horizon bisection must find the 100ms-past-
// crash boundary, magnitude bisection must walk the babble down to 10.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/minimize.hpp"

namespace dynaplat::fault {
namespace {

constexpr double kBabbleThreshold = 10.0;
constexpr sim::Duration kObserveWindow = 100 * sim::kMillisecond;

/// Fails with invariant "combo" iff the plan has a strong-enough babble, a
/// crash, and a horizon long enough to observe the interaction.
ProbeVerdict combo_probe(const std::vector<FaultEvent>& plan,
                         sim::Duration horizon) {
  bool babble = false;
  bool crash = false;
  sim::Time crash_at = 0;
  for (const FaultEvent& event : plan) {
    if (event.kind == FaultKind::kBabbleStart &&
        event.magnitude >= kBabbleThreshold && event.at < horizon) {
      babble = true;
    }
    if (event.kind == FaultKind::kEcuCrash && event.at < horizon) {
      crash = true;
      crash_at = event.at;
    }
  }
  ProbeVerdict verdict;
  if (babble && crash && horizon >= crash_at + kObserveWindow) {
    verdict.violated = true;
    verdict.invariant = "combo";
    verdict.detail = "babble+crash interaction";
  }
  return verdict;
}

FaultEvent make_event(sim::Time at, FaultKind kind, const std::string& target,
                      double magnitude = 0.0) {
  FaultEvent event;
  event.at = at;
  event.kind = kind;
  event.target = target;
  event.magnitude = magnitude;
  return event;
}

/// Five episodes (ten events); only the babble + crash pair matters.
std::vector<FaultEvent> noisy_plan() {
  std::vector<FaultEvent> plan;
  plan.push_back(make_event(20 * sim::kMillisecond,
                            FaultKind::kBurstLossStart, "can0", 0.3));
  plan.push_back(
      make_event(120 * sim::kMillisecond, FaultKind::kBurstLossEnd, "can0"));
  plan.push_back(make_event(50 * sim::kMillisecond, FaultKind::kBabbleStart,
                            "can0", 40.0));
  plan.push_back(
      make_event(150 * sim::kMillisecond, FaultKind::kBabbleEnd, "can0"));
  plan.push_back(make_event(80 * sim::kMillisecond,
                            FaultKind::kCorruptionStart, "can0", 0.05));
  plan.push_back(
      make_event(160 * sim::kMillisecond, FaultKind::kCorruptionEnd, "can0"));
  plan.push_back(
      make_event(200 * sim::kMillisecond, FaultKind::kEcuCrash, "A"));
  plan.push_back(
      make_event(400 * sim::kMillisecond, FaultKind::kEcuRestart, "A"));
  plan.push_back(make_event(250 * sim::kMillisecond,
                            FaultKind::kMemoryPressure, "B", 0.5));
  plan.push_back(
      make_event(450 * sim::kMillisecond, FaultKind::kMemoryRelease, "B"));
  return plan;
}

constexpr sim::Duration kHorizon = 2 * sim::kSecond;

std::size_t count_kind(const std::vector<FaultEvent>& plan, FaultKind kind) {
  return static_cast<std::size_t>(
      std::count_if(plan.begin(), plan.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

TEST(Minimizer, ShrinksToTheMinimalEpisodeSubset) {
  Minimizer minimizer(MinimizeConfig{}, combo_probe);
  const Repro repro = minimizer.minimize(noisy_plan(), kHorizon);
  ASSERT_TRUE(repro.failing);
  EXPECT_EQ(repro.invariant, "combo");
  EXPECT_EQ(repro.original_events, 10u);
  // ddmin keeps Start/End pairs together: babble pair + crash pair only.
  EXPECT_EQ(repro.plan.size(), 4u);
  EXPECT_EQ(count_kind(repro.plan, FaultKind::kBabbleStart), 1u);
  EXPECT_EQ(count_kind(repro.plan, FaultKind::kBabbleEnd), 1u);
  EXPECT_EQ(count_kind(repro.plan, FaultKind::kEcuCrash), 1u);
  EXPECT_EQ(count_kind(repro.plan, FaultKind::kEcuRestart), 1u);
  EXPECT_GT(repro.runs_used, 0u);
  // The minimal repro still violates the same invariant when replayed.
  const ProbeVerdict replay = combo_probe(repro.plan, repro.horizon);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.invariant, "combo");
}

TEST(Minimizer, BisectsTheHorizonToTheObservationBoundary) {
  Minimizer minimizer(MinimizeConfig{}, combo_probe);
  const Repro repro = minimizer.minimize(noisy_plan(), kHorizon);
  ASSERT_TRUE(repro.failing);
  // The bisection floor is the last surviving event (the restart at
  // 400ms) — the plan is already minimal, so the horizon never cuts an
  // event off. It must land within one resolution step of that floor,
  // far below the original 2s.
  const sim::Duration floor = 400 * sim::kMillisecond;
  EXPECT_GE(repro.horizon, floor);
  EXPECT_LE(repro.horizon, floor + MinimizeConfig{}.horizon_resolution);
  // And the bisected horizon still satisfies the actual failure condition
  // (crash at 200ms observed for >= 100ms).
  EXPECT_GE(repro.horizon, 300 * sim::kMillisecond);
}

TEST(Minimizer, BisectsMagnitudesDownToTheFailureThreshold) {
  Minimizer minimizer(MinimizeConfig{}, combo_probe);
  const Repro repro = minimizer.minimize(noisy_plan(), kHorizon);
  ASSERT_TRUE(repro.failing);
  const auto babble = std::find_if(
      repro.plan.begin(), repro.plan.end(), [](const FaultEvent& e) {
        return e.kind == FaultKind::kBabbleStart;
      });
  ASSERT_NE(babble, repro.plan.end());
  // Started at 40.0; the threshold is 10.0. Four bisection steps should
  // close most of the gap while never dropping below the threshold.
  EXPECT_GE(babble->magnitude, kBabbleThreshold);
  EXPECT_LT(babble->magnitude, 40.0);
}

TEST(Minimizer, PassingPlanReturnsAnEmptyNonFailingRepro) {
  std::vector<FaultEvent> plan = noisy_plan();
  // Remove the crash pair: the combo can no longer fire.
  plan.erase(std::remove_if(plan.begin(), plan.end(),
                            [](const FaultEvent& e) {
                              return e.kind == FaultKind::kEcuCrash ||
                                     e.kind == FaultKind::kEcuRestart;
                            }),
             plan.end());
  Minimizer minimizer(MinimizeConfig{}, combo_probe);
  const Repro repro = minimizer.minimize(plan, kHorizon);
  EXPECT_FALSE(repro.failing);
  EXPECT_TRUE(repro.plan.empty());
  EXPECT_TRUE(repro.invariant.empty());
}

TEST(Minimizer, TargetInvariantMismatchCountsAsNotReproducing) {
  Minimizer minimizer(MinimizeConfig{}, combo_probe);
  const Repro repro =
      minimizer.minimize(noisy_plan(), kHorizon, "some_other_invariant");
  EXPECT_FALSE(repro.failing);
  EXPECT_TRUE(repro.plan.empty());
}

TEST(Minimizer, MinimizationIsBitReproducible) {
  Minimizer first(MinimizeConfig{}, combo_probe);
  Repro repro_1 = first.minimize(noisy_plan(), kHorizon);
  Minimizer second(MinimizeConfig{}, combo_probe);
  Repro repro_2 = second.minimize(noisy_plan(), kHorizon);
  repro_1.seed = repro_2.seed = 42;
  EXPECT_EQ(repro_json(repro_1), repro_json(repro_2));
}

TEST(Minimizer, RespectsTheProbeBudget) {
  MinimizeConfig config;
  config.max_runs = 3;  // enough to pin the target, not enough to minimize
  Minimizer minimizer(config, combo_probe);
  const Repro repro = minimizer.minimize(noisy_plan(), kHorizon);
  ASSERT_TRUE(repro.failing);
  EXPECT_LE(repro.runs_used, 3u);
  // Best-so-far is still a valid repro of the same invariant.
  EXPECT_TRUE(combo_probe(repro.plan, repro.horizon).violated);
}

TEST(ReproJson, RoundTripsIncludingFullRangeSeeds) {
  Minimizer minimizer(MinimizeConfig{}, combo_probe);
  Repro repro = minimizer.minimize(noisy_plan(), kHorizon);
  ASSERT_TRUE(repro.failing);
  repro.seed = 0xDEADBEEFCAFEBABEull;  // above 2^53: breaks via doubles

  Repro loaded;
  ASSERT_TRUE(load_repro(repro_json(repro), &loaded));
  EXPECT_EQ(loaded.failing, repro.failing);
  EXPECT_EQ(loaded.horizon, repro.horizon);
  EXPECT_EQ(loaded.invariant, repro.invariant);
  EXPECT_EQ(loaded.seed, repro.seed);
  EXPECT_EQ(loaded.original_events, repro.original_events);
  ASSERT_EQ(loaded.plan.size(), repro.plan.size());
  for (std::size_t i = 0; i < loaded.plan.size(); ++i) {
    EXPECT_EQ(loaded.plan[i].at, repro.plan[i].at);
    EXPECT_EQ(loaded.plan[i].kind, repro.plan[i].kind);
    EXPECT_EQ(loaded.plan[i].target, repro.plan[i].target);
    EXPECT_DOUBLE_EQ(loaded.plan[i].magnitude, repro.plan[i].magnitude);
  }
  // The loaded repro replays to the same verdict.
  const ProbeVerdict replay = combo_probe(loaded.plan, loaded.horizon);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.invariant, repro.invariant);

  EXPECT_FALSE(load_repro("not json", &loaded));
}

}  // namespace
}  // namespace dynaplat::fault
